"""Cube queries (Definition 2.6) and level predicates.

A cube query is a quadruple ``q = (C0, G_q, P_q, M_q)``: a detailed cube, a
group-by set, a set of selection predicates (each over one level), and a
subset of measures.  Its result is a *derived cube*.

Predicates support equality, membership (``IN``) and inclusive ranges —
exactly what the four benchmark types of the paper need (sibling rewrites
``l = u`` into ``l = u_sib``; past rewrites ``l_t = u`` into
``l_t IN {u1..uk}``/a range).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from .errors import SchemaError
from .groupby import GroupBySet
from .hierarchy import Member
from .schema import CubeSchema


class PredicateOp(enum.Enum):
    """Comparison operators available in ``for`` clauses."""

    EQ = "="
    IN = "in"
    RANGE = "between"


class Predicate:
    """A selection predicate over a single level.

    Immutable value object; two predicates compare equal when they constrain
    the same level the same way, which the rewrite rules (P2/P3) rely on to
    manipulate predicate sets symbolically.
    """

    __slots__ = ("level", "op", "values")

    def __init__(self, level: str, op: PredicateOp, values: Tuple):
        self.level = level
        self.op = op
        self.values = values

    # -- constructors ---------------------------------------------------
    @classmethod
    def eq(cls, level: str, member: Member) -> "Predicate":
        """``level = member``."""
        return cls(level, PredicateOp.EQ, (member,))

    @classmethod
    def isin(cls, level: str, members: Iterable[Member]) -> "Predicate":
        """``level IN {members}`` (order-insensitive)."""
        return cls(level, PredicateOp.IN, tuple(sorted(set(members), key=repr)))

    @classmethod
    def between(cls, level: str, low: Member, high: Member) -> "Predicate":
        """``low <= level <= high`` (inclusive, by member ordering)."""
        return cls(level, PredicateOp.RANGE, (low, high))

    # -- evaluation ------------------------------------------------------
    def matches(self, member: Member) -> bool:
        """Whether one member satisfies the predicate."""
        if self.op is PredicateOp.EQ:
            return member == self.values[0]
        if self.op is PredicateOp.IN:
            return member in self.values
        low, high = self.values
        return low <= member <= high

    def mask(self, column: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over a member column."""
        if self.op is PredicateOp.EQ:
            return column == self.values[0]
        if self.op is PredicateOp.IN:
            accepted = set(self.values)
            return np.fromiter(
                (member in accepted for member in column), dtype=bool, count=len(column)
            )
        low, high = self.values
        return np.fromiter(
            (low <= member <= high for member in column), dtype=bool, count=len(column)
        )

    def member_set(self) -> Optional[FrozenSet]:
        """The explicit member set this predicate accepts, if enumerable."""
        if self.op in (PredicateOp.EQ, PredicateOp.IN):
            return frozenset(self.values)
        return None

    # -- value semantics ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and (other.level, other.op, other.values) == (self.level, self.op, self.values)
        )

    def __hash__(self) -> int:
        return hash(("Predicate", self.level, self.op, self.values))

    def __repr__(self) -> str:
        if self.op is PredicateOp.EQ:
            return f"{self.level} = {self.values[0]!r}"
        if self.op is PredicateOp.IN:
            rendered = ", ".join(repr(v) for v in self.values)
            return f"{self.level} in {{{rendered}}}"
        return f"{self.level} between {self.values[0]!r} and {self.values[1]!r}"


class CubeQuery:
    """A cube query ``q = (C0, G_q, P_q, M_q)`` over a detailed cube.

    ``source`` names the detailed cube (resolution to actual data happens in
    the OLAP engine, which owns the star-schema bindings).  Queries are value
    objects, which lets plans compare and rewrite them (e.g. P3 merges the
    target's and benchmark's queries into one with a widened predicate).
    """

    __slots__ = ("source", "group_by", "predicates", "measures")

    def __init__(
        self,
        source: str,
        group_by: GroupBySet,
        predicates: Sequence[Predicate] = (),
        measures: Sequence[str] = (),
    ):
        schema = group_by.schema
        for predicate in predicates:
            if not schema.has_level(predicate.level):
                raise SchemaError(
                    f"predicate on unknown level {predicate.level!r} "
                    f"for schema {schema.name!r}"
                )
        for measure in measures:
            schema.measure(measure)
        self.source = source
        self.group_by = group_by
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)
        self.measures: Tuple[str, ...] = tuple(measures)

    @property
    def schema(self) -> CubeSchema:
        """The schema the query ranges over."""
        return self.group_by.schema

    def predicate_on(self, level: str) -> Optional[Predicate]:
        """The predicate constraining a level, if any."""
        for predicate in self.predicates:
            if predicate.level == level:
                return predicate
        return None

    def replace_predicate(self, old: Predicate, new: Predicate) -> "CubeQuery":
        """Return a copy with one predicate swapped (``P \\ {p} ∪ {p'}``)."""
        predicates = tuple(new if p == old else p for p in self.predicates)
        return CubeQuery(self.source, self.group_by, predicates, self.measures)

    def without_predicate(self, old: Predicate) -> "CubeQuery":
        """Return a copy with one predicate dropped."""
        predicates = tuple(p for p in self.predicates if p != old)
        return CubeQuery(self.source, self.group_by, predicates, self.measures)

    def with_predicates(self, predicates: Sequence[Predicate]) -> "CubeQuery":
        """Return a copy with a replaced predicate set."""
        return CubeQuery(self.source, self.group_by, tuple(predicates), self.measures)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CubeQuery)
            and other.source == self.source
            and other.group_by == self.group_by
            and frozenset(other.predicates) == frozenset(self.predicates)
            and other.measures == self.measures
        )

    def __hash__(self) -> int:
        return hash(
            (
                "CubeQuery",
                self.source,
                self.group_by,
                frozenset(self.predicates),
                self.measures,
            )
        )

    def __repr__(self) -> str:
        preds = ", ".join(repr(p) for p in self.predicates) or "∅"
        return (
            f"CubeQuery({self.source}, by={list(self.group_by.levels)}, "
            f"for=[{preds}], measures={list(self.measures)})"
        )
