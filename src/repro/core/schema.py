"""Cube schemas and measures (Definition 2.1, second half).

A cube schema is a couple ``C = (H, M)`` where ``H`` is a set of hierarchies
and ``M`` a tuple of numerical measures, each coupled with an aggregation
operator.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .errors import SchemaError
from .hierarchy import Hierarchy, Level


def _agg_sum(values: np.ndarray) -> float:
    return float(np.sum(values))


def _agg_avg(values: np.ndarray) -> float:
    return float(np.mean(values))


def _agg_min(values: np.ndarray) -> float:
    return float(np.min(values))


def _agg_max(values: np.ndarray) -> float:
    return float(np.max(values))


def _agg_count(values: np.ndarray) -> float:
    return float(len(values))


AGGREGATION_OPERATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "count": _agg_count,
}
"""The library of aggregation operators ``op(m)`` available for measures."""

DISTRIBUTIVE_OPERATORS = frozenset({"sum", "min", "max", "count"})
"""Operators that can be computed by re-aggregating partial aggregates."""


class Measure:
    """A numerical measure coupled with its aggregation operator.

    ``op`` must name one of :data:`AGGREGATION_OPERATORS`.  The paper writes
    ``op(quantity) = sum`` — here ``Measure("quantity", "sum")``.
    """

    __slots__ = ("name", "op")

    def __init__(self, name: str, op: str = "sum"):
        if not name or not isinstance(name, str):
            raise SchemaError(f"measure name must be a non-empty string, got {name!r}")
        if op not in AGGREGATION_OPERATORS:
            raise SchemaError(
                f"unknown aggregation operator {op!r} for measure {name!r} "
                f"(known: {', '.join(sorted(AGGREGATION_OPERATORS))})"
            )
        self.name = name
        self.op = op

    @property
    def is_distributive(self) -> bool:
        """Whether the measure's operator is distributive (sum/min/max/count)."""
        return self.op in DISTRIBUTIVE_OPERATORS

    def aggregate(self, values: np.ndarray) -> float:
        """Aggregate a 1-D array of values with the measure's operator."""
        return AGGREGATION_OPERATORS[self.op](values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Measure) and (other.name, other.op) == (self.name, self.op)

    def __hash__(self) -> int:
        return hash(("Measure", self.name, self.op))

    def __repr__(self) -> str:
        return f"Measure({self.name!r}, op={self.op!r})"


class CubeSchema:
    """A cube schema ``C = (H, M)``.

    Hierarchies are indexed both by hierarchy name and by level name; level
    names must be globally unique across hierarchies so that predicates and
    group-by sets can name levels without qualifying the hierarchy (as the
    paper's syntax does).
    """

    def __init__(self, name: str, hierarchies: Iterable[Hierarchy], measures: Sequence[Measure]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"cube schema name must be a non-empty string, got {name!r}")
        self.name = name
        self.hierarchies: Tuple[Hierarchy, ...] = tuple(hierarchies)
        self.measures: Tuple[Measure, ...] = tuple(measures)
        if not self.hierarchies:
            raise SchemaError(f"cube schema {name!r} must have at least one hierarchy")
        if not self.measures:
            raise SchemaError(f"cube schema {name!r} must have at least one measure")

        self._hierarchy_by_name: Dict[str, Hierarchy] = {}
        self._hierarchy_by_level: Dict[str, Hierarchy] = {}
        for hierarchy in self.hierarchies:
            if hierarchy.name in self._hierarchy_by_name:
                raise SchemaError(f"duplicate hierarchy name {hierarchy.name!r}")
            self._hierarchy_by_name[hierarchy.name] = hierarchy
            for level in hierarchy.levels:
                if level.name in self._hierarchy_by_level:
                    other = self._hierarchy_by_level[level.name].name
                    raise SchemaError(
                        f"level name {level.name!r} appears in hierarchies "
                        f"{other!r} and {hierarchy.name!r}; level names must be unique"
                    )
                self._hierarchy_by_level[level.name] = hierarchy

        self._measure_by_name: Dict[str, Measure] = {}
        for measure in self.measures:
            if measure.name in self._measure_by_name:
                raise SchemaError(f"duplicate measure name {measure.name!r}")
            self._measure_by_name[measure.name] = measure

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def hierarchy(self, name: str) -> Hierarchy:
        """Return the hierarchy with the given name."""
        try:
            return self._hierarchy_by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no hierarchy {name!r} "
                f"(hierarchies: {', '.join(self.hierarchy_names())})"
            ) from None

    def hierarchy_of_level(self, level_name: str) -> Hierarchy:
        """Return the hierarchy a level belongs to."""
        try:
            return self._hierarchy_by_level[level_name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no level {level_name!r}"
            ) from None

    def has_level(self, level_name: str) -> bool:
        """Return whether any hierarchy defines a level with that name."""
        return level_name in self._hierarchy_by_level

    def level(self, level_name: str) -> Level:
        """Return the :class:`Level` object for a (globally unique) level name."""
        return self.hierarchy_of_level(level_name).level(level_name)

    def measure(self, name: str) -> Measure:
        """Return the measure with the given name."""
        try:
            return self._measure_by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no measure {name!r} "
                f"(measures: {', '.join(self.measure_names())})"
            ) from None

    def has_measure(self, name: str) -> bool:
        """Return whether the schema defines a measure with that name."""
        return name in self._measure_by_name

    def hierarchy_names(self) -> Tuple[str, ...]:
        """Names of all hierarchies, in declaration order."""
        return tuple(h.name for h in self.hierarchies)

    def measure_names(self) -> Tuple[str, ...]:
        """Names of all measures, in declaration order."""
        return tuple(m.name for m in self.measures)

    def finest_group_by(self) -> Tuple[str, ...]:
        """Level names of the top group-by set ``G0`` (one finest level per
        hierarchy, in hierarchy declaration order)."""
        return tuple(h.finest_level.name for h in self.hierarchies)

    def temporal_hierarchy(self) -> Optional[Hierarchy]:
        """Return the hierarchy conventionally considered temporal, if any.

        Past benchmarks need a temporal level.  We use the convention that
        the temporal hierarchy is the one named ``date`` or ``time`` (case
        insensitive), falling back to a hierarchy that *has* a level with one
        of those names.
        """
        for hierarchy in self.hierarchies:
            if hierarchy.name.lower() in ("date", "time"):
                return hierarchy
        for hierarchy in self.hierarchies:
            for level in hierarchy.levels:
                if level.name.lower() in ("date", "time"):
                    return hierarchy
        return None

    def __repr__(self) -> str:
        return (
            f"CubeSchema({self.name!r}, hierarchies={list(self.hierarchy_names())}, "
            f"measures={list(self.measure_names())})"
        )
