"""Group-by sets and coordinates (Definition 2.3).

A group-by set of a cube schema is a tuple of levels, at most one per
hierarchy.  Hierarchies that do not appear are completely aggregated.  The
roll-up orders of the hierarchies induce a partial order ``⪰_H`` over
group-by sets; coordinates of a finer group-by set roll up (``rup``) to
coordinates of any coarser one by mapping each member through the part-of
order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .errors import SchemaError
from .hierarchy import Member
from .schema import CubeSchema

Coordinate = Tuple[Member, ...]
"""A coordinate: one member per level of a group-by set, in group-by order."""


class GroupBySet:
    """A group-by set over a cube schema.

    Levels are stored in a canonical order — the declaration order of their
    hierarchies in the schema — so that two group-by sets mentioning the same
    levels in different textual orders compare equal and produce identically
    laid-out coordinates.
    """

    __slots__ = ("schema", "levels", "_hierarchy_names", "_level_pos")

    def __init__(self, schema: CubeSchema, level_names: Iterable[str]):
        requested = list(level_names)
        by_hierarchy: Dict[str, str] = {}
        for level_name in requested:
            hierarchy = schema.hierarchy_of_level(level_name)
            if hierarchy.name in by_hierarchy and by_hierarchy[hierarchy.name] != level_name:
                raise SchemaError(
                    f"group-by set picks two levels ({by_hierarchy[hierarchy.name]!r}, "
                    f"{level_name!r}) from hierarchy {hierarchy.name!r}"
                )
            by_hierarchy[hierarchy.name] = level_name
        ordered = [
            by_hierarchy[h.name] for h in schema.hierarchies if h.name in by_hierarchy
        ]
        self.schema = schema
        self.levels: Tuple[str, ...] = tuple(ordered)
        self._hierarchy_names: Tuple[str, ...] = tuple(
            h.name for h in schema.hierarchies if h.name in by_hierarchy
        )
        self._level_pos: Dict[str, int] = {name: i for i, name in enumerate(self.levels)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hierarchy_names(self) -> Tuple[str, ...]:
        """Hierarchy names covered by this group-by set, in canonical order."""
        return self._hierarchy_names

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    def __contains__(self, level_name: str) -> bool:
        return level_name in self._level_pos

    def position_of(self, level_name: str) -> int:
        """Index of a level within coordinates of this group-by set."""
        try:
            return self._level_pos[level_name]
        except KeyError:
            raise SchemaError(
                f"level {level_name!r} is not part of group-by set {self.levels}"
            ) from None

    def level_for_hierarchy(self, hierarchy_name: str) -> str:
        """The level this group-by set picks from a hierarchy.

        Raises :class:`SchemaError` if the hierarchy is fully aggregated.
        """
        for level_name, h_name in zip(self.levels, self._hierarchy_names):
            if h_name == hierarchy_name:
                return level_name
        raise SchemaError(
            f"hierarchy {hierarchy_name!r} is fully aggregated in "
            f"group-by set {self.levels}"
        )

    # ------------------------------------------------------------------
    # Partial order  ⪰_H  and roll-up of coordinates
    # ------------------------------------------------------------------
    def rolls_up_to(self, coarser: "GroupBySet") -> bool:
        """Return whether ``self ⪰_H coarser``.

        Holds when every hierarchy of ``coarser`` also appears in ``self``
        with a level at least as fine.
        """
        if coarser.schema is not self.schema and coarser.schema.name != self.schema.name:
            return False
        for level_name, h_name in zip(coarser.levels, coarser._hierarchy_names):
            if h_name not in set(self._hierarchy_names):
                return False
            own_level = self.level_for_hierarchy(h_name)
            hierarchy = self.schema.hierarchy(h_name)
            if not hierarchy.rolls_up_to(own_level, level_name):
                return False
        return True

    def rup(self, coordinate: Coordinate, coarser: "GroupBySet") -> Coordinate:
        """Roll a coordinate of ``self`` up to group-by set ``coarser``.

        Implements ``rup_{G'}(γ)`` of Definition 2.3: each member is mapped
        through the part-of order of its hierarchy; hierarchies absent from
        ``coarser`` are dropped (complete aggregation).
        """
        if len(coordinate) != len(self.levels):
            raise SchemaError(
                f"coordinate {coordinate!r} has {len(coordinate)} members, "
                f"group-by set has {len(self.levels)} levels"
            )
        if not self.rolls_up_to(coarser):
            raise SchemaError(
                f"group-by set {self.levels} does not roll up to {coarser.levels}"
            )
        members = []
        for target_level, h_name in zip(coarser.levels, coarser._hierarchy_names):
            own_level = self.level_for_hierarchy(h_name)
            member = coordinate[self.position_of(own_level)]
            hierarchy = self.schema.hierarchy(h_name)
            members.append(hierarchy.rollup_member(member, own_level, target_level))
        return tuple(members)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GroupBySet)
            and other.levels == self.levels
            and other.schema.name == self.schema.name
        )

    def __hash__(self) -> int:
        return hash(("GroupBySet", self.schema.name, self.levels))

    def __repr__(self) -> str:
        return f"GroupBySet({list(self.levels)})"


def top_group_by(schema: CubeSchema) -> GroupBySet:
    """The top (finest) group-by set ``G0``: one finest level per hierarchy."""
    return GroupBySet(schema, schema.finest_group_by())
