"""Assessment results (Section 4.1, result contract).

For each cell of the target cube the result includes:

(i)   its coordinate,
(ii)  the value of the assessed measure ``m``,
(iii) the value of the benchmark measure ``m_B``,
(iv)  the value resulting from the comparison ``m_Δ``, and
(v)   the corresponding label ``m_λ``.

:class:`AssessResult` wraps the final result cube (whose schema is
``(H, ⟨m, m_B, m_Δ, m_λ⟩)``) and exposes the contract columns by role,
independently of their concrete names.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional

import numpy as np

from .cube import Cube
from .groupby import Coordinate


class AssessedCell:
    """One row of an assessment result."""

    __slots__ = ("coordinate", "value", "benchmark", "comparison", "label")

    def __init__(
        self,
        coordinate: Coordinate,
        value: float,
        benchmark: float,
        comparison: float,
        label: Optional[str],
    ):
        self.coordinate = coordinate
        self.value = value
        self.benchmark = benchmark
        self.comparison = comparison
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssessedCell({self.coordinate!r}, m={self.value!r}, "
            f"m_B={self.benchmark!r}, m_Δ={self.comparison!r}, label={self.label!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssessedCell):
            return NotImplemented
        return (
            self.coordinate == other.coordinate
            and _float_eq(self.value, other.value)
            and _float_eq(self.benchmark, other.benchmark)
            and _float_eq(self.comparison, other.comparison)
            and self.label == other.label
        )


def _float_eq(a, b) -> bool:
    if a is None or b is None:
        return a is b
    try:
        if np.isnan(a) and np.isnan(b):
            return True
    except TypeError:
        pass
    return a == b


class AssessResult:
    """The outcome of executing an assess statement.

    Wraps the result cube together with the *roles* of its columns: which
    column is the assessed measure, which the benchmark measure, which the
    comparison, which the label.  Also carries execution metadata (the plan
    used and its per-step timing breakdown) for the experiment harness.
    """

    def __init__(
        self,
        cube: Cube,
        measure: str,
        benchmark_measure: str,
        comparison_measure: str,
        label_measure: str,
        plan_name: str = "",
        timings: Optional[Dict[str, float]] = None,
    ):
        self.cube = cube
        self.measure = measure
        self.benchmark_measure = benchmark_measure
        self.comparison_measure = comparison_measure
        self.label_measure = label_measure
        self.plan_name = plan_name
        self.timings: Dict[str, float] = dict(timings or {})

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cube)

    def __iter__(self) -> Iterator[AssessedCell]:
        values = self.cube.measure(self.measure)
        benchmarks = self.cube.measure(self.benchmark_measure)
        comparisons = self.cube.measure(self.comparison_measure)
        labels = self.cube.measure(self.label_measure)
        for row, coordinate in enumerate(self.cube.coordinates()):
            yield AssessedCell(
                coordinate,
                _scalar(values[row]),
                _scalar(benchmarks[row]),
                _scalar(comparisons[row]),
                labels[row],
            )

    def cells(self) -> List[AssessedCell]:
        """All assessed cells, sorted by coordinate for determinism."""
        return sorted(self, key=lambda cell: tuple(map(repr, cell.coordinate)))

    def label_of(self, coordinate: Coordinate) -> Optional[str]:
        """The label assigned to one coordinate."""
        row = self.cube.coordinate_index()[tuple(coordinate)]
        return self.cube.measure(self.label_measure)[row]

    def label_counts(self) -> Dict[str, int]:
        """Histogram of labels over all cells (``None`` for unlabeled)."""
        return dict(Counter(self.cube.measure(self.label_measure)))

    def total_time(self) -> float:
        """Total measured execution time across all plan steps (seconds)."""
        return float(sum(self.timings.values()))

    def highlights(self, k: int = 3) -> List[AssessedCell]:
        """The ``k`` most interesting cells of the assessment.

        The IAM the paper builds on returns "annotations of interesting
        subsets of data" alongside query results; here interestingness
        combines (a) how extreme a cell's comparison value is within the
        result's own distribution (absolute z-score) and (b) how rare its
        label is (minority labels are more informative).  Unlabeled cells
        are excluded.
        """
        comparisons = np.asarray(
            self.cube.measure(self.comparison_measure), dtype=np.float64
        )
        labels = self.cube.measure(self.label_measure)
        finite = comparisons[np.isfinite(comparisons)]
        mean = float(np.mean(finite)) if finite.size else 0.0
        std = float(np.std(finite)) if finite.size else 0.0
        counts = Counter(label for label in labels if label is not None)
        total_labeled = sum(counts.values())

        scored = []
        for cell, comparison, label in zip(self, comparisons, labels):
            if label is None or not np.isfinite(comparison):
                continue
            extremity = abs(comparison - mean) / std if std > 0 else 0.0
            rarity = 1.0 - counts[label] / total_labeled if total_labeled else 0.0
            scored.append((extremity + rarity, cell))
        scored.sort(key=lambda pair: pair[0], reverse=True)
        return [cell for _, cell in scored[:k]]

    def to_csv(self, path: str) -> str:
        """Export the assessment to a CSV file (levels + contract columns).

        Unlabeled cells export an empty label field; NaN benchmark and
        comparison values export as empty fields too.
        """
        import csv

        headers = list(self.cube.group_by.levels) + [
            self.measure,
            self.benchmark_measure,
            self.comparison_measure,
            self.label_measure,
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(headers)
            for cell in self.cells():
                writer.writerow(
                    [str(member) for member in cell.coordinate]
                    + [_csv_value(cell.value), _csv_value(cell.benchmark),
                       _csv_value(cell.comparison),
                       "" if cell.label is None else cell.label]
                )
        return path

    # ------------------------------------------------------------------
    def to_table(self, limit: Optional[int] = None) -> str:
        """Render the result as a fixed-width text table (for examples/CLI)."""
        headers = list(self.cube.group_by.levels) + [
            self.measure,
            self.benchmark_measure,
            self.comparison_measure,
            self.label_measure,
        ]
        rows: List[List[str]] = []
        for cell in self.cells()[: limit if limit is not None else len(self)]:
            row = [str(member) for member in cell.coordinate]
            row.append(_fmt(cell.value))
            row.append(_fmt(cell.benchmark))
            row.append(_fmt(cell.comparison))
            row.append(str(cell.label))
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssessResult(cells={len(self)}, plan={self.plan_name!r}, "
            f"labels={self.label_counts()!r})"
        )


def _csv_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value != value:  # NaN
        return ""
    return repr(value) if isinstance(value, float) else str(value)


def _scalar(value):
    if value is None:
        return None
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    return value


def _fmt(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, float):
        if value != value:  # NaN
            return "null"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4f}"
    return str(value)
