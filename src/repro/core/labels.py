"""Label intervals and range-based labeling specifications (Section 3.3.1).

A range-based labeling function maps real comparison values to labels via a
set of intervals.  The paper requires the set of ranges to be *complete* and
*non-overlapping* — every comparison value must receive exactly one label.
:func:`validate_ranges` enforces exactly that, and is exercised both at
parse time and by property-based tests.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .errors import ValidationError

NEG_INF = float("-inf")
POS_INF = float("inf")


class Interval:
    """A real interval with independently open/closed endpoints.

    Written in the statement syntax as ``[low, high)`` etc.; infinite bounds
    are spelled ``-inf`` / ``inf`` and are always treated as open.
    """

    __slots__ = ("low", "high", "low_closed", "high_closed")

    def __init__(self, low: float, high: float, low_closed: bool, high_closed: bool):
        low = float(low)
        high = float(high)
        if math.isinf(low):
            low_closed = False
        if math.isinf(high):
            high_closed = False
        if low > high:
            raise ValidationError(f"empty interval: low {low} > high {high}")
        if low == high and not (low_closed and high_closed):
            raise ValidationError(f"degenerate interval at {low} must be closed on both ends")
        self.low = low
        self.high = high
        self.low_closed = low_closed
        self.high_closed = high_closed

    def contains(self, value: float) -> bool:
        """Whether a value falls inside the interval."""
        if value < self.low or value > self.high:
            return False
        if value == self.low and not self.low_closed:
            return False
        if value == self.high and not self.high_closed:
            return False
        return True

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorised membership over a float column (NaN never matches)."""
        lower = values >= self.low if self.low_closed else values > self.low
        upper = values <= self.high if self.high_closed else values < self.high
        return lower & upper

    def render(self) -> str:
        """Render back to the surface syntax, e.g. ``[0, 0.9)``."""
        left = "[" if self.low_closed else "("
        right = "]" if self.high_closed else ")"
        return f"{left}{_render_bound(self.low)}, {_render_bound(self.high)}{right}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Interval) and (
            other.low,
            other.high,
            other.low_closed,
            other.high_closed,
        ) == (self.low, self.high, self.low_closed, self.high_closed)

    def __hash__(self) -> int:
        return hash(("Interval", self.low, self.high, self.low_closed, self.high_closed))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _render_bound(bound: float) -> str:
    if bound == POS_INF:
        return "inf"
    if bound == NEG_INF:
        return "-inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class LabelRule:
    """One ``interval: label`` rule of a range-based labeling function."""

    __slots__ = ("interval", "label")

    def __init__(self, interval: Interval, label: str):
        self.interval = interval
        self.label = label

    def render(self) -> str:
        return f"{self.interval.render()}: {self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelRule) and (other.interval, other.label) == (
            self.interval,
            self.label,
        )

    def __hash__(self) -> int:
        return hash(("LabelRule", self.interval, self.label))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _sorted_rules(rules: Sequence[LabelRule]) -> List[LabelRule]:
    return sorted(rules, key=lambda rule: (rule.interval.low, not rule.interval.low_closed))


def find_overlaps(rules: Sequence[LabelRule]) -> List[Tuple[LabelRule, LabelRule]]:
    """Every pair of rules whose intervals share at least one value.

    Pairs are returned in range order (not just the first collision), so
    callers can report the complete defect set at once.
    """
    ordered = _sorted_rules(rules)
    overlapping: List[Tuple[LabelRule, LabelRule]] = []
    for i, earlier in enumerate(ordered):
        for later in ordered[i + 1:]:
            p, c = earlier.interval, later.interval
            if c.low > p.high:
                break  # sorted by low: no later rule can reach back into p
            overlaps = c.low < p.high or (
                c.low == p.high and p.high_closed and c.low_closed
            )
            if overlaps:
                overlapping.append((earlier, later))
    return overlapping


def find_gaps(
    rules: Sequence[LabelRule],
    domain_low: float = NEG_INF,
    domain_high: float = POS_INF,
) -> List[Interval]:
    """Every maximal uncovered interval of ``[domain_low, domain_high]``.

    Each returned :class:`Interval` is a region where a comparison value
    would receive the null label.  Degenerate single-point gaps (two open
    endpoints touching) are reported as closed ``[x, x]`` intervals.
    Overlapping rule sets should be rejected first; gaps are still computed
    on a best-effort basis.
    """
    if not rules:
        bounds_open_low = math.isinf(domain_low)
        bounds_open_high = math.isinf(domain_high)
        return [
            Interval(domain_low, domain_high, not bounds_open_low, not bounds_open_high)
        ]
    ordered = _sorted_rules(rules)
    gaps: List[Interval] = []

    first = ordered[0].interval
    if first.low > domain_low:
        gaps.append(
            Interval(
                domain_low, first.low, not math.isinf(domain_low), not first.low_closed
            )
        )
    elif first.low == domain_low and not first.low_closed and not math.isinf(domain_low):
        gaps.append(Interval(domain_low, domain_low, True, True))

    covered_high, covered_high_closed = first.high, first.high_closed
    for rule in ordered[1:]:
        c = rule.interval
        if c.low > covered_high:
            gaps.append(Interval(covered_high, c.low, not covered_high_closed, not c.low_closed))
        elif c.low == covered_high and not covered_high_closed and not c.low_closed:
            gaps.append(Interval(c.low, c.low, True, True))
        if (c.high, c.high_closed) >= (covered_high, covered_high_closed):
            covered_high, covered_high_closed = c.high, c.high_closed

    if covered_high < domain_high:
        gaps.append(
            Interval(
                covered_high, domain_high, not covered_high_closed, not math.isinf(domain_high)
            )
        )
    elif covered_high == domain_high and not covered_high_closed and not math.isinf(domain_high):
        gaps.append(Interval(domain_high, domain_high, True, True))
    return gaps


def validate_ranges(
    rules: Sequence[LabelRule],
    domain_low: float = NEG_INF,
    domain_high: float = POS_INF,
    require_complete: bool = False,
) -> None:
    """Check that a rule set is non-overlapping (and optionally complete).

    The paper puts the user "in charge of ensuring that the set of ranges is
    complete and non-overlapping"; we verify non-overlap always (an
    overlapping set has no well-defined semantics) and completeness over
    ``[domain_low, domain_high]`` on request (values falling in gaps
    otherwise receive the null label).  Error messages enumerate *every*
    overlapping pair and *every* uncovered gap, not just the first.
    """
    if not rules:
        raise ValidationError("labeling function needs at least one range")
    overlaps = find_overlaps(rules)
    if overlaps:
        rendered = "; ".join(
            f"{p.interval.render()} and {c.interval.render()}" for p, c in overlaps
        )
        raise ValidationError(f"overlapping label ranges: {rendered}")
    if require_complete:
        gaps = find_gaps(rules, domain_low, domain_high)
        if gaps:
            rendered = ", ".join(gap.render() for gap in gaps)
            raise ValidationError(
                f"incomplete label ranges over "
                f"[{_render_bound(domain_low)}, {_render_bound(domain_high)}]; "
                f"uncovered: {rendered}"
            )


class LabelingSpec:
    """Base class for the ``labels`` clause alternatives."""

    def render(self) -> str:
        raise NotImplementedError


class RangeLabeling(LabelingSpec):
    """Inline, explicit-range labeling: ``{[0,0.9): bad, [0.9,1.1]: ok, …}``."""

    __slots__ = ("rules", "_lows", "_highs", "_low_closed", "_high_closed", "_labels")

    @classmethod
    def from_cutpoints(cls, bounds: Sequence[float], labels: Sequence[str]) -> "RangeLabeling":
        """A complete partition of R from sorted cut points.

        ``len(labels)`` must be ``len(bounds) + 1``; the first interval is
        ``(-inf, bounds[0])``, intermediate ones ``[b_i, b_{i+1})``, the
        last ``[bounds[-1], inf)``.
        """
        bounds = sorted(bounds)
        if len(labels) != len(bounds) + 1:
            raise ValidationError(
                f"{len(bounds)} cut points need {len(bounds) + 1} labels, "
                f"got {len(labels)}"
            )
        edges = [NEG_INF] + list(bounds) + [POS_INF]
        rules = [
            LabelRule(Interval(edges[i], edges[i + 1], i > 0, False), labels[i])
            for i in range(len(labels))
        ]
        return cls(rules)

    def __init__(self, rules: Sequence[LabelRule]):
        validate_ranges(rules)
        self.rules: Tuple[LabelRule, ...] = tuple(
            sorted(rules, key=lambda rule: (rule.interval.low, not rule.interval.low_closed))
        )
        # Edge arrays for the vectorised apply: rules are sorted by low and
        # non-overlapping, so a searchsorted over the lows narrows each value
        # to at most two candidate rules (see ``apply``).
        self._lows = np.array([r.interval.low for r in self.rules], dtype=np.float64)
        self._highs = np.array([r.interval.high for r in self.rules], dtype=np.float64)
        self._low_closed = np.array([r.interval.low_closed for r in self.rules], dtype=bool)
        self._high_closed = np.array([r.interval.high_closed for r in self.rules], dtype=bool)
        self._labels = np.array([r.label for r in self.rules], dtype=object)

    @property
    def labels(self) -> Tuple[str, ...]:
        """The label vocabulary, in range order."""
        return tuple(rule.label for rule in self.rules)

    def apply_scalar(self, value: float) -> Optional[str]:
        """Label a single value, or ``None`` when it falls in a gap/NaN."""
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return None
        for rule in self.rules:
            if rule.interval.contains(value):
                return rule.label
        return None

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Label a column of comparison values (object array of labels).

        One ``searchsorted`` over the sorted interval lows finds each
        value's candidate rule; because the rule set is non-overlapping,
        a value excluded by its candidate (open low endpoint, or past the
        high bound) can only belong to the immediately preceding rule, so
        a single step back completes the assignment.  Values in gaps and
        NaNs stay ``None``.  :meth:`apply_python` is the per-cell oracle.
        """
        numeric = np.asarray(values, dtype=np.float64)
        out = np.full(len(numeric), None, dtype=object)
        if numeric.size == 0:
            return out
        candidates = np.searchsorted(self._lows, numeric, side="right") - 1
        hit = self._contains_at(candidates, numeric)
        missed = ~hit
        if missed.any():
            stepped = candidates - 1
            rescue = self._contains_at(stepped, numeric) & missed
            candidates = np.where(rescue, stepped, candidates)
            hit |= rescue
        out[hit] = self._labels[candidates[hit]]
        return out

    def _contains_at(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Vectorised ``rules[i].interval.contains(v)`` (NaN never matches)."""
        in_range = indices >= 0
        safe = np.where(in_range, indices, 0)
        above = np.where(
            self._low_closed[safe], values >= self._lows[safe], values > self._lows[safe]
        )
        below = np.where(
            self._high_closed[safe], values <= self._highs[safe], values < self._highs[safe]
        )
        return in_range & above & below

    def apply_python(self, values: np.ndarray) -> np.ndarray:
        """Per-cell reference implementation of :meth:`apply` (test oracle)."""
        numeric = np.asarray(values, dtype=np.float64)
        out = np.full(len(numeric), None, dtype=object)
        for row in range(len(numeric)):
            out[row] = self.apply_scalar(float(numeric[row]))
        return out

    def render(self) -> str:
        body = ", ".join(rule.render() for rule in self.rules)
        return f"{{{body}}}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangeLabeling) and other.rules == self.rules

    def __hash__(self) -> int:
        return hash(("RangeLabeling", self.rules))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeLabeling({self.render()})"


class CoordinateLabeling(LabelingSpec):
    """Coordinate-dependent labeling (the paper's §8 expressiveness item).

    "more complex labeling functions (e.g., functions based on ranges that
    depend not only on comparison values of cells, but also on their
    coordinates)" — each member of ``level`` can carry its own range set
    (e.g. stricter thresholds for larger markets), with a default set for
    unlisted members.  Cells whose member has no case and no default exists
    receive the null label.
    """

    __slots__ = ("level", "cases", "default")

    def __init__(
        self,
        level: str,
        cases: "dict",
        default: Optional[RangeLabeling] = None,
    ):
        if not cases and default is None:
            raise ValidationError(
                "coordinate labeling needs at least one case or a default"
            )
        self.level = level
        self.cases = {member: labeling for member, labeling in cases.items()}
        for member, labeling in self.cases.items():
            if not isinstance(labeling, RangeLabeling):
                raise ValidationError(
                    f"case for member {member!r} must be a RangeLabeling"
                )
        self.default = default

    @property
    def labels(self) -> Tuple[str, ...]:
        """The combined label vocabulary across all cases."""
        vocabulary = []
        for labeling in list(self.cases.values()) + (
            [self.default] if self.default else []
        ):
            for label in labeling.labels:
                if label not in vocabulary:
                    vocabulary.append(label)
        return tuple(vocabulary)

    def labeling_for(self, member) -> Optional[RangeLabeling]:
        """The range set governing one member."""
        return self.cases.get(member, self.default)

    def apply(self, values: np.ndarray, members: Sequence) -> np.ndarray:
        """Label a comparison column, choosing ranges by each cell's member.

        Rows are grouped by member so each distinct member pays one
        vectorised :meth:`RangeLabeling.apply` over its rows instead of a
        per-cell scalar probe.  :meth:`apply_python` is the oracle.
        """
        numeric = np.asarray(values, dtype=np.float64)
        out = np.full(len(numeric), None, dtype=object)
        rows_of: dict = {}
        for row, member in enumerate(members):
            rows_of.setdefault(member, []).append(row)
        for member, rows in rows_of.items():
            labeling = self.labeling_for(member)
            if labeling is None:
                continue
            indices = np.asarray(rows, dtype=np.intp)
            out[indices] = labeling.apply(numeric[indices])
        return out

    def apply_python(self, values: np.ndarray, members: Sequence) -> np.ndarray:
        """Per-cell reference implementation of :meth:`apply` (test oracle)."""
        out = np.full(len(values), None, dtype=object)
        for row, member in enumerate(members):
            labeling = self.labeling_for(member)
            if labeling is not None:
                out[row] = labeling.apply_scalar(values[row])
        return out

    def render(self) -> str:
        parts = [
            f"case {self.level} = '{member}': {labeling.render()}"
            for member, labeling in self.cases.items()
        ]
        if self.default is not None:
            parts.append(f"else: {self.default.render()}")
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoordinateLabeling({self.level!r}, cases={list(self.cases)})"


class NamedLabeling(LabelingSpec):
    """A labeling function referenced by name: library distribution-based
    labelers (``quartiles``, ``quintiles``, ``top3``, …) or user-predeclared
    range functions (``5stars``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValidationError("labeling function name must be non-empty")
        self.name = name

    def render(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NamedLabeling) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("NamedLabeling", self.name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NamedLabeling({self.name!r})"


def five_stars_rules() -> List[LabelRule]:
    """The ``5stars`` labeling of Example 3.3, over [-1, 1]."""
    bounds = [-1.0, -0.6, -0.2, 0.2, 0.6, 1.0]
    labels = ["*", "**", "***", "****", "*****"]
    rules = []
    for i, label in enumerate(labels):
        low, high = bounds[i], bounds[i + 1]
        rules.append(LabelRule(Interval(low, high, low_closed=(i == 0), high_closed=True), label))
    return rules
