"""Hierarchies of the multidimensional model (Definition 2.1).

A hierarchy is a triple ``h = (L, rollup-order, part-of-order)`` where

* ``L`` is a set of categorical levels, each with a domain of members;
* the roll-up order is a *total* order over ``L`` (we restrict to linear
  hierarchies, as the paper does);
* the part-of order is a partial order over the union of the level domains
  such that every member of a finer level has exactly one parent member in
  each coarser level.

The implementation stores the part-of order as one child→parent mapping per
pair of *consecutive* levels; roll-ups across non-adjacent levels compose
those mappings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import MemberError, SchemaError

Member = object
"""A member is any hashable value (string, int, date-like string...)."""


class Level:
    """A categorical level of a hierarchy, with an (optional) explicit domain.

    Levels are value objects identified by their name; two levels with the
    same name compare equal.  The domain can be left implicit (``None``) for
    levels whose members are discovered from data, which is the common case
    for detailed levels of large cubes.
    """

    __slots__ = ("name", "_domain")

    def __init__(self, name: str, domain: Optional[Iterable[Member]] = None):
        if not name or not isinstance(name, str):
            raise SchemaError(f"level name must be a non-empty string, got {name!r}")
        self.name = name
        self._domain = frozenset(domain) if domain is not None else None

    @property
    def domain(self) -> Optional[frozenset]:
        """The explicit domain of the level, or ``None`` if open."""
        return self._domain

    def contains(self, member: Member) -> bool:
        """Return whether ``member`` belongs to the level's domain.

        Open-domain levels accept every member.
        """
        return self._domain is None or member in self._domain

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Level) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Level", self.name))

    def __repr__(self) -> str:
        return f"Level({self.name!r})"


class Hierarchy:
    """A linear hierarchy: an ordered list of levels, finest first.

    ``levels[0]`` is the finest level (e.g. ``date``) and ``levels[-1]`` the
    coarsest (e.g. ``year``).  ``parent_maps[i]`` maps each member of
    ``levels[i]`` to its unique parent member in ``levels[i + 1]``.

    The hierarchy name doubles as the *dimension* name: a group-by set picks
    at most one level from each hierarchy (Definition 2.3).
    """

    def __init__(
        self,
        name: str,
        levels: Sequence[Level],
        parent_maps: Optional[Sequence[Mapping[Member, Member]]] = None,
    ):
        if not name or not isinstance(name, str):
            raise SchemaError(f"hierarchy name must be a non-empty string, got {name!r}")
        if not levels:
            raise SchemaError(f"hierarchy {name!r} must have at least one level")
        seen = set()
        for level in levels:
            if level.name in seen:
                raise SchemaError(f"hierarchy {name!r} has duplicate level {level.name!r}")
            seen.add(level.name)
        self.name = name
        self.levels: Tuple[Level, ...] = tuple(levels)
        if parent_maps is None:
            parent_maps = [dict() for _ in range(len(levels) - 1)]
        if len(parent_maps) != len(levels) - 1:
            raise SchemaError(
                f"hierarchy {name!r}: expected {len(levels) - 1} parent maps, "
                f"got {len(parent_maps)}"
            )
        self._parent_maps: List[Dict[Member, Member]] = [dict(m) for m in parent_maps]
        self._level_index: Dict[str, int] = {
            level.name: i for i, level in enumerate(self.levels)
        }
        self._validate_parent_maps()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finest_level(self) -> Level:
        """The finest (most detailed) level of the hierarchy."""
        return self.levels[0]

    @property
    def coarsest_level(self) -> Level:
        """The coarsest level of the hierarchy."""
        return self.levels[-1]

    def level_names(self) -> Tuple[str, ...]:
        """All level names, finest first."""
        return tuple(level.name for level in self.levels)

    def has_level(self, level_name: str) -> bool:
        """Return whether a level with that name belongs to this hierarchy."""
        return level_name in self._level_index

    def level(self, level_name: str) -> Level:
        """Return the level with the given name.

        Raises :class:`SchemaError` for unknown names.
        """
        try:
            return self.levels[self._level_index[level_name]]
        except KeyError:
            raise SchemaError(
                f"hierarchy {self.name!r} has no level {level_name!r} "
                f"(levels: {', '.join(self.level_names())})"
            ) from None

    def depth_of(self, level_name: str) -> int:
        """Return the position of a level, 0 being the finest."""
        self.level(level_name)
        return self._level_index[level_name]

    def rolls_up_to(self, fine: str, coarse: str) -> bool:
        """Return whether ``fine`` ⪰ ``coarse`` in the roll-up total order.

        Every level rolls up to itself (the order is reflexive).
        """
        return self.depth_of(fine) <= self.depth_of(coarse)

    # ------------------------------------------------------------------
    # Part-of order
    # ------------------------------------------------------------------
    def set_parent(self, level_name: str, member: Member, parent: Member) -> None:
        """Record that ``member`` of ``level_name`` is part of ``parent``.

        ``parent`` belongs to the next-coarser level.  Re-assigning a member
        to a *different* parent raises, because the part-of order requires a
        unique parent (Definition 2.1).
        """
        depth = self.depth_of(level_name)
        if depth == len(self.levels) - 1:
            raise SchemaError(
                f"level {level_name!r} is the coarsest of hierarchy {self.name!r}; "
                "its members have no parent"
            )
        parent_map = self._parent_maps[depth]
        existing = parent_map.get(member)
        if existing is not None and existing != parent:
            raise SchemaError(
                f"member {member!r} of level {level_name!r} already has parent "
                f"{existing!r}; cannot reassign to {parent!r}"
            )
        parent_map[member] = parent

    def parent_of(self, level_name: str, member: Member) -> Member:
        """Return the parent of ``member`` in the next-coarser level."""
        depth = self.depth_of(level_name)
        if depth == len(self.levels) - 1:
            raise SchemaError(
                f"level {level_name!r} is the coarsest of hierarchy {self.name!r}"
            )
        try:
            return self._parent_maps[depth][member]
        except KeyError:
            raise MemberError(
                f"no parent recorded for member {member!r} of level "
                f"{level_name!r} in hierarchy {self.name!r}"
            ) from None

    def rollup_member(self, member: Member, fine: str, coarse: str) -> Member:
        """Map a member of level ``fine`` to its ancestor at level ``coarse``.

        This composes the consecutive parent maps; ``rollup_member(u, l, l)``
        is the identity, matching ``rup_G(γ) = γ`` of Definition 2.3.
        """
        start, stop = self.depth_of(fine), self.depth_of(coarse)
        if start > stop:
            raise SchemaError(
                f"cannot roll up from {fine!r} to finer level {coarse!r} "
                f"in hierarchy {self.name!r}"
            )
        current = member
        for depth in range(start, stop):
            try:
                current = self._parent_maps[depth][current]
            except KeyError:
                raise MemberError(
                    f"no parent recorded for member {current!r} of level "
                    f"{self.levels[depth].name!r} in hierarchy {self.name!r}"
                ) from None
        return current

    def members_of(self, level_name: str) -> frozenset:
        """Return the known members of a level.

        For the finest level these are the keys of the first parent map (or
        the explicit domain); for coarser levels, the values of the map below.
        Levels with explicit domains return those.
        """
        level = self.level(level_name)
        if level.domain is not None:
            return level.domain
        depth = self.depth_of(level_name)
        if depth == 0:
            if len(self.levels) == 1:
                return frozenset()
            return frozenset(self._parent_maps[0].keys())
        return frozenset(self._parent_maps[depth - 1].values())

    def descendants_of(self, level_name: str, member: Member, at: str) -> frozenset:
        """Return all members of level ``at`` whose ancestor at ``level_name``
        is ``member``.

        ``at`` must be finer than or equal to ``level_name``.  Used by
        ancestor benchmarks and by predicate pushdown.
        """
        if not self.rolls_up_to(at, level_name):
            raise SchemaError(
                f"level {at!r} does not roll up to {level_name!r} "
                f"in hierarchy {self.name!r}"
            )
        if at == level_name:
            return frozenset({member})
        current = {member}
        stop, start = self.depth_of(level_name), self.depth_of(at)
        for depth in range(stop - 1, start - 1, -1):
            parent_map = self._parent_maps[depth]
            current = {child for child, parent in parent_map.items() if parent in current}
        return frozenset(current)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_parent_maps(self) -> None:
        for depth, parent_map in enumerate(self._parent_maps):
            child_level = self.levels[depth]
            parent_level = self.levels[depth + 1]
            for child, parent in parent_map.items():
                if not child_level.contains(child):
                    raise MemberError(
                        f"member {child!r} not in domain of level {child_level.name!r}"
                    )
                if not parent_level.contains(parent):
                    raise MemberError(
                        f"member {parent!r} not in domain of level {parent_level.name!r}"
                    )

    def __repr__(self) -> str:
        chain = " >= ".join(self.level_names())
        return f"Hierarchy({self.name!r}: {chain})"
