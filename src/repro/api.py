"""Public API: the :class:`AssessSession` facade.

A session bundles everything a user needs to pose assess statements: the
multidimensional engine holding registered cubes, a session-local function
registry, and predeclared labeling functions.  Typical use::

    from repro import AssessSession
    from repro.datagen import sales_engine

    session = AssessSession(sales_engine())
    result = session.assess('''
        with SALES for year = '1997', product = 'milk' by year, product
        assess quantity against 1000
        using ratio(quantity, 1000)
        labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}
    ''')
    print(result.to_table())
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from .algebra.executor import PlanExecutor
from .algebra.plan import GetNode, JoinNode, PivotNode, Plan
from .algebra.planner import build_all_plans, build_plan, feasible_plans
from .core.labels import LabelRule, RangeLabeling
from .core.result import AssessResult
from .core.schema import CubeSchema
from .core.statement import AssessStatement
from .engine.star import StarSchema
from .functions.registry import FunctionRegistry, default_registry
from .olap.engine import MultidimensionalEngine
from .parser.parser import parse_statement

StatementLike = Union[str, AssessStatement]


class AssessSession:
    """A user session against one multidimensional engine."""

    def __init__(
        self,
        engine: MultidimensionalEngine,
        registry: Optional[FunctionRegistry] = None,
        parallelism: Optional[int] = None,
        morsel_rows: Optional[int] = None,
        parallel_backend: str = "thread",
        memory_budget: Optional[int] = None,
        telemetry=None,
    ):
        self.engine = engine
        # Copy the default registry so user registrations stay session-local.
        self.registry = registry.copy() if registry else default_registry().copy()
        self._executor = PlanExecutor(engine, self.registry)
        # Named labeling *specs* (e.g. coordinate-dependent labelings) that
        # cannot be plain value→label functions; resolved at plan time.
        self._named_specs: Dict[str, object] = {}
        # Morsel-driven parallel execution: an explicit ``parallelism=N``
        # wins; otherwise the REPRO_PARALLELISM environment variable (the
        # CI parallel-smoke hook) supplies the session default.  Results
        # are bit-identical to serial either way, so this is safe to set
        # globally.  Degree <= 1 leaves the engine untouched (another
        # session may already have configured it).
        if parallelism is None:
            from .parallel.config import env_parallelism

            parallelism = env_parallelism()
        if parallelism is not None and parallelism > 1:
            engine.set_parallelism(
                parallelism, morsel_rows=morsel_rows, backend=parallel_backend
            )
        # Bounded-memory execution: an explicit ``memory_budget`` (bytes)
        # routes oversized fact passes through the spill-to-disk tier.
        # ``None`` leaves the engine's budget alone (the executor already
        # picked up REPRO_MEMORY_BYTES / REPRO_SPILL_BYTES from the
        # environment, and another session may have configured one).
        # Spilled results are bit-identical to in-RAM, so this too is
        # safe to set globally.
        if memory_budget is not None:
            engine.set_memory_budget(memory_budget)
        # Persistent telemetry: ``telemetry=`` takes a directory path or
        # a shared :class:`repro.obs.telemetry.Telemetry`; ``None`` falls
        # back to the REPRO_TELEMETRY_DIR environment variable (unset =
        # disabled).  When enabled, every executed statement appends one
        # record to the query log — see docs/observability.md
        # "Persistent telemetry".  Recording never changes results.
        from .obs.telemetry import Telemetry

        self.telemetry = Telemetry.resolve(telemetry)
        # Sessions sharing one bundle (a server tenant's pool) each get
        # a distinct label so query-log records stay attributable.
        self.telemetry_label = (
            self.telemetry.register_session()
            if self.telemetry is not None else None
        )

    def set_memory_budget(self, budget_bytes: Optional[int]) -> None:
        """Bound fact-pass grouping state (bytes); ``None`` removes it."""
        self.engine.set_memory_budget(budget_bytes)

    @property
    def memory_budget(self) -> Optional[int]:
        """The engine's memory budget in bytes (``None`` = unbounded)."""
        return self.engine.memory_budget

    def set_parallelism(
        self,
        degree: Optional[int],
        morsel_rows: Optional[int] = None,
        backend: str = "thread",
        min_rows: Optional[int] = None,
    ) -> None:
        """Reconfigure parallel execution (``None``/``1`` turns it off)."""
        self.engine.set_parallelism(
            degree, morsel_rows=morsel_rows, backend=backend, min_rows=min_rows
        )

    @property
    def parallelism(self) -> int:
        """The effective parallelism degree (1 when serial)."""
        config = self.engine.parallel
        return config.degree if config is not None else 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_cube(self, name: str, schema: CubeSchema, star: StarSchema) -> None:
        """Make a detailed cube available in ``with`` clauses."""
        self.engine.register_cube(name, schema, star)

    def register_function(
        self,
        name: str,
        kind: str,
        func: Callable,
        arity: Optional[int] = None,
        doc: str = "",
    ) -> None:
        """Register a user comparison/transformation/labeling/prediction
        function for use in ``using``/``labels`` clauses."""
        self.registry.register(name, kind, func, arity=arity, doc=doc)

    def define_labeling(self, name: str, rules: Sequence[LabelRule]) -> None:
        """Predeclare a named range-based labeling function (e.g. ``5stars``
        of Example 3.3), usable as ``labels <name>``."""
        labeling = RangeLabeling(rules)

        def apply_ranges(values: np.ndarray) -> np.ndarray:
            return labeling.apply(values)

        self.registry.register(
            name, "labeling", apply_ranges,
            arity=1, doc=f"range labeling {labeling.render()}",
        )

    def define_labeling_spec(self, name: str, spec) -> None:
        """Predeclare a named labeling *spec* (e.g. a
        :class:`~repro.core.labels.CoordinateLabeling`).

        Unlike :meth:`define_labeling`, the spec is substituted into the
        statement at plan time, so it can consult cell coordinates — the
        §8 "ranges that depend ... also on their coordinates" extension.
        """
        self._named_specs[name.lower()] = spec

    # ------------------------------------------------------------------
    # Statement life cycle
    # ------------------------------------------------------------------
    def parse(self, text: str) -> AssessStatement:
        """Parse statement text against the session's registered cubes."""
        return parse_statement(text, lambda name: self.engine.cube(name).schema)

    def analyze(self, text: str):
        """Statically analyze statement text without raising.

        Returns a :class:`~repro.core.diagnostics.DiagnosticBag` with every
        finding of the analyzer — syntax errors, semantic defects, and
        warnings alike — instead of the first-failure behaviour of
        :meth:`parse`.
        """
        from .analysis import AnalysisContext, analyze_text

        _, bag = analyze_text(text, AnalysisContext.for_session(self))
        return bag

    def _resolve(self, statement: StatementLike) -> AssessStatement:
        if isinstance(statement, AssessStatement):
            return statement
        return self.parse(statement)

    def plan(self, statement: StatementLike, plan: str = "best") -> Plan:
        """Build a named execution plan.

        ``plan`` is ``NP``/``JOP``/``POP``, ``best`` (the most optimized
        feasible plan, the paper's static rule), or ``auto`` (cost-based
        selection over all feasible plans).
        """
        resolved = self._resolve(statement)
        self._substitute_named_spec(resolved)
        if plan == "auto":
            from .algebra.cost import choose_plan

            chosen, _ = choose_plan(resolved, self.engine)
            return chosen
        return build_plan(resolved, self.engine, plan)

    def _substitute_named_spec(self, statement: AssessStatement) -> None:
        from .core.labels import NamedLabeling

        labels = statement.labels
        if isinstance(labels, NamedLabeling):
            spec = self._named_specs.get(labels.name.lower())
            if spec is not None:
                statement.labels = spec

    def plans(self, statement: StatementLike) -> Dict[str, Plan]:
        """All feasible plans for a statement."""
        return build_all_plans(self._resolve(statement), self.engine)

    def assess(self, statement: StatementLike, plan: str = "best") -> AssessResult:
        """Parse (if needed), plan, and execute an assess statement.

        With telemetry enabled the execution (plan choice included) is
        additionally recorded as one query-log record — fingerprint,
        per-phase timings, counter deltas, rows in/out; errors after a
        successful parse are recorded too (``status: "error"``) and
        re-raised unchanged.
        """
        resolved = self._resolve(statement)
        if self.telemetry is None:
            return self._executor.execute(self.plan(resolved, plan), resolved)
        return self._assess_recorded(resolved, plan)

    def _assess_recorded(
        self, resolved: AssessStatement, plan: str
    ) -> AssessResult:
        import time

        telemetry = self.telemetry
        counters_before = self.engine.metrics.snapshot()["counters"]
        start = time.perf_counter()
        try:
            built = self.plan(resolved, plan)
            result = self._executor.execute(built, resolved)
        except Exception as error:
            telemetry.record_statement(
                resolved,
                plan_name=plan,
                status="error",
                total_s=time.perf_counter() - start,
                counters_before=counters_before,
                counters_after=self.engine.metrics.snapshot()["counters"],
                error=f"{type(error).__name__}: {error}",
                parallelism=self.parallelism,
                memory_budget=self.memory_budget,
                session_label=self.telemetry_label,
            )
            raise
        telemetry.record_statement(
            resolved,
            plan_name=result.plan_name,
            status="ok",
            total_s=time.perf_counter() - start,
            phases=result.timings,
            rows_out=len(result),
            cells_out=len(result.cube) * max(len(result.cube.measures), 1),
            counters_before=counters_before,
            counters_after=self.engine.metrics.snapshot()["counters"],
            parallelism=self.parallelism,
            memory_budget=self.memory_budget,
            session_label=self.telemetry_label,
        )
        return result

    def execute_plan(self, plan: Plan, statement: StatementLike) -> AssessResult:
        """Execute an already-built plan (benchmark harness entry point)."""
        return self._executor.execute(plan, self._resolve(statement))

    def execute_many(
        self, statements: Sequence[StatementLike], plan: str = "best"
    ):
        """Plan and execute a statement batch with cross-statement sharing.

        The batch subsystem merges the statements' plans into one shared
        DAG: identical pushed queries execute once (CSE by canonical
        fingerprint), and compatible gets over the same star are answered
        from fused multi-group-by scans.  Results are bit-identical to
        calling :meth:`assess` once per statement and come back in input
        order, with per-statement timings and a sharing report
        (``result.report.render()``).  ``plan="auto"`` uses the
        batch-aware cost model, which prefers plans that maximize
        sharing.  See ``docs/performance.md``.
        """
        from .batch import run_batch

        return run_batch(self, list(statements), plan=plan)

    def analyze_workload(self, text: str, plan: str = "best"):
        """Statically analyze a whole workload script against this session.

        Runs the flow analyzer (:mod:`repro.analysis.flow`) over the
        script: per-statement diagnostics plus the predicted sharing plan
        (fused scans), cache-derivation edges, float-exactness verdicts,
        and cardinality/cost bounds — everything the ``ASSESS5xx`` group
        covers, without executing a single statement.  Returns a
        :class:`repro.analysis.flow.WorkloadReport`.
        """
        from .analysis.flow import analyze_workload

        return analyze_workload(
            text, session=self, origin="<session>", plan_name=plan
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Lifetime counters and occupancy of the engine's result cache.

        Keys: ``hits``/``misses``/``derivations``/``evictions``/
        ``invalidations``/``stores`` plus ``entries``, ``cached_cells``,
        ``cached_bytes``, ``cell_budget`` and ``enabled``, and the batch
        sharing counters ``batch_statements``/``batch_cse_hits``/
        ``batch_fused_groups``/``batch_fused_scans``/
        ``batch_fused_derived``/``batch_fused_fallbacks``.  All counters
        are served by the engine's metrics registry
        (``session.engine.metrics``); see ``docs/performance.md`` and
        ``docs/observability.md`` for how to read them.
        """
        stats = self.engine.result_cache.stats()
        metrics = self.engine.metrics
        stats.update(
            batch_statements=metrics.get("batch.statements"),
            batch_cse_hits=metrics.get("batch.cse_hits"),
            batch_fused_groups=metrics.get("batch.fused_groups"),
            batch_fused_scans=metrics.get("engine.fused_scans"),
            batch_fused_derived=metrics.get("engine.fused_derived"),
            batch_fused_fallbacks=metrics.get("engine.fused_fallbacks"),
        )
        return stats

    def clear_cache(self) -> None:
        """Drop every memoized query result (counters are kept)."""
        self.engine.result_cache.clear()

    def explain(self, statement: StatementLike, plan: str = "best") -> str:
        """The plan tree (with per-node cost-model estimates) plus the SQL
        text of every pushed operation."""
        from .algebra.cost import estimate_plan_cost
        from .obs.analyze import annotate_estimates

        resolved = self._resolve(statement)
        built = build_plan(resolved, self.engine, plan)
        estimate = estimate_plan_cost(built, self.engine)
        parts = [annotate_estimates(built, estimate), ""]
        for i, sql in enumerate(self.pushed_sql(built), start=1):
            parts.append(f"-- pushed query {i}")
            parts.append(sql)
            parts.append("")
        return "\n".join(parts).rstrip() + "\n"

    def explain_analyze(
        self,
        statement: Union[StatementLike, Sequence[StatementLike]],
        plan: str = "best",
    ):
        """Execute with tracing and annotate the plan tree with actuals.

        Accepts one statement or a list (a list executes as a shared
        batch via :meth:`execute_many`, so the annotations show CSE and
        fusion provenance).  Returns an
        :class:`~repro.obs.analyze.ExplainAnalyzeReport`: ``render()``
        for the estimated-vs-actual tree, ``to_json()`` /
        ``to_chrome()`` for machine-readable traces, ``result`` /
        ``results`` for the assess results themselves.  Raises on an
        unregistered cube (diagnostic ``ASSESS401``).
        """
        from .obs.analyze import explain_analyze as _explain_analyze

        statements: List[StatementLike]
        if isinstance(statement, (str, AssessStatement)):
            statements = [statement]
        else:
            statements = list(statement)
        return _explain_analyze(self, statements, plan=plan)

    def pushed_sql(self, plan: Plan) -> List[str]:
        """The SQL statements a plan sends to the DBMS, in execution order."""
        statements: List[str] = []
        consumed_gets = set()
        for node in plan.nodes():
            if isinstance(node, JoinNode) and node.pushed:
                join_levels = (
                    node.join_levels
                    if node.join_levels is not None
                    else node.left.query.group_by.levels
                )
                statements.append(
                    self.engine.sql_for_drill_across(
                        node.left.query, node.right.query, join_levels,
                        alias=node.alias, outer=node.outer,
                    )
                )
                consumed_gets.add(id(node.left))
                consumed_gets.add(id(node.right))
            elif isinstance(node, PivotNode) and node.pushed:
                statements.append(
                    self.engine.sql_for_pivot(
                        node.child.query, node.level, node.reference,
                        node.member_renames, require_all=node.require_all,
                    )
                )
                consumed_gets.add(id(node.child))
        for node in plan.nodes():
            if isinstance(node, GetNode) and id(node) not in consumed_gets:
                statements.append(self.engine.sql_for_get(node.query))
        return statements

    def feasible_plans(self, statement: StatementLike) -> Sequence[str]:
        """The plan names applicable to a statement (Section 5.2 matrix)."""
        return feasible_plans(self._resolve(statement))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AssessSession(cubes={list(self.engine.cube_names())})"
