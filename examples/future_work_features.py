"""The paper's §8 future-work list, implemented and demonstrated.

Run with::

    python examples/future_work_features.py

Shows the four extensions the paper's conclusions call for:

1. **descriptive level properties** — per-capita sales comparisons using a
   country-population property bound to the store dimension;
2. **partial-statement completion** — the system fills in missing
   ``using``/``labels`` clauses and ranks the candidates by interest;
3. **ancestor benchmarks** — assess milk against its whole category;
4. **cost-based optimization** — ``plan="auto"`` picks the cheapest
   feasible plan from catalog statistics;

plus materialized views, which the paper's experimental setup relied on.
"""

from repro import AssessSession, complete_statement
from repro.algebra.cost import choose_plan
from repro.datagen import sales_engine


def main() -> None:
    session = AssessSession(sales_engine(n_rows=50_000))

    # ------------------------------------------------------------------
    print("=== 1. level properties: per-capita sales, Italy vs France ===")
    result = session.assess("""
        with SALES for country = 'Italy' by product, country
        assess quantity against country = 'France'
        using ratio(quantity / population,
                    benchmark.quantity / benchmark.population)
        labels {[0, 0.9): lagging, [0.9, 1.1]: similar, (1.1, inf): leading}
    """)
    print(result.to_table(limit=5))
    print(f"labels: {result.label_counts()}")

    # ------------------------------------------------------------------
    print("\n=== 2. partial-statement completion ===")
    partial = """
        with SALES for type = 'Fresh Fruit', country = 'Italy'
        by product, country
        assess quantity against country = 'France'
    """
    print("partial statement (no using, no labels):")
    print("   " + " ".join(partial.split()))
    for rank, completion in enumerate(complete_statement(session, partial), 1):
        using = completion.statement.using.render()
        labels = completion.statement.labels.render()
        print(f"  #{rank} score={completion.score:.3f}  using {using}")
        print(f"      labels {labels}   ({completion.rationale})")

    # ------------------------------------------------------------------
    print("\n=== 3. ancestor benchmark: each drink vs the Drinks category ===")
    result = session.assess("""
        with SALES for category = 'Drinks' by product
        assess quantity against ancestor category
        using percentage(quantity, benchmark.quantity)
        labels {[0, 25): minor, [25, 50): notable, [50, 100]: dominant}
    """)
    print(result.to_table())

    # ------------------------------------------------------------------
    print("\n=== 4. cost-based plan choice ===")
    statement = session.parse("""
        with SALES for month = '1997-07' by month, store
        assess storeSales against past 4
        using ratio(storeSales, benchmark.storeSales)
        labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
    """)
    plan, totals = choose_plan(statement, session.engine)
    print(f"estimated costs: " + ", ".join(
        f"{name}={cost:,.0f}" for name, cost in sorted(totals.items())
    ))
    print(f"chosen plan: {plan.name}")
    result = session.assess(statement, plan="auto")
    print(f"executed with {result.plan_name} in {1000 * result.total_time():.1f} ms")

    # ------------------------------------------------------------------
    print("\n=== 5. materialized views ===")
    sibling = """
        with SALES for country = 'Italy' by product, country
        assess quantity against country = 'France'
        using difference(quantity, benchmark.quantity)
        labels {[-inf, 0): behind, [0, inf): ahead}
    """
    before = session.assess(sibling, plan="POP")
    view = session.engine.materialize("SALES", ["product", "country"])
    session.assess(sibling, plan="POP")  # warm the view's dictionaries
    after = session.assess(sibling, plan="POP")
    print(f"created {view}")
    print(f"POP without view: {1000 * before.total_time():.1f} ms; "
          f"with view: {1000 * after.total_time():.1f} ms")
    print("pushed SQL now reads:",
          session.pushed_sql(session.plan(sibling, "POP"))[0].splitlines()[1])
    assert before.label_counts() == after.label_counts()

    # ------------------------------------------------------------------
    print("\n=== 6. view advisor over a repeated workload ===")
    from repro.olap import advise_views

    workload = [session.parse(sibling), session.parse(statement.render()),
                session.parse(sibling)]
    for recommendation in advise_views(session.engine, workload):
        print(f"  {recommendation}")


if __name__ == "__main__":
    main()
