"""Sibling benchmarks: fresh-fruit sales, Italy vs France (Example 4.1).

Run with::

    python examples/sibling_analysis.py

Poses the paper's sibling intention — assess the quantity of each fresh
fruit sold in Italy against the quantity sold in France, as a percentage of
total Italian fresh-fruit sales — and executes it with all three plans
(NP, JOP, POP), showing that they agree and how their pushed SQL differs.
"""

from repro import AssessSession
from repro.datagen import sales_engine

STATEMENT = """
with SALES
for type = 'Fresh Fruit', country = 'Italy'
by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""


def main() -> None:
    session = AssessSession(sales_engine(n_rows=50_000))

    print("=== statement ===")
    print(STATEMENT.strip())

    for plan_name in session.feasible_plans(STATEMENT):
        result = session.assess(STATEMENT, plan=plan_name)
        millis = 1000.0 * result.total_time()
        print(f"\n=== plan {plan_name}  ({millis:.1f} ms) ===")
        print(result.to_table())
        breakdown = ", ".join(
            f"{step}={1000.0 * seconds:.2f}ms"
            for step, seconds in sorted(result.timings.items())
        )
        print(f"step breakdown: {breakdown}")

    print("\n=== POP pushes a single pivot query (Listing 5) ===")
    statement = session.parse(STATEMENT)
    for sql in session.pushed_sql(session.plan(statement, "POP")):
        print(sql)

    # assess* keeps Italian products France does not sell, with null labels.
    star = session.assess(STATEMENT.replace("assess quantity", "assess* quantity"))
    nulls = sum(1 for cell in star if cell.label is None)
    print(f"\nassess* variant: {len(star)} cells, {nulls} with null labels")


if __name__ == "__main__":
    main()
