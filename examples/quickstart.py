"""Quickstart: assess milk sales against a KPI (Example 1.1 of the paper).

Run with::

    python examples/quickstart.py

Builds the SALES example cube, poses the paper's introductory assess
statement — "how good is the total quantity of milk sold in 1997 compared
to the target 8000?" — and prints the labeled result, the execution plan,
and the SQL the plan pushes to the engine.
"""

from repro import AssessSession
from repro.datagen import sales_engine

STATEMENT = """
with SALES
for year = '1997', product = 'milk'
by year, product
assess quantity against 8000
using ratio(quantity, 8000)
labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}
"""


def main() -> None:
    print("Building the SALES cube (20k fact rows)...")
    session = AssessSession(sales_engine(n_rows=20_000))

    print("\n=== statement ===")
    print(STATEMENT.strip())

    result = session.assess(STATEMENT)
    print("\n=== result ===")
    print(result.to_table())
    print(f"\nlabel counts: {result.label_counts()}")

    print("\n=== plan & pushed SQL ===")
    print(session.explain(STATEMENT))

    # The same assessment, labeled on the raw distribution instead:
    quartiles = session.assess(
        "with SALES by month assess storeSales labels quartiles"
    )
    print("=== monthly store sales, quartile labels ===")
    print(quartiles.to_table(limit=6))
    print(f"... ({len(quartiles)} months total)")


if __name__ == "__main__":
    main()
