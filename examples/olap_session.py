"""A full interactive-analysis session over the SSB cube.

Run with::

    python examples/olap_session.py

Walks the scenario the paper's introduction motivates: an analyst explores
a sales cube by chaining assess intentions — a KPI check, a distribution
labeling, a sibling comparison between regions, a forecast check, and the
ancestor-benchmark extension — each one cheap to write and immediately
labeled.
"""

from repro import AssessSession
from repro.core import Interval, LabelRule
from repro.datagen import ssb_engine


def show(title: str, result, limit: int = 5) -> None:
    print(f"\n=== {title} (plan {result.plan_name}, "
          f"{1000 * result.total_time():.0f} ms, {len(result)} cells) ===")
    print(result.to_table(limit=limit))
    if len(result) > limit:
        print(f"... plus {len(result) - limit} more cells")
    print(f"labels: {dict(result.label_counts())}")


def main() -> None:
    print("Building the SSB cube (150k lineorder rows)...")
    session = AssessSession(ssb_engine(lineorder_rows=150_000))

    # A user-predeclared 5-star labeling (Example 3.3).
    bounds = [-1.0, -0.6, -0.2, 0.2, 0.6, 1.0]
    stars = ["*", "**", "***", "****", "*****"]
    session.define_labeling(
        "fiveStars",
        [
            LabelRule(
                Interval(bounds[i], bounds[i + 1], i == 0, True), stars[i]
            )
            for i in range(5)
        ],
    )

    # 1. KPI check: is yearly revenue near 180M per region?
    show(
        "KPI: yearly revenue per customer region vs 180M",
        session.assess(
            """with SSB by year, c_region assess revenue against 180000000
               using ratio(revenue, 180000000)
               labels {[0, 0.8): miss, [0.8, 1.2]: hit, (1.2, inf): exceed}"""
        ),
    )

    # 2. Distribution labeling: which months were strong?
    show(
        "monthly revenue quartiles",
        session.assess("with SSB by month assess revenue labels quartiles"),
    )

    # 3. Sibling benchmark: ASIA vs AMERICA per part category.
    show(
        "category revenue, ASIA vs AMERICA (5-star scale)",
        session.assess(
            """with SSB for s_region = 'ASIA' by category, s_region
               assess revenue against s_region = 'AMERICA'
               using minMaxNormSym(difference(revenue, benchmark.revenue))
               labels fiveStars"""
        ),
    )

    # 4. Past benchmark: forecast check for mid-1998.
    show(
        "June 1998 revenue per supplier nation vs 4-month forecast",
        session.assess(
            """with SSB for month = '1998-06' by month, s_nation
               assess revenue against past 4
               using ratio(revenue, benchmark.revenue)
               labels {[0, 0.9): 'below forecast', [0.9, 1.1]: 'on forecast',
                       (1.1, inf): 'above forecast'}"""
        ),
    )

    # 5. Ancestor extension: each brand vs its whole category.
    result = session.assess(
        """with SSB by brand assess revenue against ancestor category
           using ratio(revenue, benchmark.revenue) labels top5"""
    )
    print(f"\n=== brand share of its category, top-5 ranking "
          f"({len(result)} brands) ===")
    print(f"labels: {dict(sorted(result.label_counts().items()))}")

    # 6. assess*: which (year, c_nation) cells have no budget coverage?
    star = session.assess(
        """with SSB by month, category
           assess* revenue against BUDGET.expected_revenue
           using ratio(revenue, benchmark.expected_revenue)
           labels {[0, 0.95): short, [0.95, 1.05]: close, (1.05, inf): ahead}"""
    )
    nulls = sum(1 for cell in star if cell.label is None)
    print(f"\nassess* vs BUDGET: {len(star)} cells, {nulls} without coverage")


if __name__ == "__main__":
    main()
