"""External benchmarks: SSB revenue against a budget cube.

Run with::

    python examples/external_budget.py

Builds an SSB-style star plus the BUDGET external cube (expected revenue by
month and category, reconciled with the SSB schema per Section 3.1), then
assesses actual revenue against the budget with a normalized difference and
a three-way labeling.  Shows the drill-across the JOP plan pushes to SQL.
"""

from collections import Counter

from repro import AssessSession
from repro.datagen import ssb_engine

STATEMENT = """
with SSB
by month, category
assess revenue against BUDGET.expected_revenue
using normalizedDifference(revenue, benchmark.expected_revenue)
labels {[-inf, -0.1): underBudget, [-0.1, 0.1]: onTrack, (0.1, inf): overBudget}
"""


def main() -> None:
    print("Building an SSB star (120k lineorder rows) + BUDGET cube...")
    session = AssessSession(ssb_engine(lineorder_rows=120_000))

    print("\n=== statement ===")
    print(STATEMENT.strip())

    result = session.assess(STATEMENT, plan="JOP")
    print(f"\n{len(result)} (month, category) cells assessed "
          f"in {1000 * result.total_time():.1f} ms with plan JOP")
    print(f"label distribution: {dict(result.label_counts())}")

    print("\n=== worst 5 cells (most under budget) ===")
    worst = sorted(result, key=lambda cell: cell.comparison)[:5]
    for cell in worst:
        month, category = cell.coordinate
        print(f"  {month}  {category:<8}  actual={cell.value:>14.2f}  "
              f"budget={cell.benchmark:>14.2f}  Δ={cell.comparison:+.3f}  "
              f"→ {cell.label}")

    print("\n=== per-year verdict counts ===")
    by_year = Counter()
    for cell in result:
        year = cell.coordinate[0][:4]
        by_year[(year, cell.label)] += 1
    years = sorted({year for year, _ in by_year})
    labels = ("underBudget", "onTrack", "overBudget")
    print(f"{'year':<6}" + "".join(f"{label:>14}" for label in labels))
    for year in years:
        print(f"{year:<6}" + "".join(
            f"{by_year.get((year, label), 0):>14}" for label in labels
        ))

    print("\n=== the single drill-across JOP pushes (Listing 4 shape) ===")
    statement = session.parse(STATEMENT)
    print(session.pushed_sql(session.plan(statement, "JOP"))[0])


if __name__ == "__main__":
    main()
