"""From a flat CSV file to labeled assessments in a dozen lines.

Run with::

    python examples/csv_to_assess.py

Writes a small denormalized CSV (the shape of a typical BI export),
normalises it into a star schema with :func:`repro.datagen.star_from_flat`,
and poses assess statements against it — including a sibling comparison and
the result highlights.
"""

import os
import tempfile

from repro.api import AssessSession
from repro.datagen import star_from_flat, table_from_csv
from repro.engine import Catalog
from repro.olap import MultidimensionalEngine

CSV = """region,rep,product,category,units,revenue
North,Ada,Laptop,Hardware,12,14400
North,Ada,Mouse,Accessories,40,800
North,Ben,Laptop,Hardware,7,8400
North,Ben,Keyboard,Accessories,25,1250
South,Cleo,Laptop,Hardware,15,18000
South,Cleo,Monitor,Hardware,9,2700
South,Dan,Mouse,Accessories,55,1100
South,Dan,Keyboard,Accessories,18,900
West,Eve,Laptop,Hardware,4,4800
West,Eve,Monitor,Hardware,11,3300
West,Fay,Mouse,Accessories,30,600
West,Fay,Keyboard,Accessories,22,1100
"""


def main() -> None:
    with tempfile.NamedTemporaryFile(
        "w", suffix=".csv", delete=False
    ) as handle:
        handle.write(CSV)
        path = handle.name
    try:
        flat = table_from_csv(path, name="orders")
        print(f"loaded {len(flat)} rows, columns: {', '.join(flat.column_names)}")

        engine = MultidimensionalEngine(Catalog())
        star_from_flat(
            engine,
            "ORDERS",
            flat,
            hierarchies={
                "Geo": ["rep", "region"],
                "Catalog": ["product", "category"],
            },
            measures={"units": "sum", "revenue": "sum"},
        )
        session = AssessSession(engine)

        print("\n=== revenue per category vs a 10k goal ===")
        result = session.assess("""
            with ORDERS by category
            assess revenue against 10000
            using ratio(revenue, 10000)
            labels {[0, 0.8): short, [0.8, 1.2]: onGoal, (1.2, inf): beyond}
        """)
        print(result.to_table())

        print("\n=== North vs South, per product (POP plan) ===")
        result = session.assess("""
            with ORDERS for region = 'North' by product, region
            assess units against region = 'South'
            using difference(units, benchmark.units)
            labels {[-inf, 0): behind, [0, inf): ahead}
        """, plan="POP")
        print(result.to_table())

        print("\n=== rep revenue quartiles, with highlights ===")
        result = session.assess(
            "with ORDERS by rep assess revenue labels quartiles"
        )
        print(result.to_table())
        print("highlights (most interesting cells):")
        for cell in result.highlights(k=2):
            print(f"  {cell.coordinate[0]}: revenue={cell.value:.0f} "
                  f"({cell.label})")
    finally:
        os.unlink(path)


if __name__ == "__main__":
    main()
