"""Past benchmarks: judge this month's sales against a forecast.

Run with::

    python examples/past_forecasting.py

The paper's fourth benchmark type compares actual measure values against
the values *predicted* from the k previous time slices.  This example
assesses July-1997 store sales of every store against a linear-regression
forecast from the previous four months, then repeats the assessment with
the alternative predictors the library ships (moving average, naive last,
exponential smoothing) to show how the verdicts shift.
"""

from repro import AssessSession
from repro.algebra import PlanExecutor, build_plan
from repro.datagen import sales_engine

STATEMENT = """
with SALES
for month = '1997-07'
by month, store
assess storeSales against past 4
using ratio(storeSales, benchmark.storeSales)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""


def main() -> None:
    session = AssessSession(sales_engine(n_rows=50_000))

    print("=== statement (all stores, July 1997 vs forecast) ===")
    print(STATEMENT.strip())

    result = session.assess(STATEMENT)
    print(f"\n=== result (plan {result.plan_name}) ===")
    print(result.to_table())

    print("\n=== same assessment under different predictors ===")
    statement = session.parse(STATEMENT)
    executor = PlanExecutor(session.engine, session.registry)
    header = f"{'store':<14}" + "".join(
        f"{m:>22}" for m in
        ("linearRegression", "movingAverage", "naiveLast", "exponentialSmoothing")
    )
    print(header)
    rows = {}
    for method in ("linearRegression", "movingAverage", "naiveLast",
                   "exponentialSmoothing"):
        statement.benchmark.method = method
        plan = build_plan(statement, session.engine, "best")
        outcome = executor.execute(plan, statement)
        for cell in outcome.cells():
            store = cell.coordinate[1]
            rows.setdefault(store, {})[method] = (
                f"{cell.comparison:.3f} ({cell.label})"
            )
    for store, verdicts in sorted(rows.items()):
        line = f"{store:<14}" + "".join(
            f"{verdicts.get(m, '-'):>22}"
            for m in ("linearRegression", "movingAverage", "naiveLast",
                      "exponentialSmoothing")
        )
        print(line)

    print("\n=== how the three plans execute the past intention ===")
    for plan_name in ("NP", "JOP", "POP"):
        plan = session.plan(STATEMENT, plan_name)
        print(f"\n{plan.explain()}")


if __name__ == "__main__":
    main()
