"""Differential tests of compressed columnar storage and zone pruning.

The storage layer's contract is *transparency*: dictionary/RLE-encoded
columns, clustered row order, memory-mapped v2 stores, and zone-map
pruning must never change a query answer — every cell stays bit-identical
to the plain in-RAM path (the only sanctioned exception is re-clustering,
which reorders rows and therefore reassociates fractional float sums; the
clustered store is compared against itself with pruning toggled instead).

Three layers are exercised:

1. unit tests of the column encodings and zone-map/pruner machinery;
2. random cubes + the four reference intentions, compressed vs plain;
3. a saved v2 store, memory-mapped back, against the in-RAM original.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AssessSession
from repro.batch import results_identical
from repro.core.groupby import GroupBySet
from repro.core.query import CubeQuery, Predicate
from repro.datagen.random_cube import random_hierarchy
from repro.datagen.flat import star_from_flat
from repro.datagen.ssb import ssb_engine_from_catalog
from repro.engine.catalog import Catalog
from repro.engine.columns import (
    DictionaryColumn,
    MembersZoneTest,
    NeverZoneTest,
    PlainColumn,
    RangeZoneTest,
    RLEColumn,
    ZonePruner,
    build_zone_map,
    encode_array,
    predicate_zone_test,
    ranges_length,
    take_ranges,
)
from repro.engine.persist import (
    compress_catalog,
    compress_table,
    load_catalog,
    save_catalog,
)
from repro.engine.table import Table
from repro.experiments.statements import INTENTIONS, prepare_engine, statement_text
from repro.olap.engine import MultidimensionalEngine

PRUNING_STATEMENT = """
    with SSB for year = '1997' by month, c_region
    assess quantity against 100000
    using ratio(quantity, 100000)
    labels {[0, 0.9): low, [0.9, 1.1]: ok, (1.1, inf): high}
"""


# ----------------------------------------------------------------------
# Unit: encodings decode bit-exactly
# ----------------------------------------------------------------------
class TestEncodings:
    def test_dictionary_roundtrip(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 40, 5_000).astype(np.float64)
        column = encode_array(values)
        assert isinstance(column, DictionaryColumn)
        assert column.decode().tobytes() == values.tobytes()
        assert column.stored_bytes < values.nbytes

    def test_rle_roundtrip(self):
        values = np.repeat(np.arange(20, dtype=np.int64), 500)
        column = encode_array(values)
        assert isinstance(column, RLEColumn)
        assert np.array_equal(column.decode(), values)
        assert column.stored_bytes < values.nbytes

    def test_high_cardinality_stays_plain(self):
        values = np.arange(10_000, dtype=np.float64) + 0.5
        column = encode_array(values)
        assert isinstance(column, PlainColumn)

    def test_nan_floats_never_dictionary_encode(self):
        values = np.array([1.0, np.nan, 1.0, np.nan] * 100)
        column = encode_array(values)
        assert not isinstance(column, DictionaryColumn)
        decoded = column.decode()
        assert decoded.tobytes() == values.tobytes()  # NaNs preserved

    def test_object_strings_dictionary_encode(self):
        values = np.array(["ASIA", "EUROPE", "ASIA", "AFRICA"] * 200,
                          dtype=object)
        column = encode_array(values)
        assert isinstance(column, DictionaryColumn)
        assert list(column.decode()) == list(values)
        assert column.decode().dtype == object

    @pytest.mark.parametrize("seed", range(3))
    def test_window_and_gather_match_decode(self, seed):
        rng = np.random.default_rng(seed)
        arrays = [
            rng.integers(0, 10, 997).astype(np.int64),        # dict
            np.repeat(rng.integers(0, 5, 10), 100),           # rle
            rng.uniform(0, 1, 997),                           # plain
        ]
        for values in arrays:
            column = encode_array(values)
            decoded = column.decode()
            assert np.array_equal(decoded, values)
            for lo, hi in ((0, 0), (0, 13), (500, 997), (996, 997)):
                window = column.window(lo, min(hi, len(values)))
                assert np.array_equal(window, values[lo:hi])
            ranges = [(0, 100), (300, 301), (900, len(values))]
            gathered = column.gather(ranges)
            expected = np.concatenate([values[lo:hi] for lo, hi in ranges])
            assert np.array_equal(gathered, expected)

    def test_take_ranges_conventions(self):
        values = np.arange(10)
        assert take_ranges(values, None) is values          # nothing pruned
        assert len(take_ranges(values, [])) == 0            # all pruned
        assert take_ranges(values, [(2, 5)]).tolist() == [2, 3, 4]
        assert ranges_length(None, 10) == 10
        assert ranges_length([(2, 5), (7, 9)], 10) == 5


# ----------------------------------------------------------------------
# Unit: zone maps and the pruner
# ----------------------------------------------------------------------
class TestZoneMaps:
    def test_bounds_and_null_counts(self):
        values = np.array([1.0, 2.0, np.nan, 4.0, 5.0, 6.0, 7.0, 8.0])
        zone_map = build_zone_map(values, zone_rows=4)
        assert zone_map.n_zones == 2
        assert zone_map.null_counts.tolist() == [1, 0]
        assert zone_map.maxs[1] == 8.0
        assert zone_map.mins[1] == 5.0
        lo, hi = zone_map.value_range()
        assert (lo, hi) == (1.0, 8.0)

    def test_range_test_prunes_disjoint_zones(self):
        values = np.concatenate([
            np.full(100, 10.0), np.full(100, 20.0), np.full(100, 30.0),
        ])
        zone_map = build_zone_map(values, zone_rows=100)
        pruner = ZonePruner(100, 300, [(zone_map, RangeZoneTest(15.0, 25.0))])
        assert pruner.survivors().tolist() == [False, True, False]
        assert pruner.surviving_row_ranges() == [(100, 200)]
        assert pruner.zones_pruned == 2
        assert pruner.rows_pruned == 200
        assert pruner.range_may_match(100, 200)
        assert not pruner.range_may_match(0, 100)
        assert 0.0 < pruner.survival_fraction() < 1.0

    def test_members_test_and_never_test(self):
        values = np.concatenate([np.arange(0, 50), np.arange(100, 150)])
        zone_map = build_zone_map(values.astype(np.float64), zone_rows=50)
        members = ZonePruner(
            50, 100, [(zone_map, MembersZoneTest((120.0,)))]
        )
        assert members.survivors().tolist() == [False, True]
        never = ZonePruner(50, 100, [(zone_map, NeverZoneTest())])
        assert never.surviving_row_ranges() == []

    def test_adjacent_surviving_zones_coalesce(self):
        values = np.arange(400, dtype=np.float64)
        zone_map = build_zone_map(values, zone_rows=100)
        pruner = ZonePruner(
            100, 400, [(zone_map, RangeZoneTest(150.0, 350.0))]
        )
        assert pruner.surviving_row_ranges() == [(100, 400)]

    def test_predicate_zone_tests(self):
        assert isinstance(
            predicate_zone_test(Predicate.eq("year", "1997")), MembersZoneTest
        )
        assert isinstance(
            predicate_zone_test(Predicate.isin("year", [])), NeverZoneTest
        )
        assert isinstance(
            predicate_zone_test(Predicate.between("key", 1, 5)), RangeZoneTest
        )

    def test_nan_zones_are_prunable(self):
        # an all-NaN zone can never satisfy a comparison predicate
        values = np.array([np.nan, np.nan, 3.0, 4.0])
        zone_map = build_zone_map(values, zone_rows=2)
        pruner = ZonePruner(2, 4, [(zone_map, RangeZoneTest(0.0, 10.0))])
        assert pruner.survivors().tolist() == [False, True]


# ----------------------------------------------------------------------
# Differential: random cubes, compressed vs plain, bit-identical
# ----------------------------------------------------------------------
def _random_engine(seed: int, n_rows: int = 1_200):
    rng = np.random.default_rng(seed)
    h0 = random_hierarchy(rng, "H0", depth=3)
    h1 = random_hierarchy(rng, "H1", depth=2)
    columns = {}
    for hierarchy in (h0, h1):
        finest = hierarchy.finest_level.name
        members = sorted(hierarchy.members_of(finest))
        chosen = [members[i] for i in rng.integers(0, len(members), n_rows)]
        for level in hierarchy.level_names():
            column = np.empty(n_rows, dtype=object)
            column[:] = [
                hierarchy.rollup_member(member, finest, level)
                for member in chosen
            ]
            columns[level] = column
    columns["m_int"] = rng.integers(0, 1000, n_rows).astype(np.float64)
    columns["m_frac"] = np.round(rng.uniform(0.0, 100.0, n_rows), 2)
    engine = MultidimensionalEngine(Catalog())
    star_from_flat(
        engine,
        "RAND",
        Table("flat", dict(columns)),
        {h.name: list(h.level_names()) for h in (h0, h1)},
        {"m_int": "sum", "m_frac": "sum"},
    )
    engine.result_cache.enabled = False
    return engine, (h0, h1)


def _assert_same_cube(left, right):
    assert list(left.coords) == list(right.coords)
    assert list(left.measures) == list(right.measures)
    for name in left.coords:
        assert left.coords[name].tolist() == right.coords[name].tolist(), name
    for name in left.measures:
        a, b = left.measures[name], right.measures[name]
        assert a.tobytes() == b.tobytes(), name  # bit-identical


@pytest.mark.parametrize("seed", range(4))
def test_random_cubes_compressed_vs_plain(seed):
    plain_engine, hierarchies = _random_engine(seed)
    compressed_engine, _ = _random_engine(seed)
    compressed = compress_catalog(compressed_engine.catalog, zone_rows=128)
    for table in compressed:
        compressed_engine.catalog.register(table, replace=True)

    rng = np.random.default_rng(seed + 100)
    schema = plain_engine.cube("RAND").schema
    for _ in range(6):
        levels = [
            h.level_names()[int(rng.integers(0, len(h.levels)))]
            for h in hierarchies
            if rng.random() < 0.8
        ] or [hierarchies[0].level_names()[0]]
        predicates = []
        if rng.random() < 0.6:
            hierarchy = hierarchies[int(rng.integers(0, 2))]
            level = hierarchy.level_names()[
                int(rng.integers(0, len(hierarchy.levels)))
            ]
            members = sorted(hierarchy.members_of(level))
            predicates.append(Predicate.eq(level, members[0]))
        query = CubeQuery(
            "RAND", GroupBySet(schema, levels), tuple(predicates),
            ("m_int", "m_frac"),
        )
        _assert_same_cube(
            plain_engine.get(query), compressed_engine.get(query)
        )

    counters = compressed_engine.metrics.snapshot()["counters"]
    checked = counters.get("engine.storage.zones_checked", 0)
    pruned = counters.get("engine.storage.zones_pruned", 0)
    assert pruned <= checked


# ----------------------------------------------------------------------
# Differential: the four intentions, compressed vs plain, warm replays
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ssb_pair():
    plain = AssessSession(prepare_engine(30_000))
    compressed_engine = prepare_engine(30_000)
    squeezed = compress_catalog(compressed_engine.catalog, zone_rows=2_048)
    for table in squeezed:
        compressed_engine.catalog.register(table, replace=True)
    return plain, AssessSession(compressed_engine)


@pytest.mark.parametrize("intention", INTENTIONS)
def test_intentions_compressed_vs_plain(ssb_pair, intention):
    plain, compressed = ssb_pair
    text = statement_text(intention)
    expected = plain.assess(text)
    got = compressed.assess(text)
    assert results_identical(expected, got), intention
    # warm-cache replay over the compressed store stays identical too
    assert results_identical(expected, compressed.assess(text)), intention


def test_pruning_toggle_is_invisible():
    """Zone pruning on vs off over the same clustered store: identical
    cells, sane counters, and the selective scan really prunes."""
    base = prepare_engine(40_000)
    clustered = compress_catalog(
        base.catalog, zone_rows=2_048,
        cluster={"ssb_lineorder": "lo_datekey"},
    )

    def session():
        engine = ssb_engine_from_catalog(clustered)
        engine.result_cache.enabled = False
        return AssessSession(engine), engine

    pruning_session, pruning_engine = session()
    no_pruning_session, no_pruning_engine = session()
    no_pruning_engine.executor.zone_pruning = False

    a = pruning_session.assess(PRUNING_STATEMENT)
    b = no_pruning_session.assess(PRUNING_STATEMENT)
    assert results_identical(a, b)

    counters = pruning_engine.metrics.snapshot()["counters"]
    checked = counters["engine.storage.zones_checked"]
    pruned = counters["engine.storage.zones_pruned"]
    rows_pruned = counters["engine.storage.rows_pruned"]
    assert 0 < pruned <= checked
    assert rows_pruned > 0
    scanned = counters["engine.rows_scanned"]
    off_scanned = no_pruning_engine.metrics.snapshot()["counters"][
        "engine.rows_scanned"
    ]
    assert scanned < off_scanned  # the pruned scan really read less

    assert "engine.storage.zones_pruned" not in (
        no_pruning_engine.metrics.snapshot()["counters"]
    ) or no_pruning_engine.metrics.snapshot()["counters"].get(
        "engine.storage.zones_pruned", 0
    ) == 0


def test_parallel_pruning_skips_morsels():
    """Parallel morsel scans over a clustered store: pruned morsels are
    never enqueued and the answer matches the serial plain engine
    (integral measure, so clustering cannot reassociate the sums)."""
    base = prepare_engine(40_000)
    clustered = compress_catalog(
        base.catalog, zone_rows=2_048,
        cluster={"ssb_lineorder": "lo_datekey"},
    )
    serial_engine = ssb_engine_from_catalog(clustered)
    serial_engine.result_cache.enabled = False
    parallel_engine = ssb_engine_from_catalog(clustered)
    parallel_engine.result_cache.enabled = False

    # sessions first: the AssessSession constructor applies the
    # REPRO_PARALLELISM env default, which would override these configs
    serial_session = AssessSession(serial_engine)
    parallel_session = AssessSession(parallel_engine)
    serial_session.set_parallelism(None)
    parallel_session.set_parallelism(2, morsel_rows=2_048, min_rows=2_048)

    serial = serial_session.assess(PRUNING_STATEMENT)
    parallel = parallel_session.assess(PRUNING_STATEMENT)
    assert results_identical(serial, parallel)

    counters = parallel_engine.metrics.snapshot()["counters"]
    assert counters.get("engine.storage.morsels_pruned", 0) > 0


# ----------------------------------------------------------------------
# Differential: saved v2 store, memory-mapped, vs the in-RAM original
# ----------------------------------------------------------------------
def test_mmap_store_matches_in_ram(tmp_path):
    engine = prepare_engine(30_000)
    path = str(tmp_path / "ssb_store")
    save_catalog(engine.catalog, path, zone_rows=4_096)

    in_ram = AssessSession(engine)
    mapped = AssessSession(
        ssb_engine_from_catalog(load_catalog(path, mmap=True))
    )
    for intention in INTENTIONS:
        text = statement_text(intention)
        assert results_identical(in_ram.assess(text), mapped.assess(text)), (
            intention
        )


def test_compress_table_is_lossless():
    engine = prepare_engine(10_000)
    fact = engine.catalog.table("ssb_lineorder")
    squeezed = compress_table(fact, zone_rows=1_024)
    assert squeezed.has_zone_maps
    for name in fact.column_names:
        assert fact.column(name).tobytes() == squeezed.column(name).tobytes()
    report = squeezed.storage_info()
    assert any(entry["encoding"] != "plain" for entry in report)
