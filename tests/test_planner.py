"""Unit tests for plan construction and the Section 5.2 feasibility matrix."""

import pytest

from repro.algebra import (
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    PlanExecutor,
    PredictNode,
    UsingNode,
    build_all_plans,
    build_naive_plan,
    build_plan,
    feasible_plans,
)
from repro.core import PlanError


def parse(session, text):
    return session.parse(text)


SIBLING = """
with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""
PAST = """
with SALES for month = '1997-07', store = 'SmartMart' by month, store
assess storeSales against past 4
using ratio(storeSales, benchmark.storeSales)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""
CONSTANT = """
with SALES by month assess storeSales against 1000
using ratio(storeSales, 1000)
labels {[0, 1): under, [1, inf): over}
"""
ZERO = "with SALES by month assess storeSales labels quartiles"
ANCESTOR = (
    "with SALES by product assess quantity against ancestor type "
    "using ratio(quantity, benchmark.quantity) labels median"
)


class TestFeasibility:
    def test_constant_only_np(self, sales_session):
        statement = parse(sales_session, CONSTANT)
        assert feasible_plans(statement) == ("NP",)

    def test_zero_only_np(self, sales_session):
        assert feasible_plans(parse(sales_session, ZERO)) == ("NP",)

    def test_sibling_all_three(self, sales_session):
        assert feasible_plans(parse(sales_session, SIBLING)) == ("NP", "JOP", "POP")

    def test_past_all_three(self, sales_session):
        assert feasible_plans(parse(sales_session, PAST)) == ("NP", "JOP", "POP")

    def test_external_np_jop(self, ssb_session):
        statement = ssb_session.parse(
            """with SSB by month, category
               assess revenue against BUDGET.expected_revenue labels quartiles"""
        )
        assert feasible_plans(statement) == ("NP", "JOP")

    def test_ancestor_only_np(self, sales_session):
        assert feasible_plans(parse(sales_session, ANCESTOR)) == ("NP",)

    def test_infeasible_plan_rejected(self, sales_session):
        statement = parse(sales_session, CONSTANT)
        with pytest.raises(PlanError):
            build_plan(statement, sales_session.engine, "JOP")
        with pytest.raises(PlanError):
            build_plan(statement, sales_session.engine, "POP")

    def test_best_resolves_to_most_optimized(self, sales_session):
        statement = parse(sales_session, SIBLING)
        assert build_plan(statement, sales_session.engine, "best").name == "POP"
        constant = parse(sales_session, CONSTANT)
        assert build_plan(constant, sales_session.engine, "best").name == "NP"


class TestPlanShapes:
    def test_np_sibling_shape(self, sales_session):
        plan = build_plan(parse(sales_session, SIBLING), sales_session.engine, "NP")
        assert isinstance(plan.root, LabelNode)
        using = plan.root.child
        assert isinstance(using, UsingNode)
        join = using.child
        assert isinstance(join, JoinNode) and not join.pushed
        assert join.join_levels == ("product",)
        assert isinstance(join.left, GetNode) and join.left.role == "target"
        assert isinstance(join.right, GetNode) and join.right.role == "benchmark"

    def test_jop_sibling_pushes_join(self, sales_session):
        plan = build_plan(parse(sales_session, SIBLING), sales_session.engine, "JOP")
        join = plan.root.child.child
        assert isinstance(join, JoinNode) and join.pushed
        assert plan.count_pushed() == 1

    def test_pop_sibling_replaces_join_with_pivot(self, sales_session):
        plan = build_plan(parse(sales_session, SIBLING), sales_session.engine, "POP")
        pivot = plan.root.child.child
        assert isinstance(pivot, PivotNode) and pivot.pushed
        get = pivot.child
        assert isinstance(get, GetNode) and get.role == "combined"
        # the merged predicate includes both slices
        country_predicate = get.query.predicate_on("country")
        assert country_predicate.member_set() == frozenset({"Italy", "France"})

    def test_np_past_shape(self, sales_session):
        plan = build_plan(parse(sales_session, PAST), sales_session.engine, "NP")
        join = plan.root.child.child
        assert isinstance(join, JoinNode) and not join.pushed
        assert join.join_levels == ("store",)
        # right branch: Project(Predict(Pivot(Get)))
        chain = join.right
        names = []
        while True:
            names.append(type(chain).__name__)
            children = chain.children
            if not children:
                break
            chain = children[0]
        assert names == ["ProjectNode", "PredictNode", "PivotNode", "GetNode"]

    def test_jop_past_shape(self, sales_session):
        plan = build_plan(parse(sales_session, PAST), sales_session.engine, "JOP")
        predict = plan.root.child.child
        assert isinstance(predict, PredictNode)
        join = predict.child
        assert isinstance(join, JoinNode) and join.pushed and join.multi

    def test_pop_past_shape(self, sales_session):
        plan = build_plan(parse(sales_session, PAST), sales_session.engine, "POP")
        predict = plan.root.child.child
        assert isinstance(predict, PredictNode)
        pivot = predict.child
        assert isinstance(pivot, PivotNode) and pivot.pushed
        assert pivot.reference == "1997-07"
        assert set(pivot.member_renames) == {
            "1997-03", "1997-04", "1997-05", "1997-06"
        }

    def test_past_window_clipped_by_history(self, sales_session):
        statement = sales_session.parse(
            """with SALES for month = '1996-02', store = 'SmartMart'
               by month, store assess storeSales against past 6
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 1): worse, [1, inf): better}"""
        )
        plan = build_plan(statement, sales_session.engine, "NP")
        predict = [n for n in plan.nodes() if isinstance(n, PredictNode)]
        assert len(predict[0].input_columns) == 1  # only 1996-01 exists

    def test_no_history_rejected(self, sales_session):
        statement = sales_session.parse(
            """with SALES for month = '1996-01', store = 'SmartMart'
               by month, store assess storeSales against past 4
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 1): worse, [1, inf): better}"""
        )
        with pytest.raises(PlanError):
            build_plan(statement, sales_session.engine, "NP")

    def test_explain_renders_tree(self, sales_session):
        plan = build_plan(parse(sales_session, SIBLING), sales_session.engine, "NP")
        text = plan.explain()
        assert "Plan NP" in text
        assert "Join" in text and "Get[target]" in text and "Label" in text

    def test_build_all_plans(self, sales_session):
        plans = build_all_plans(parse(sales_session, PAST), sales_session.engine)
        assert set(plans) == {"NP", "JOP", "POP"}
        assert plans["NP"].name == "NP"

    def test_zero_benchmark_plan_shape(self, sales_session):
        plan = build_naive_plan(parse(sales_session, ZERO), sales_session.engine)
        from repro.algebra import AddConstantNode

        node = plan.root.child.child
        assert isinstance(node, AddConstantNode)
        assert node.value == 0.0
        assert plan.benchmark_column == "benchmark.constant"


class TestMeasureCollection:
    def test_derived_measure_fetched(self, sales_session):
        statement = sales_session.parse(
            "with SALES by month assess storeSales "
            "using storeSales - storeCost labels top3"
        )
        plan = build_plan(statement, sales_session.engine, "NP")
        get = [n for n in plan.nodes() if isinstance(n, GetNode)][0]
        assert set(get.query.measures) == {"storeSales", "storeCost"}

    def test_external_extra_benchmark_measures(self, ssb_session):
        statement = ssb_session.parse(
            """with SSB by month, category
               assess revenue against BUDGET.expected_revenue
               using difference(revenue, benchmark.expected_revenue)
               labels quartiles"""
        )
        plan = build_plan(statement, ssb_session.engine, "NP")
        gets = [n for n in plan.nodes() if isinstance(n, GetNode)]
        benchmark_get = [g for g in gets if g.role == "benchmark"][0]
        assert benchmark_get.query.measures == ("expected_revenue",)
