"""Interval edge cases: degenerate points, infinite bounds, boundary
touching, and a hypothesis property tying contains() to mask()."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ValidationError
from repro.core.labels import (
    NEG_INF,
    POS_INF,
    Interval,
    LabelRule,
    find_gaps,
    find_overlaps,
)


# ----------------------------------------------------------------------
# Degenerate [x, x]
# ----------------------------------------------------------------------
class TestDegenerate:
    def test_closed_point_contains_only_itself(self):
        point = Interval(2.0, 2.0, True, True)
        assert point.contains(2.0)
        assert not point.contains(2.0 - 1e-9)
        assert not point.contains(2.0 + 1e-9)

    def test_point_mask(self):
        point = Interval(2.0, 2.0, True, True)
        values = np.array([1.9, 2.0, 2.1])
        assert point.mask(values).tolist() == [False, True, False]

    @pytest.mark.parametrize(
        "low_closed,high_closed", [(True, False), (False, True), (False, False)]
    )
    def test_non_closed_point_is_rejected(self, low_closed, high_closed):
        with pytest.raises(ValidationError):
            Interval(1.0, 1.0, low_closed, high_closed)

    def test_empty_interval_is_rejected(self):
        with pytest.raises(ValidationError):
            Interval(5.0, 2.0, True, True)


# ----------------------------------------------------------------------
# Infinite bounds are forced open
# ----------------------------------------------------------------------
class TestInfiniteBounds:
    def test_syntactically_closed_inf_becomes_open(self):
        interval = Interval(NEG_INF, 0.0, True, True)
        assert not interval.low_closed
        assert not interval.contains(NEG_INF)
        assert interval.contains(-1e300) and interval.contains(0.0)

    def test_high_inf_forced_open(self):
        interval = Interval(0.0, POS_INF, True, True)
        assert not interval.high_closed
        assert not interval.contains(POS_INF)

    def test_closed_inf_point_is_degenerate(self):
        # [inf, inf] collapses to an open-open point -> rejected, not crashed.
        with pytest.raises(ValidationError):
            Interval(POS_INF, POS_INF, True, True)

    def test_full_line(self):
        full = Interval(NEG_INF, POS_INF, False, False)
        assert full.contains(0.0) and full.contains(1e308)
        assert not full.contains(POS_INF) and not full.contains(NEG_INF)


# ----------------------------------------------------------------------
# Boundary touching
# ----------------------------------------------------------------------
class TestBoundaryTouching:
    def test_half_open_neighbours_do_not_overlap(self):
        rules = [
            LabelRule(Interval(0, 1, True, False), "a"),
            LabelRule(Interval(1, 2, True, True), "b"),
        ]
        assert find_overlaps(rules) == []
        assert find_gaps(rules, 0, 2) == []

    def test_closed_closed_touch_overlaps(self):
        rules = [
            LabelRule(Interval(0, 1, True, True), "a"),
            LabelRule(Interval(1, 2, True, True), "b"),
        ]
        overlaps = find_overlaps(rules)
        assert len(overlaps) == 1
        assert overlaps[0][0].label == "a" and overlaps[0][1].label == "b"

    def test_open_open_touch_leaves_point_gap(self):
        rules = [
            LabelRule(Interval(0, 1, True, False), "a"),
            LabelRule(Interval(1, 2, False, True), "b"),
        ]
        assert find_overlaps(rules) == []
        gaps = find_gaps(rules, 0, 2)
        assert gaps == [Interval(1, 1, True, True)]

    def test_boundary_value_belongs_to_exactly_one_side(self):
        left = Interval(0, 1, True, False)
        right = Interval(1, 2, True, True)
        assert not left.contains(1.0) and right.contains(1.0)


# ----------------------------------------------------------------------
# Hypothesis: contains() and mask() always agree
# ----------------------------------------------------------------------
finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
bound = st.one_of(finite, st.just(NEG_INF), st.just(POS_INF))


@given(
    low=bound,
    high=bound,
    low_closed=st.booleans(),
    high_closed=st.booleans(),
    probe=finite,
)
def test_contains_matches_mask(low, high, low_closed, high_closed, probe):
    if low > high:
        low, high = high, low
    try:
        interval = Interval(low, high, low_closed, high_closed)
    except ValidationError:
        return  # degenerate open point: rejected by construction
    # Probe an arbitrary value plus both boundaries and near-boundary values.
    probes = [probe, low, high, math.nextafter(low, high), math.nextafter(high, low)]
    probes = [p for p in probes if not math.isinf(p)]
    values = np.array(probes, dtype=np.float64)
    mask = interval.mask(values)
    for value, masked in zip(probes, mask):
        assert interval.contains(value) == bool(masked), (interval, value)


@given(low=finite, high=finite)
def test_nan_never_matches(low, high):
    if low > high:
        low, high = high, low
    try:
        interval = Interval(low, high, True, True)
    except ValidationError:
        return
    assert not bool(interval.mask(np.array([float("nan")]))[0])
