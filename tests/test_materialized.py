"""Unit tests for materialized views and query routing."""

import numpy as np
import pytest

from repro.core import CubeQuery, EngineError, GroupBySet, Predicate
from repro.datagen import ssb_engine


@pytest.fixture()
def engine():
    """A private small engine per test: views mutate engine state."""
    return ssb_engine(lineorder_rows=20_000, seed=5, with_budget=False)


def cells_of(cube):
    return {coordinate: round(values["revenue"], 4) for coordinate, values in cube.cells()}


class TestMaterialize:
    def test_view_registered_and_stored(self, engine):
        view = engine.materialize("SSB", ["month", "category"])
        assert view.name in engine.view_names()
        assert engine.catalog.has_table(view.table_name)
        assert view.row_count == len(engine.catalog.table(view.table_name))

    def test_only_distributive_measures_stored(self, engine):
        view = engine.materialize("SSB", ["month"])
        assert "discount" not in view.measures  # avg measure
        assert "revenue" in view.measures

    def test_duplicate_name_rejected(self, engine):
        engine.materialize("SSB", ["month"], name="v1")
        with pytest.raises(EngineError):
            engine.materialize("SSB", ["year"], name="v1")

    def test_drop_view(self, engine):
        view = engine.materialize("SSB", ["month"])
        engine.drop_view(view.name)
        assert view.name not in engine.view_names()
        assert not engine.catalog.has_table(view.table_name)
        with pytest.raises(EngineError):
            engine.drop_view(view.name)


class TestRouting:
    def query(self, engine, levels, predicates=(), measures=("revenue",)):
        schema = engine.cube("SSB").schema
        return CubeQuery("SSB", GroupBySet(schema, levels), predicates, measures)

    def test_exact_match_routes_and_agrees(self, engine):
        query = self.query(engine, ["month", "category"])
        base = engine.get(query)
        engine.materialize("SSB", ["month", "category"])
        routed = engine.get(query)
        assert cells_of(base) == cells_of(routed)
        assert "mv_ssb" in engine.sql_for_get(query)

    def test_subset_group_by_routes(self, engine):
        engine.materialize("SSB", ["month", "category", "s_region"])
        query = self.query(engine, ["category"])
        assert "mv_ssb" in engine.sql_for_get(query)
        engine.use_materialized_views = False
        base = engine.get(query)
        engine.use_materialized_views = True
        assert cells_of(base) == cells_of(engine.get(query))

    def test_predicate_level_must_be_in_view(self, engine):
        engine.materialize("SSB", ["month", "category"])
        query = self.query(
            engine, ["month"], predicates=(Predicate.eq("s_region", "ASIA"),)
        )
        # s_region is not stored: must fall back to the fact table
        assert "ssb_lineorder" in engine.sql_for_get(query)

    def test_predicate_on_view_level_routes(self, engine):
        engine.materialize("SSB", ["month", "s_region"])
        query = self.query(
            engine, ["month"], predicates=(Predicate.eq("s_region", "ASIA"),)
        )
        assert "mv_ssb" in engine.sql_for_get(query)
        engine.use_materialized_views = False
        base = engine.get(query)
        engine.use_materialized_views = True
        assert cells_of(base) == cells_of(engine.get(query))

    def test_avg_measure_falls_back(self, engine):
        engine.materialize("SSB", ["month"])
        query = self.query(engine, ["month"], measures=("discount",))
        assert "ssb_lineorder" in engine.sql_for_get(query)

    def test_count_measure_reaggregates_by_summing(self, engine):
        schema = engine.cube("SSB").schema
        # add a count-style check through quantity min/max instead: SSB has
        # no count measure, so verify min/max re-aggregation correctness.
        query = self.query(engine, ["year"], measures=("quantity",))
        base = engine.get(query)
        engine.materialize("SSB", ["month"])  # finer: must re-aggregate
        routed = engine.get(query)
        for coordinate, values in base.cells():
            assert routed.cell(coordinate)["quantity"] == pytest.approx(
                values["quantity"]
            )

    def test_smallest_covering_view_wins(self, engine):
        engine.materialize("SSB", ["date", "category"], name="big")
        engine.materialize("SSB", ["year", "category"], name="small")
        query = self.query(engine, ["category"])
        assert "small" in engine.sql_for_get(query)

    def test_toggle_disables_routing(self, engine):
        engine.materialize("SSB", ["month"])
        query = self.query(engine, ["month"])
        engine.use_materialized_views = False
        assert "ssb_lineorder" in engine.sql_for_get(query)
        engine.use_materialized_views = True
        assert "mv_ssb" in engine.sql_for_get(query)


class TestRoutingThroughPlans:
    def test_sibling_pop_uses_view(self, engine):
        """Views route transparently under the pushed pivot of POP."""
        from repro.api import AssessSession

        session = AssessSession(engine)
        statement = """
            with SSB for s_region = 'ASIA' by category, s_region
            assess revenue against s_region = 'AMERICA'
            using difference(revenue, benchmark.revenue)
            labels {[-inf, 0): behind, [0, inf): ahead}
        """
        before = session.assess(statement, plan="POP")
        engine.materialize("SSB", ["category", "s_region"])
        after = session.assess(statement, plan="POP")
        assert before.label_counts() == after.label_counts()
        sql = session.pushed_sql(session.plan(statement, "POP"))[0]
        assert "mv_ssb" in sql
