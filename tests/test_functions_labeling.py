"""Unit tests for distribution-based labelers (Section 3.3.2)."""

import numpy as np
import pytest

from repro.functions import (
    cluster_labels,
    equi_width_labels,
    kmeans_1d,
    optimal_cluster_count,
    quantile_labels,
    top_k_labels,
    zscore_likert_labels,
)
from repro.functions.registry import default_registry


class TestQuantileLabels:
    def test_quartile_split_is_equi_depth(self):
        values = np.arange(100, dtype=float)
        labels = quantile_labels(values, 4, ["Q1", "Q2", "Q3", "Q4"])
        counts = {label: int((labels == label).sum()) for label in set(labels)}
        assert counts == {"Q1": 25, "Q2": 25, "Q3": 25, "Q4": 25}

    def test_order_respected(self):
        values = np.array([1.0, 100.0])
        labels = quantile_labels(values, 2, ["low", "high"])
        assert labels.tolist() == ["low", "high"]

    def test_nan_gets_none(self):
        labels = quantile_labels(np.array([1.0, np.nan]), 2, ["a", "b"])
        assert labels[1] is None

    def test_single_group(self):
        labels = quantile_labels(np.array([3.0, 4.0]), 1, ["all"])
        assert labels.tolist() == ["all", "all"]

    def test_empty(self):
        assert quantile_labels(np.array([]), 4, list("abcd")).size == 0


class TestEquiWidthLabels:
    def test_bins_by_value_not_frequency(self):
        # 9 small values, 1 large: equi-width puts the 9 in the first bin.
        values = np.array([1.0] * 9 + [100.0])
        labels = equi_width_labels(values, 2, ["low", "high"])
        assert (labels[:9] == "low").all()
        assert labels[9] == "high"

    def test_constant_column(self):
        labels = equi_width_labels(np.array([5.0, 5.0]), 3, list("abc"))
        assert labels.tolist() == ["a", "a"]


class TestTopK:
    def test_top1_holds_largest(self):
        values = np.arange(30, dtype=float)
        labels = top_k_labels(values, 3)
        assert labels[-1] == "top-1"
        assert labels[0] == "top-3"

    def test_vocabulary(self):
        labels = set(top_k_labels(np.arange(20, dtype=float), 4).tolist())
        assert labels == {"top-1", "top-2", "top-3", "top-4"}


class TestZscoreLikert:
    def test_five_point_scale(self):
        values = np.concatenate([np.zeros(50), np.array([100.0, -100.0])])
        labels = zscore_likert_labels(values)
        assert labels[50] == "much above"
        assert labels[51] == "much below"

    def test_constant_is_average(self):
        labels = zscore_likert_labels(np.array([3.0, 3.0, 3.0]))
        assert set(labels.tolist()) == {"average"}


class TestKMeans:
    def test_two_obvious_clusters(self):
        values = np.array([0.0, 0.1, 0.2, 10.0, 10.1, 10.2])
        assignment = kmeans_1d(values, 2)
        assert assignment.tolist() == [0, 0, 0, 1, 1, 1]

    def test_clusters_ordered_by_centroid(self):
        values = np.array([100.0, 0.0, 100.0, 0.0])
        assignment = kmeans_1d(values, 2)
        assert assignment.tolist() == [1, 0, 1, 0]

    def test_k_capped_by_distinct_values(self):
        assignment = kmeans_1d(np.array([1.0, 1.0]), 5)
        assert assignment.max() == 0

    def test_optimal_count_finds_obvious_gap(self):
        values = np.concatenate([np.zeros(20), np.full(20, 50.0)])
        assert optimal_cluster_count(values) == 2

    def test_optimal_count_degenerate(self):
        assert optimal_cluster_count(np.array([1.0, 1.0])) == 1

    def test_cluster_labels_auto_k(self):
        values = np.concatenate([np.zeros(10), np.full(10, 9.0)])
        labels = cluster_labels(values)
        assert set(labels.tolist()) == {"cluster-1", "cluster-2"}
        assert labels[0] == "cluster-1"  # ascending by centroid

    def test_cluster_labels_nan(self):
        labels = cluster_labels(np.array([np.nan, 1.0, 2.0]), k=2)
        assert labels[0] is None


class TestRegisteredLabelers:
    def test_builtin_vocabularies(self):
        registry = default_registry()
        for name in ("quartiles", "quintiles", "terciles", "deciles", "median",
                     "top3", "equiwidth5", "zscoreLikert", "cluster"):
            assert registry.has(name), name
            assert registry.get(name).kind == "labeling"

    def test_quartiles_function(self):
        registry = default_registry()
        labels = registry.get("quartiles")(np.arange(8, dtype=float))
        assert labels.tolist() == ["Q1", "Q1", "Q2", "Q2", "Q3", "Q3", "Q4", "Q4"]
