"""Regression guards: the shipped workloads stay lint-clean, and the
diagnostic catalog stays in sync with its documentation."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import AnalysisContext, lint_paths, lint_statements
from repro.analysis.codes import ALL_CODES, PLAN_CODES, STATEMENT_CODES, severity_of
from repro.core.diagnostics import Severity
from repro.experiments.statements import STATEMENTS, prepare_engine

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# The bundled experiment workload is error-free
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def experiment_context():
    engine = prepare_engine(lineorder_rows=1500)
    return AnalysisContext.for_engines([engine])


def test_experiment_statements_have_no_errors(experiment_context):
    results = lint_statements(
        [text.strip() for text in STATEMENTS.values()],
        experiment_context,
        "experiments.statements",
    )
    assert len(results) == len(STATEMENTS)
    for result in results:
        errors = result.bag.errors()
        assert not errors, (
            f"{result.statement.splitlines()[0]}: "
            f"{[str(d) for d in errors]}"
        )


# ----------------------------------------------------------------------
# The example scripts are error-free (they register their own cubes, so
# they are linted without a schema resolver).
# ----------------------------------------------------------------------
def test_example_scripts_have_no_errors():
    examples = REPO_ROOT / "examples"
    assert examples.is_dir()
    report = lint_paths([examples], AnalysisContext(schemas=None))
    assert report.statements > 0
    offenders = [
        (result.origin, str(d))
        for result in report.results
        for d in result.bag.errors()
    ]
    assert not offenders, offenders


# ----------------------------------------------------------------------
# Catalog <-> docs consistency
# ----------------------------------------------------------------------
def docs_text() -> str:
    return (REPO_ROOT / "docs" / "language.md").read_text()


def test_catalog_structure():
    assert set(STATEMENT_CODES) <= set(ALL_CODES)
    assert set(PLAN_CODES) <= set(ALL_CODES)
    for code, info in ALL_CODES.items():
        assert re.fullmatch(r"ASSESS\d{3}", code)
        assert info.code == code
        assert severity_of(code) is info.severity
        assert info.title


def test_every_code_is_documented():
    documented = set(re.findall(r"ASSESS\d{3}", docs_text()))
    missing = set(ALL_CODES) - documented
    assert not missing, f"codes missing from docs/language.md: {sorted(missing)}"


def test_no_undocumented_codes_in_docs():
    documented = set(re.findall(r"ASSESS\d{3}", docs_text()))
    phantom = documented - set(ALL_CODES)
    assert not phantom, f"docs mention unknown codes: {sorted(phantom)}"


def test_documented_severities_match_catalog():
    rows = re.findall(r"\|\s*`(ASSESS\d{3})`\s*\|\s*(\w+)\s*\|", docs_text())
    assert rows, "docs table rows not found"
    for code, severity_word in rows:
        assert code in ALL_CODES
        assert str(ALL_CODES[code].severity) == severity_word, (
            f"{code}: docs say {severity_word!r}, "
            f"catalog says {ALL_CODES[code].severity}"
        )
    # Every code appears as a table row, not just in passing prose.
    assert {code for code, _ in rows} == set(ALL_CODES)


def test_warning_codes_stay_warnings():
    # These must never be errors: the bundled workloads legitimately
    # trigger them (half-open label sets, session-defined labelings).
    for code in ("ASSESS106", "ASSESS125", "ASSESS130", "ASSESS133"):
        assert severity_of(code) is Severity.WARNING


def test_readme_mentions_lint():
    assert "repro.cli lint" in (REPO_ROOT / "README.md").read_text()
