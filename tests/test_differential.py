"""Differential oracle suite: four execution strategies, one answer.

Every query here is executed four ways —

1. **python kernels**: a row-at-a-time pure-Python evaluation of the
   star aggregate (the oracle; no NumPy group-by, no engine code);
2. **serial engine**: the vectorised executor with parallelism off;
3. **parallel engine**: the morsel-driven executor at parallelism
   ∈ {2, 3, 8};
4. **warm cache**: the semantic result cache serving a repeat of the
   same query.

— and the results must be **bit-identical** across all four (the oracle
is compared on gate-passing measures, where any association order sums
exactly; fractional measures are exactly the ones the engine refuses to
parallelize or derive, so they exercise the fallback paths and must
still match bit-for-bit between the engine arms).

The second half runs the four reference intentions — the paper's
Constant / External / Sibling / Past benchmark types — through full
assess statements under the same four strategies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AssessSession
from repro.batch import results_identical
from repro.core.groupby import GroupBySet
from repro.core.query import CubeQuery, Predicate
from repro.datagen.flat import star_from_flat
from repro.datagen.random_cube import random_hierarchy
from repro.engine.catalog import Catalog
from repro.engine.table import Table
from repro.experiments.statements import INTENTIONS, prepare_engine, statement_text
from repro.olap.engine import MultidimensionalEngine

PARALLEL_DEGREES = (2, 3, 8)

# Integral-valued measures sum exactly in any order, so the oracle (and
# the parallel merge) must reproduce the serial engine to the last bit.
ORACLE_MEASURES = {"m_sum": "sum", "m_min": "min", "m_avg": "avg"}
ALL_MEASURES = ("m_sum", "m_min", "m_avg", "m_frac")


# ----------------------------------------------------------------------
# Random star cubes (flat columns retained for the python oracle)
# ----------------------------------------------------------------------
def _random_star(seed: int, n_rows: int = 1500):
    """A random 2-hierarchy star; returns (flat columns, engine, hierarchies)."""
    rng = np.random.default_rng(seed)
    h0 = random_hierarchy(rng, "H0", depth=3)
    h1 = random_hierarchy(rng, "H1", depth=2)
    hierarchies = [h0, h1]
    columns = {}
    for hierarchy in hierarchies:
        finest = hierarchy.finest_level.name
        members = sorted(hierarchy.members_of(finest))
        chosen = [members[i] for i in rng.integers(0, len(members), n_rows)]
        for level in hierarchy.level_names():
            column = np.empty(n_rows, dtype=object)
            column[:] = [
                hierarchy.rollup_member(member, finest, level) for member in chosen
            ]
            columns[level] = column
    columns["m_sum"] = rng.integers(0, 1000, n_rows).astype(np.float64)
    columns["m_min"] = rng.integers(-500, 500, n_rows).astype(np.float64)
    columns["m_avg"] = rng.integers(0, 100, n_rows).astype(np.float64)
    columns["m_frac"] = np.round(rng.uniform(0.0, 100.0, n_rows), 2)
    engine = MultidimensionalEngine(Catalog())
    star_from_flat(
        engine,
        "RAND",
        Table("flat", dict(columns)),
        {h.name: list(h.level_names()) for h in hierarchies},
        {"m_sum": "sum", "m_min": "min", "m_avg": "avg", "m_frac": "sum"},
    )
    return columns, engine, hierarchies


def _random_queries(rng, schema, hierarchies, count: int = 8):
    queries = []
    for number in range(count):
        levels = [
            h.level_names()[int(rng.integers(0, len(h.levels)))]
            for h in hierarchies
            if rng.random() < 0.8
        ]
        if not levels:
            levels = [hierarchies[0].level_names()[0]]
        predicates = []
        for hierarchy in hierarchies:
            if rng.random() < 0.4:
                level = hierarchy.level_names()[
                    int(rng.integers(0, len(hierarchy.levels)))
                ]
                members = sorted(hierarchy.members_of(level))
                k = int(rng.integers(1, min(3, len(members)) + 1))
                picks = rng.choice(len(members), size=k, replace=False)
                predicates.append(
                    Predicate.isin(level, [members[i] for i in picks])
                )
        keep = [m for m in ORACLE_MEASURES if rng.random() < 0.7]
        if rng.random() < 0.25:
            keep.append("m_frac")  # exercises the serial-fallback gate
        measures = tuple(keep) or ("m_sum",)
        queries.append(
            CubeQuery("RAND", GroupBySet(schema, levels), predicates, measures)
        )
    return queries


def _python_oracle(columns, query):
    """Row-at-a-time evaluation over the flat table: {coords: {measure: value}}.

    Pure Python accumulation — no NumPy reductions — so agreement with
    the engine is meaningful.  Only gate-passing (integral) measures are
    evaluated: their sums are exact in any association order, which is
    precisely the bit-identity contract under test.
    """
    levels = list(query.group_by.levels)
    measures = [m for m in query.measures if m in ORACLE_MEASURES]
    n_rows = len(columns[levels[0]])
    groups = {}
    for row in range(n_rows):
        if any(
            not predicate.matches(columns[predicate.level][row])
            for predicate in query.predicates
        ):
            continue
        key = tuple(columns[level][row] for level in levels)
        bucket = groups.setdefault(key, {m: [] for m in measures})
        for measure in measures:
            bucket[measure].append(float(columns[measure][row]))
    out = {}
    for key, bucket in groups.items():
        cell = {}
        for measure, values in bucket.items():
            op = ORACLE_MEASURES[measure]
            if op == "sum":
                total = 0.0
                for value in values:
                    total += value
                cell[measure] = total
            elif op == "min":
                cell[measure] = min(values)
            else:  # avg: exact integral sum, then one float64 division
                total = 0.0
                for value in values:
                    total += value
                cell[measure] = total / float(len(values))
        out[key] = cell
    return out


def _assert_matches_oracle(cube, oracle, levels):
    engine_keys = set()
    for row in range(len(cube)):
        key = tuple(cube.coords[level][row] for level in levels)
        engine_keys.add(key)
        expected = oracle[key]
        for measure, value in expected.items():
            got = float(cube.measures[measure][row])
            assert got == value, (key, measure, got, value)
    assert engine_keys == set(oracle)


def _assert_same_cube(left, right):
    assert list(left.coords) == list(right.coords)
    assert list(left.measures) == list(right.measures)
    for name in left.coords:
        assert left.coords[name].tolist() == right.coords[name].tolist(), name
    for name in left.measures:
        a, b = left.measures[name], right.measures[name]
        if a.dtype == np.float64 and b.dtype == np.float64:
            assert a.tobytes() == b.tobytes(), name  # bit-identical
        else:
            assert a.tolist() == b.tolist(), name


# ----------------------------------------------------------------------
# Part 1: random cubes, engine-level queries, four strategies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_random_cubes_four_ways(seed):
    columns, serial_engine, hierarchies = _random_star(seed)
    serial_engine.result_cache.enabled = False
    schema = serial_engine.cube("RAND").schema

    parallel_engines = {}
    for degree in PARALLEL_DEGREES:
        _, engine, _ = _random_star(seed)
        engine.result_cache.enabled = False
        engine.set_parallelism(degree, morsel_rows=128, min_rows=128)
        parallel_engines[degree] = engine

    _, warm_engine, _ = _random_star(seed)
    assert warm_engine.result_cache.enabled

    rng = np.random.default_rng(9000 + seed)
    queries = _random_queries(rng, schema, hierarchies)

    for query in queries:
        levels = list(query.group_by.levels)
        reference = serial_engine.get(query)

        # 1. python kernels (the row-at-a-time oracle)
        _assert_matches_oracle(reference, _python_oracle(columns, query), levels)
        # 3. parallel at every degree
        for degree, engine in parallel_engines.items():
            _assert_same_cube(engine.get(query), reference)
        # 4. warm cache: first call populates, second must serve identical
        warm_engine.get(query)
        _assert_same_cube(warm_engine.get(query), reference)

    # The parallel arms must have actually gone morsel-parallel (the
    # query mix always contains gate-passing measures).  Under a global
    # memory budget (the CI spill-smoke hook) the bounded-memory tier
    # supersedes the parallel path by design — then the spill counter is
    # the one that must show activity.
    for degree, engine in parallel_engines.items():
        if engine.memory_budget is None:
            assert engine.metrics.get("engine.parallel.queries") >= 1, degree
        else:
            assert engine.metrics.get("engine.spill.queries") >= 1, degree
    assert warm_engine.result_cache.stats()["hits"] >= len(queries)


# ----------------------------------------------------------------------
# Part 2: the four benchmark types (Constant/External/Sibling/Past)
# ----------------------------------------------------------------------
SSB_ROWS = 3000

# Reference intentions assess ``revenue`` (fractional: exercises the
# serial-fallback gate under parallel arms); the quantity variants swap
# in the integral measure so the morsel-parallel scan genuinely runs.
QUANTITY_VARIANTS = {
    "Constant": """
        with SSB by date, customer
        assess quantity against 50
        using ratio(quantity, 50)
        labels {[0, 0.5): low, [0.5, 1.5]: expected, (1.5, inf): high}
    """,
    "External": """
        with SSB by month, part
        assess quantity against BUDGET.expected_revenue
        using normalizedDifference(quantity, benchmark.expected_revenue)
        labels {[-inf, -0.1): under, [-0.1, 0.1]: onTrack, (0.1, inf): over}
    """,
    "Sibling": """
        with SSB for s_region = 'ASIA' by part, s_region
        assess quantity against s_region = 'AMERICA'
        using percOfTotal(difference(quantity, benchmark.quantity))
        labels {[-inf, -0.0001): bad, [-0.0001, 0.0001]: ok, (0.0001, inf): good}
    """,
    "Past": """
        with SSB for month = '1998-06' by month, customer
        assess quantity against past 4
        using ratio(quantity, benchmark.quantity)
        labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
    """,
}


def _ssb_session(parallelism=None):
    session = AssessSession(prepare_engine(SSB_ROWS))
    if parallelism:
        session.set_parallelism(parallelism, morsel_rows=256, min_rows=256)
    return session


@pytest.fixture(scope="module")
def ssb_arms():
    serial = _ssb_session()
    serial.engine.result_cache.enabled = False
    parallel = {}
    for degree in PARALLEL_DEGREES:
        arm = _ssb_session(parallelism=degree)
        arm.engine.result_cache.enabled = False
        parallel[degree] = arm
    warm = _ssb_session()
    return serial, parallel, warm


@pytest.mark.parametrize("intention", INTENTIONS)
@pytest.mark.parametrize("variant", ("reference", "quantity"))
def test_benchmark_types_four_ways(ssb_arms, intention, variant):
    serial, parallel, warm = ssb_arms
    text = (
        statement_text(intention)
        if variant == "reference"
        else QUANTITY_VARIANTS[intention]
    )
    reference = serial.assess(text)
    for degree, arm in parallel.items():
        assert results_identical(arm.assess(text), reference), (intention, degree)
    first = warm.assess(text)
    again = warm.assess(text)  # served by the result cache
    assert results_identical(first, reference), intention
    assert results_identical(again, reference), intention


def test_parallel_arms_actually_parallelized(ssb_arms):
    """After the quantity variants ran, every parallel arm must show
    morsel-parallel executions — fallback-only arms would make the suite
    vacuous.  Under a global memory budget (the CI spill-smoke hook) the
    bounded-memory tier supersedes the parallel path by design — then the
    spill counter is the one that must show activity."""
    _, parallel, warm = ssb_arms
    for degree, arm in parallel.items():
        if arm.engine.memory_budget is None:
            assert arm.engine.metrics.get("engine.parallel.queries") >= 1, degree
        else:
            assert arm.engine.metrics.get("engine.spill.queries") >= 1, degree
    assert warm.engine.result_cache.stats()["hits"] >= 1
