"""Property-based tests (hypothesis) on core invariants.

Covered invariants:

* range labelers partition: non-overlapping rules assign at most one label,
  complete partitions assign exactly one;
* distribution labelers label every finite value, never NaNs;
* min-max normalisation lands in [0, 1]; the symmetric variant in [-1, 1];
* percOfTotal sums to (sum a / sum b);
* OLS prediction is exact on affine series and bounded for monotone ones;
* the engine's group-by equals the brute-force roll-up oracle on random
  cubes;
* joins: natural self-join keeps every cell; outer join preserves the left
  cardinality; pivot output is a subset of the reference slice;
* transform commutativity (property P1) for arbitrary added columns.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import p1_commutes
from repro.core import (
    Cube,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Interval,
    LabelRule,
    Level,
    Measure,
    RangeLabeling,
    validate_ranges,
)
from repro.datagen import brute_force_rollup, random_detailed_cube, random_schema
from repro.functions import (
    linear_regression,
    min_max_norm,
    min_max_norm_sym,
    perc_of_total,
    quantile_labels,
    top_k_labels,
    zscore,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
float_columns = st.lists(finite_floats, min_size=1, max_size=64).map(np.array)


def partition_from_bounds(bounds):
    """Build a complete partition of R from sorted distinct bounds."""
    edges = [-math.inf] + sorted(set(bounds)) + [math.inf]
    rules = []
    for i in range(len(edges) - 1):
        rules.append(
            LabelRule(
                Interval(edges[i], edges[i + 1], low_closed=(i > 0), high_closed=False),
                f"label-{i}",
            )
        )
    return RangeLabeling(rules)


class TestRangeLabelingProperties:
    @given(
        bounds=st.lists(finite_floats, min_size=1, max_size=6, unique=True),
        values=float_columns,
    )
    @settings(max_examples=100)
    def test_complete_partition_labels_every_value_once(self, bounds, values):
        labeling = partition_from_bounds(bounds)
        validate_ranges(labeling.rules, require_complete=True)
        labels = labeling.apply(values)
        assert all(label is not None for label in labels)
        # cross-check: exactly one rule matches each value
        for value in values:
            matches = [r for r in labeling.rules if r.interval.contains(value)]
            assert len(matches) == 1

    @given(values=float_columns)
    @settings(max_examples=50)
    def test_nan_never_labeled(self, values):
        labeling = partition_from_bounds([0.0])
        with_nan = np.concatenate([values, [np.nan]])
        labels = labeling.apply(with_nan)
        assert labels[-1] is None


class TestDistributionLabelerProperties:
    @given(values=float_columns, k=st.integers(2, 6))
    @settings(max_examples=100)
    def test_quantile_labels_cover_all_values(self, values, k):
        names = [f"g{i}" for i in range(k)]
        labels = quantile_labels(values, k, names)
        assert all(label in names for label in labels)

    @given(values=float_columns, k=st.integers(2, 5))
    @settings(max_examples=100)
    def test_quantile_groups_are_ordered(self, values, k):
        """A smaller value never lands in a strictly higher group."""
        names = list(range(k))
        labels = quantile_labels(values, k, names)
        order = np.argsort(values, kind="stable")
        group_sequence = [labels[i] for i in order]
        assert group_sequence == sorted(group_sequence)

    @given(values=float_columns, k=st.integers(2, 5))
    @settings(max_examples=50)
    def test_topk_vocabulary(self, values, k):
        labels = top_k_labels(values, k)
        allowed = {f"top-{i + 1}" for i in range(k)}
        assert set(labels.tolist()) <= allowed


class TestTransformProperties:
    @given(values=float_columns)
    @settings(max_examples=100)
    def test_min_max_norm_bounds(self, values):
        out = min_max_norm(values)
        assert np.all(out >= -1e-12) and np.all(out <= 1 + 1e-12)

    @given(values=float_columns)
    @settings(max_examples=100)
    def test_min_max_norm_sym_bounds(self, values):
        out = min_max_norm_sym(values)
        assert np.all(out >= -1 - 1e-9) and np.all(out <= 1 + 1e-9)

    @given(values=st.lists(finite_floats, min_size=2, max_size=64).map(np.array))
    @settings(max_examples=100)
    def test_zscore_centering(self, values):
        out = zscore(values)
        std = np.std(values)
        if std == 0:
            assert np.allclose(out, 0.0)
            return
        # |mean| is bounded by accumulated rounding error, which is amplified
        # by max|a| / std for near-constant, large-magnitude columns.
        tolerance = 1e-12 * len(values) * max(1.0, np.max(np.abs(values)) / std)
        assert abs(np.mean(out)) <= max(tolerance, 1e-9)

    @given(
        a=st.lists(finite_floats, min_size=1, max_size=32),
        b=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=32),
    )
    @settings(max_examples=100)
    def test_perc_of_total_sums_correctly(self, a, b):
        n = min(len(a), len(b))
        a_col = np.array(a[:n])
        b_col = np.array(b[:n])
        out = perc_of_total(a_col, b_col)
        assert np.sum(out) == pytest.approx(np.sum(a_col) / np.sum(b_col), rel=1e-6)


class TestPredictionProperties:
    @given(
        intercept=st.floats(min_value=-1e3, max_value=1e3),
        slope=st.floats(min_value=-100, max_value=100),
        k=st.integers(2, 8),
    )
    @settings(max_examples=100)
    def test_ols_exact_on_affine_series(self, intercept, slope, k):
        t = np.arange(k, dtype=float)
        history = (intercept + slope * t)[None, :]
        predicted = linear_regression(history)[0]
        expected = intercept + slope * k
        assert predicted == pytest.approx(expected, rel=1e-6, abs=1e-6)

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=2, max_size=8
        )
    )
    @settings(max_examples=100)
    def test_ols_finite_on_finite_history(self, values):
        history = np.array(values)[None, :]
        assert np.isfinite(linear_regression(history)[0])


class TestEngineVsOracle:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_rollup_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        schema = random_schema(rng, n_hierarchies=2, max_depth=3, n_measures=1)
        cube = random_detailed_cube(rng, schema, density=0.6)
        # roll up to a random coarser group-by set
        coarser_levels = []
        for hierarchy in schema.hierarchies:
            depth = int(rng.integers(0, len(hierarchy.levels) + 1))
            if depth < len(hierarchy.levels):
                coarser_levels.append(hierarchy.levels[depth].name)
        target = GroupBySet(schema, coarser_levels)
        if not cube.group_by.rolls_up_to(target):
            return
        oracle = brute_force_rollup(cube, target, "m0")

        # aggregate by rolling every row up and summing — using the cube API
        totals = {}
        values = cube.measure("m0")
        for row, coordinate in enumerate(cube.coordinates()):
            rolled = cube.group_by.rup(coordinate, target)
            totals[rolled] = totals.get(rolled, 0.0) + float(values[row])
        assert set(totals) == set(oracle)
        for key, value in oracle.items():
            assert totals[key] == pytest.approx(value)


class TestJoinProperties:
    def _cube(self, seed, density=0.7):
        rng = np.random.default_rng(seed)
        schema = random_schema(rng, n_hierarchies=2, max_depth=2, n_measures=1)
        return random_detailed_cube(rng, schema, density=density)

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=30, deadline=None)
    def test_natural_self_join_keeps_all_cells(self, seed):
        cube = self._cube(seed)
        joined = cube.natural_join(cube)
        assert len(joined) == len(cube)
        assert np.allclose(joined.measure("m0"), joined.measure("benchmark.m0"))

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=30, deadline=None)
    def test_outer_join_preserves_left_cardinality(self, seed):
        left = self._cube(seed, density=0.8)
        right = left.filter_rows(left.measure("m0") > 50.0)
        joined = left.natural_join(right, outer=True)
        assert len(joined) == len(left)

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=30, deadline=None)
    def test_inner_join_cardinality_bounded(self, seed):
        left = self._cube(seed, density=0.8)
        right = left.filter_rows(left.measure("m0") > 50.0)
        joined = left.natural_join(right)
        assert len(joined) == len(right)


class TestP1Property:
    @given(
        offset=finite_floats,
        scale=st.floats(min_value=-100, max_value=100),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_independent_added_columns_commute(self, offset, scale, seed):
        rng = np.random.default_rng(seed)
        schema = random_schema(rng, n_hierarchies=1, max_depth=2, n_measures=2)
        cube = random_detailed_cube(rng, schema, density=0.8)

        def f(c):
            return c.with_measure("f_out", c.measure("m0") + offset)

        def g(c):
            return c.with_measure("g_out", c.measure("m1") * scale)

        assert p1_commutes(cube, f, g)
