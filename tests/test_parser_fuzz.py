"""Seeded parser fuzzing: diagnostics, never unstructured exceptions.

A token-mutation fuzzer over the ``examples/*.assess`` corpus (plus the
bundled experiment statements): every mutated text is fed to
``parse_statement(..., collect_diagnostics=True)``, which must either
return a statement or a :class:`DiagnosticBag` whose error entries all
carry an ``ASSESSxxx`` code and a span inside the source text — and must
**never** raise an unstructured exception.

The original fuzz campaign (seed 20260806, 6000 mutants) surfaced one
defect, pinned below: unexpected-EOF parse errors produced a diagnostic
span of ``[len(text), len(text) + 1)`` — one character *past* the end of
the source (``Span.from_text`` now clamps; see
``src/repro/core/diagnostics.py``).
"""

from __future__ import annotations

import glob
import os
import re

import numpy as np
import pytest

from repro.analysis import extract_statements
from repro.datagen import sales_engine
from repro.experiments.statements import STATEMENTS, prepare_engine
from repro.parser.parser import parse_statement

CODE_RE = re.compile(r"ASSESS\d{3}")

TOKEN_RE = re.compile(r"\s+|[A-Za-z_][A-Za-z0-9_.]*|'[^']*'|-?\d+(?:\.\d+)?|.")

# Mutation vocabulary: keywords, punctuation, literals, and hostile
# fragments (unterminated strings, control chars, non-ASCII).
POOL = (
    "with", "by", "assess", "assess*", "against", "using", "labels", "for",
    "past", "(", ")", "{", "}", "[", "]", ",", ":", ";", "=", "'", "'''",
    "inf", "-inf", "0.5", "42", "zzz", "BUDGET.", "benchmark.", "\x00", "π",
    "'unterminated", "]]", "{{", "))",
)


@pytest.fixture(scope="module")
def resolver():
    schemas = {}
    for engine in (sales_engine(n_rows=200), prepare_engine(200)):
        for name in engine.cube_names():
            schemas[name] = engine.cube(name).schema
    return lambda name: schemas[name]


@pytest.fixture(scope="module")
def corpus():
    statements = []
    pattern = os.path.join(os.path.dirname(__file__), "..", "examples", "*.assess")
    for path in sorted(glob.glob(pattern)):
        with open(path) as handle:
            statements.extend(extract_statements(handle.read()))
    statements.extend(text.strip() for text in STATEMENTS.values())
    assert len(statements) >= 10  # the corpus must not silently vanish
    return statements


def _mutate(rng, text: str) -> str:
    tokens = TOKEN_RE.findall(text)
    n = len(tokens)
    kind = int(rng.integers(0, 6))
    if kind == 0 and n:
        del tokens[int(rng.integers(0, n))]
    elif kind == 1 and n:
        tokens.insert(int(rng.integers(0, n)), POOL[int(rng.integers(0, len(POOL)))])
    elif kind == 2 and n:
        tokens[int(rng.integers(0, n))] = POOL[int(rng.integers(0, len(POOL)))]
    elif kind == 3 and n > 1:
        i = int(rng.integers(0, n - 1))
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    elif kind == 4:
        return text[: int(rng.integers(0, len(text) + 1))]
    else:
        i = int(rng.integers(0, n)) if n else 0
        tokens = tokens[:i] + [POOL[int(rng.integers(0, len(POOL)))]] + tokens[i:]
    return "".join(tokens)


def _assert_structured(text: str, resolver) -> None:
    """The fuzzing invariant for one input text."""
    try:
        statement, bag = parse_statement(text, resolver, collect_diagnostics=True)
    except Exception as error:  # noqa: BLE001 - the invariant under test
        pytest.fail(
            f"parse_statement raised {type(error).__name__}: {error!r} "
            f"on input {text!r}"
        )
    if statement is None:
        errors = bag.errors()
        assert errors, f"no statement and no error diagnostic for {text!r}"
        for diagnostic in errors:
            assert CODE_RE.fullmatch(diagnostic.code), (diagnostic.code, text)
            span = diagnostic.span
            assert span is not None, (diagnostic.code, text)
            assert 0 <= span.start <= span.end <= len(text), (
                diagnostic.code, span.start, span.end, len(text), text,
            )
            assert span.line >= 1 and span.column >= 1


@pytest.mark.parametrize("seed", (20260806, 1, 2, 3))
def test_token_mutation_fuzz(resolver, corpus, seed):
    rng = np.random.default_rng(seed)
    for _ in range(1000):
        text = corpus[int(rng.integers(0, len(corpus)))]
        for _ in range(int(rng.integers(1, 4))):
            text = _mutate(rng, text)
        _assert_structured(text, resolver)


# ----------------------------------------------------------------------
# Pinned crashers (fuzzer-found): spans must stay inside the text
# ----------------------------------------------------------------------
EOF_SPAN_CRASHERS = (
    # Truncation mid-clause: the parser hits EOF wanting more tokens and
    # used to report a span one character past the end of the source.
    "with SSB for year = '1997' ",
    "with SSB by month, part\nassess revenue against BUDGET.expected",
    "with SSB for year = '1997' by month\nassess quant",
    "with SSB by date, customer\n        assess revenue against 50000\n"
    "        using ratio(revenue, 50000)\n        labels {[",
    "with SSB for year = '1997', mfgr = 'MFGR#1' by ca",
)


@pytest.mark.parametrize("text", EOF_SPAN_CRASHERS)
def test_pinned_eof_span_regressions(resolver, text):
    _assert_structured(text, resolver)
    _, bag = parse_statement(text, resolver, collect_diagnostics=True)
    assert any(d.span.end <= len(text) for d in bag.errors())


@pytest.mark.parametrize(
    "text",
    (
        "",
        " ",
        "with",
        "with NOPE by x assess y labels quartiles",
        "labels labels labels",
        "with SSB by month assess quantity against 'unterminated",
        "with SSB by month assess quantity \x00 labels quartiles",
    ),
)
def test_degenerate_inputs_stay_structured(resolver, text):
    _assert_structured(text, resolver)
