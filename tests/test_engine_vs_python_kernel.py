"""Property-based oracle tests: the engine's aggregate pipeline vs a
row-at-a-time Python evaluation of the same star query, on random stars."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Predicate
from repro.engine import (
    Aggregate,
    AggregateQuery,
    Catalog,
    ColumnPredicate,
    DimensionJoin,
    EngineExecutor,
    GroupByColumn,
    Table,
)

CITIES = ["Roma", "Paris", "Madrid", "Berlin"]
COUNTRIES = {"Roma": "IT", "Paris": "FR", "Madrid": "ES", "Berlin": "DE"}


def build_star(seed: int, n_rows: int):
    rng = np.random.default_rng(seed)
    n_dim = len(CITIES)
    catalog = Catalog()
    catalog.register(
        Table(
            "dim",
            {
                "key": np.arange(n_dim, dtype=np.int64),
                "city": np.array(CITIES, dtype=object),
                "country": np.array([COUNTRIES[c] for c in CITIES], dtype=object),
            },
        )
    )
    fk = rng.integers(0, n_dim, n_rows)
    value = np.round(rng.uniform(-10, 10, n_rows), 3)
    catalog.register(
        Table("fact", {"fk": fk.astype(np.int64), "value": value})
    )
    return catalog


def python_oracle(catalog, group_level, predicate, op):
    """Row-at-a-time evaluation of the same star aggregate."""
    fact = catalog.table("fact")
    dim = catalog.table("dim")
    groups = {}
    for row in range(len(fact)):
        key = int(fact.column("fk")[row])
        city = dim.column("city")[key]
        country = dim.column("country")[key]
        if predicate is not None and not predicate.matches(country):
            continue
        member = city if group_level == "city" else country
        groups.setdefault(member, []).append(float(fact.column("value")[row]))
    out = {}
    for member, values in groups.items():
        array = np.asarray(values)
        if op == "sum":
            out[member] = array.sum()
        elif op == "avg":
            out[member] = array.mean()
        elif op == "min":
            out[member] = array.min()
        elif op == "max":
            out[member] = array.max()
        else:
            out[member] = float(len(array))
    return out


@given(
    seed=st.integers(0, 10_000),
    n_rows=st.integers(1, 300),
    group_level=st.sampled_from(["city", "country"]),
    op=st.sampled_from(["sum", "avg", "min", "max", "count"]),
    filtered=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_engine_aggregate_matches_python_oracle(seed, n_rows, group_level, op, filtered):
    catalog = build_star(seed, n_rows)
    predicate = Predicate.isin("country", ["IT", "FR"]) if filtered else None

    query = AggregateQuery(
        fact="fact",
        joins=(DimensionJoin("dim", "fk", "key"),),
        where=(
            (ColumnPredicate("dim", "country", predicate),) if predicate else ()
        ),
        group_by=(GroupByColumn("dim", group_level, group_level),),
        aggregates=(Aggregate("value", op, "value"),),
    )
    result = EngineExecutor(catalog).execute_aggregate(query)
    measured = {
        result.column(group_level)[i]: float(result.column("value")[i])
        for i in range(len(result))
    }
    expected = python_oracle(catalog, group_level, predicate, op)
    assert set(measured) == set(expected)
    for member, value in expected.items():
        assert measured[member] == pytest.approx(value, rel=1e-9, abs=1e-9)
