"""Unit tests of the whole-workload static analysis (repro.analysis.flow).

The soundness of the "safe" verdicts (warm/fusable-exact/parallel-safe)
against actual execution lives in ``test_workload_soundness.py``; here we
test the scanner, the binding environment, the diagnostics, the report
surface, and the CLI/JSON plumbing.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CODES,
    WORKLOAD_CODES,
    WORKLOAD_SCHEMA_VERSION,
    AnalysisContext,
    analyze_workload,
    scan_workload,
)
from repro.analysis.flow import Exactness, classify_chunk
from repro.analysis.flow.workload import directive_diagnostics
from repro.api import AssessSession
from repro.experiments.statements import prepare_engine

REPO_ROOT = Path(__file__).resolve().parent.parent
BATCH_EXAMPLE = REPO_ROOT / "examples" / "ssb_batch_workload.assess"

LABELS = "labels {[0, 0.9): low, [0.9, 1.1]: ok, (1.1, inf): high}"


def stmt(body: str) -> str:
    return f"{body} assess quantity against 100 using ratio(quantity, 100) {LABELS}"


@pytest.fixture(scope="module")
def engine():
    return prepare_engine(lineorder_rows=2000)


@pytest.fixture(scope="module")
def context(engine):
    return AnalysisContext(
        schemas=lambda name: engine.cube(name).schema, engine=engine
    )


# ---------------------------------------------------------------------------
# Catalog / codes
# ---------------------------------------------------------------------------
def test_workload_codes_in_catalog():
    assert set(WORKLOAD_CODES) == {
        "ASSESS500", "ASSESS501", "ASSESS502", "ASSESS503",
        "ASSESS504", "ASSESS505", "ASSESS506", "ASSESS507",
        "ASSESS508",
    }
    for code in WORKLOAD_CODES:
        assert code in ALL_CODES


# ---------------------------------------------------------------------------
# Scanner and directives
# ---------------------------------------------------------------------------
def test_scan_workload_classifies_chunks():
    text = """
    define labeling quartiles {[0, 0.25): q1, [0.25, inf): rest};
    materialize SSB by month, category;
    with SSB by month assess quantity against 10 using ratio(quantity, 10)
    labels {[0, 1): a, [1, inf): b};
    """
    items = scan_workload(text)
    assert [item.kind for item in items] == ["labeling", "view", "statement"]
    assert items[0].name == "quartiles"
    assert items[1].cube == "SSB"
    assert items[1].levels == ("month", "category")


def test_malformed_directive_gets_assess500():
    item = classify_chunk("materialize by nothing", 0)
    assert item.kind == "invalid"
    bag = directive_diagnostics(item)
    assert [d.code for d in bag.sorted()] == ["ASSESS500"]
    assert bag.has_errors


def test_dead_labeling_definition_warns_501(context):
    text = (
        "define labeling quartiles {[0, 0.25): q1, [0.25, inf): rest};\n"
        + stmt("with SSB by month")
    )
    report = analyze_workload(text, context=context)
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS501" in codes


def test_used_labeling_is_not_dead_and_known(context):
    text = (
        "define labeling quartiles {[0, 0.25): q1, [0.25, inf): rest};\n"
        "with SSB by month assess quantity against 100 "
        "using ratio(quantity, 100) labels quartiles"
    )
    report = analyze_workload(text, context=context)
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS501" not in codes
    # The directive also registers the name, so ASSESS133 stays silent.
    assert "ASSESS133" not in codes


def test_shadowed_definition_warns_502(context):
    text = (
        "define labeling quartiles {[0, 0.5): lo, [0.5, inf): hi};\n"
        "define labeling quartiles {[0, 0.25): q1, [0.25, inf): rest};\n"
        "with SSB by month assess quantity against 100 "
        "using ratio(quantity, 100) labels quartiles"
    )
    report = analyze_workload(text, context=context)
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS502" in codes


def test_duplicate_statement_info_503(context):
    text = stmt("with SSB for year = '1997' by month") + ";\n" + stmt(
        "with SSB for year = '1997' by month"
    )
    report = analyze_workload(text, context=context)
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS503" in codes


# ---------------------------------------------------------------------------
# Verdicts on the example workload
# ---------------------------------------------------------------------------
def test_batch_example_report(context):
    report = analyze_workload(
        BATCH_EXAMPLE.read_text(), context=context, origin="batch"
    )
    assert not report.has_errors
    assert len(report.statements) == 10

    # Roll-up derivations: 'by category' is answerable from
    # 'by month, category' (statement 2).
    targets = {edge.target for edge in report.derivations}
    assert 2 in targets  # by category <- by month, category
    for edge in report.derivations:
        assert edge.source < edge.target  # flow order

    # All ten statements share the year = '1997' scan.
    assert len(report.fusions) == 1
    fusion = report.fusions[0]
    assert fusion.statements == tuple(range(10))
    assert fusion.exact  # quantity is integral and small
    assert fusion.verdict == "fusable-exact"
    assert report.fusable_scan_keys

    # quantity sums exactly; verdict is definite, not unknown.
    assert report.exactness_of("SSB", "quantity") is Exactness.EXACT

    # Every statement gets a cardinality bound with a finite ceiling.
    assert len(report.bounds) == 10
    for bound in report.bounds:
        assert bound.cells.lo == 0.0
        assert bound.cells.hi < float("inf")
        assert bound.cost.hi < float("inf")
        assert not bound.admission_warning

    # Info diagnostics surfaced on the statements.
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS504" in codes
    assert "ASSESS505" in codes

    rendered = report.render(verbose=True)
    assert "sharing plan" in rendered
    assert "derivation edges" in rendered
    assert report.summary() in rendered


def test_inexact_measure_warns_506(context):
    text = (
        "with SSB for year = '1997' by month assess revenue against 100 "
        "using ratio(revenue, 100) " + LABELS
    )
    report = analyze_workload(text, context=context)
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS506" in codes
    assert report.exactness_of("SSB", "revenue") is Exactness.INEXACT
    info = report.statements[0]
    assert info.parallel_safe is False


def test_admission_warning_507(context):
    report = analyze_workload(
        stmt("with SSB by month, part"), context=context, admission_cells=10
    )
    codes = [d.code for _, d in report.diagnostics()]
    assert "ASSESS507" in codes
    assert report.bounds[0].admission_warning


def test_materialize_directive_withholds_claims(context):
    text = (
        "materialize SSB by month, category;\n"
        + stmt("with SSB for year = '1997' by month, category")
        + ";\n"
        + stmt("with SSB for year = '1997' by category")
    )
    report = analyze_workload(text, context=context)
    # Routing may change once the view exists: no warm claims.
    assert report.derivations == []
    assert report.warm_fingerprints == set()


def test_schema_less_context_still_reports():
    report = analyze_workload(
        stmt("with SSB by month") + ";\n" + "materialize by nothing",
        context=AnalysisContext(schemas=None),
    )
    assert len(report.statements) == 2
    assert report.has_errors  # the malformed directive
    assert report.derivations == []


# ---------------------------------------------------------------------------
# Report JSON schema
# ---------------------------------------------------------------------------
def test_report_json_schema(context):
    report = analyze_workload(BATCH_EXAMPLE.read_text(), context=context)
    document = report.to_json()
    json.dumps(document)  # must be serializable
    assert document["workload_schema_version"] == WORKLOAD_SCHEMA_VERSION
    assert set(document) == {
        "workload_schema_version", "origin", "statements", "derivations",
        "fusions", "exactness", "bounds", "summary",
    }
    statement = document["statements"][0]
    assert {"index", "kind", "statement", "cube", "group_by", "measures",
            "plan", "composite", "parallel_safe", "diagnostics"} <= set(statement)
    for info in document["statements"]:
        for diagnostic in info["diagnostics"]:
            assert {"code", "severity", "message", "span", "hint",
                    "source"} <= set(diagnostic)
            assert diagnostic["code"] in ALL_CODES
            assert diagnostic["severity"] in ("error", "warning", "info")


def test_session_analyze_workload(engine):
    session = AssessSession(engine)
    report = session.analyze_workload(BATCH_EXAMPLE.read_text())
    assert report.fusions and report.fusions[0].exact


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_workload_json():
    proc = run_cli(
        "lint", "--workload", "--format=json", "--cube", "ssb",
        "--rows", "2000", str(BATCH_EXAMPLE),
    )
    assert proc.returncode == 0, proc.stderr
    document = json.loads(proc.stdout)
    assert document["schema_version"] == WORKLOAD_SCHEMA_VERSION
    assert document["mode"] == "workload"
    assert len(document["workloads"]) == 1
    workload = document["workloads"][0]
    assert workload["origin"].endswith("ssb_batch_workload.assess")
    assert workload["fusions"]


def test_cli_statement_json():
    proc = run_cli(
        "lint", "--format=json", "--cube", "none", str(BATCH_EXAMPLE),
    )
    assert proc.returncode == 0, proc.stderr
    document = json.loads(proc.stdout)
    assert document["mode"] == "statement"
    assert document["schema_version"] == WORKLOAD_SCHEMA_VERSION
    assert len(document["results"]) == 10


def test_cli_workload_text():
    proc = run_cli(
        "lint", "--workload", "--cube", "ssb", "--rows", "2000",
        str(BATCH_EXAMPLE),
    )
    assert proc.returncode == 0, proc.stderr
    assert "sharing plan" in proc.stdout
    assert "fusable-exact" in proc.stdout
