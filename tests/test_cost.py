"""Unit tests for the cost model and cost-based plan selection."""

import pytest

from repro.algebra import build_plan
from repro.algebra.cost import (
    CostEstimate,
    Statistics,
    choose_plan,
    estimate_plan_cost,
)
from repro.core import Predicate


SIBLING = """
with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""
PAST = """
with SALES for month = '1997-07', store = 'SmartMart' by month, store
assess storeSales against past 4
using ratio(storeSales, benchmark.storeSales)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""
CONSTANT = """
with SALES by month assess storeSales against 1000
using ratio(storeSales, 1000) labels {[0, 1): under, [1, inf): over}
"""


class TestStatistics:
    def test_fact_rows(self, sales):
        stats = Statistics(sales)
        assert stats.fact_rows("SALES") == 20_000

    def test_level_cardinality(self, sales):
        stats = Statistics(sales)
        assert stats.level_cardinality("SALES", "country") == 3
        assert stats.level_cardinality("SALES", "month") == 24
        assert stats.level_cardinality("SALES", "product") == 12

    def test_selectivity_eq_and_in(self, sales):
        stats = Statistics(sales)
        eq = stats.selectivity("SALES", Predicate.eq("country", "Italy"))
        assert eq == pytest.approx(1 / 3)
        isin = stats.selectivity(
            "SALES", Predicate.isin("country", ["Italy", "France"])
        )
        assert isin == pytest.approx(2 / 3)

    def test_scanned_rows_applies_selectivities(self, sales_session):
        stats = Statistics(sales_session.engine)
        statement = sales_session.parse(SIBLING)
        from repro.algebra.planner import _target_query

        scanned = stats.scanned_rows(_target_query(statement))
        # type (1/7 of products... by member count 1/7? type has 7 distinct)
        assert 0 < scanned < 20_000

    def test_result_cells_bounded_by_slots(self, sales_session):
        stats = Statistics(sales_session.engine)
        statement = sales_session.parse(CONSTANT)
        from repro.algebra.planner import _target_query

        cells = stats.result_cells(_target_query(statement))
        assert 0 < cells <= 24  # at most one cell per month


class TestEstimates:
    def test_breakdown_sums_to_total(self, sales_session):
        statement = sales_session.parse(SIBLING)
        plan = build_plan(statement, sales_session.engine, "NP")
        estimate = estimate_plan_cost(plan, sales_session.engine)
        assert estimate.total == pytest.approx(sum(estimate.breakdown.values()))
        assert estimate.total > 0

    def test_optimized_plans_estimated_cheaper(self, sales_session):
        statement = sales_session.parse(SIBLING)
        engine = sales_session.engine
        totals = {
            name: estimate_plan_cost(build_plan(statement, engine, name), engine).total
            for name in ("NP", "JOP", "POP")
        }
        assert totals["JOP"] < totals["NP"]
        assert totals["POP"] < totals["NP"]

    def test_estimates_scale_with_data(self, sales_session):
        from repro.datagen import sales_engine

        small = sales_engine(n_rows=2_000, seed=1)
        big = sales_engine(n_rows=40_000, seed=1)
        from repro.api import AssessSession

        cost = {}
        for engine in (small, big):
            session = AssessSession(engine)
            statement = session.parse(SIBLING)
            plan = build_plan(statement, engine, "NP")
            cost[engine] = estimate_plan_cost(plan, engine).total
        assert cost[big] > cost[small]


class TestChoosePlan:
    def test_constant_chooses_np(self, sales_session):
        statement = sales_session.parse(CONSTANT)
        plan, totals = choose_plan(statement, sales_session.engine)
        assert plan.name == "NP"
        assert set(totals) == {"NP"}

    @pytest.mark.parametrize("text", [SIBLING, PAST])
    def test_optimized_plan_chosen(self, sales_session, text):
        statement = sales_session.parse(text)
        plan, totals = choose_plan(statement, sales_session.engine)
        assert plan.name in ("JOP", "POP")
        assert totals[plan.name] == min(totals.values())

    def test_auto_plan_through_session(self, sales_session):
        result = sales_session.assess(SIBLING, plan="auto")
        assert result.plan_name in ("JOP", "POP")
        assert len(result) > 0

    def test_auto_agrees_with_best_results(self, sales_session):
        auto = sales_session.assess(PAST, plan="auto")
        best = sales_session.assess(PAST, plan="best")
        assert auto.label_counts() == best.label_counts()
