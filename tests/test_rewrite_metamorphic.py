"""Metamorphic tests for the P1–P3 rewrite properties (Section 5.1).

The metamorphic relation: for any assess statement, every feasible plan
— NP (naive), JOP (P2: join pushed to SQL), POP (P3: join replaced by
pivot) — must produce identical cells.  Statements are *randomized* over
the SSB cube: random group-by sets, random slices, random benchmark type
(constant / external / sibling / past), plain ``assess`` and left-outer
``assess*``, with the sibling/past variants exercising **partial joins**
``⋈_{l1..lm}`` (the benchmark join ranges over the group-by levels minus
the sliced level, so widening the group-by widens the join level set).

The result cache is disabled throughout: with it on, different plans
could be served the same memoized pushed query, making cross-plan
identity partially vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AssessSession
from repro.experiments.statements import INTENTIONS, prepare_engine, statement_text

SSB_ROWS = 2000


def _bits(value):
    """A float's exact bit pattern (NaN-stable); non-floats pass through."""
    import struct

    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def identical_cells(left, right) -> bool:
    """Bit-exact equality of two results' assessment cells.

    Compares what the statement *means* — coordinates, target value,
    benchmark value, comparison, label — to the last bit (no rounding,
    NaN bit patterns included).  Auxiliary columns (e.g. the lagged
    ``benchmark.<m>_k`` helpers the JOP/POP past pipelines keep) are
    plan-shape artifacts and excluded.
    """

    def cells(result):
        return {
            cell.coordinate: (
                _bits(cell.value),
                _bits(cell.benchmark),
                _bits(cell.comparison),
                cell.label,
            )
            for cell in result
        }

    return len(left) == len(right) and cells(left) == cells(right)

LABELS = "labels {[-inf, 0.9): low, [0.9, 1.1]: mid, (1.1, inf): high}"


@pytest.fixture(scope="module")
def session():
    session = AssessSession(prepare_engine(SSB_ROWS))
    session.engine.result_cache.enabled = False
    return session


def _members(session, level):
    return session.engine.ordered_members("SSB", level)


def _random_statement(rng, session):
    """One random assess statement; returns (text, expected benchmark kind)."""
    kind = ("constant", "external", "sibling", "past")[int(rng.integers(0, 4))]
    measure = "quantity" if rng.random() < 0.6 else "revenue"
    star = "*" if kind != "constant" and rng.random() < 0.4 else ""

    if kind == "constant":
        group_by = ["year"] if rng.random() < 0.5 else ["month", "category"]
        constant = int(rng.integers(10, 5000))
        slice_ = ""
        if rng.random() < 0.5:
            year = _members(session, "year")[int(rng.integers(0, 5))]
            slice_ = f"for year = '{year}' "
        return (
            f"with SSB {slice_}by {', '.join(group_by)} "
            f"assess {measure} against {constant} "
            f"using ratio({measure}, {constant}) {LABELS}"
        ), kind

    if kind == "external":
        # BUDGET lives at (month, part); the group-by must match it.
        return (
            f"with SSB by month, part "
            f"assess{star} {measure} against BUDGET.expected_revenue "
            f"using normalizedDifference({measure}, benchmark.expected_revenue) "
            f"{LABELS}"
        ), kind

    if kind == "sibling":
        level = "s_region" if rng.random() < 0.5 else "c_region"
        members = _members(session, level)
        ours, theirs = rng.choice(len(members), size=2, replace=False)
        # Extra levels widen the partial join ⋈_{l1..lm}.
        extra = ["category"] if rng.random() < 0.5 else ["mfgr", "year"]
        group_by = extra + [level]
        return (
            f"with SSB for {level} = '{members[ours]}' "
            f"by {', '.join(group_by)} "
            f"assess{star} {measure} against {level} = '{members[theirs]}' "
            f"using ratio({measure}, benchmark.{measure}) {LABELS}"
        ), kind

    # past: slice one month late enough to have k predecessors
    months = _members(session, "month")
    k = int(rng.integers(2, 5))
    month = months[int(rng.integers(k, len(months)))]
    extra = ["c_region"] if rng.random() < 0.5 else ["mfgr"]
    return (
        f"with SSB for month = '{month}' by {', '.join(['month'] + extra)} "
        f"assess{star} {measure} against past {k} "
        f"using ratio({measure}, benchmark.{measure}) {LABELS}"
    ), kind


def _assert_all_plans_identical(session, text):
    statement = session.parse(text)
    plans = session.plans(statement)
    assert "NP" in plans
    names = list(plans)
    reference = session.execute_plan(plans[names[0]], statement)
    for name in names[1:]:
        other = session.execute_plan(plans[name], statement)
        assert identical_cells(other, reference), (names[0], name, text)
    return names


@pytest.mark.parametrize("seed", range(12))
def test_randomized_statements_same_cells_under_all_plans(session, seed):
    rng = np.random.default_rng(seed)
    text, kind = _random_statement(rng, session)
    names = _assert_all_plans_identical(session, text)
    if kind in ("sibling", "past"):
        # P3 applies: both gets range over the same cube.
        assert "POP" in names, (kind, names)
    if kind != "constant":
        assert "JOP" in names, (kind, names)


@pytest.mark.parametrize("intention", INTENTIONS)
def test_reference_intentions_same_cells_under_all_plans(session, intention):
    _assert_all_plans_identical(session, statement_text(intention))


@pytest.mark.parametrize("intention", ("External", "Sibling", "Past"))
def test_left_outer_assess_star_same_cells_under_all_plans(session, intention):
    """The ``assess*`` left-outer variants of the joining intentions."""
    text = statement_text(intention).replace("assess revenue", "assess* revenue")
    _assert_all_plans_identical(session, text)


def test_partial_join_width_sweep(session):
    """The sibling benchmark's partial join over 1, 2, and 3 join levels."""
    for extra in (["category"], ["category", "year"], ["mfgr", "year", "c_region"]):
        group_by = extra + ["s_region"]
        text = (
            f"with SSB for s_region = 'ASIA' by {', '.join(group_by)} "
            f"assess quantity against s_region = 'AMERICA' "
            f"using ratio(quantity, benchmark.quantity) {LABELS}"
        )
        names = _assert_all_plans_identical(session, text)
        assert "POP" in names


def test_parallel_execution_preserves_the_metamorphic_relation():
    """All plans, all parallelism degrees, one answer — the rewrite
    properties and the morsel merge must compose."""
    serial = AssessSession(prepare_engine(SSB_ROWS))
    serial.engine.result_cache.enabled = False
    parallel = AssessSession(prepare_engine(SSB_ROWS))
    parallel.engine.result_cache.enabled = False
    parallel.set_parallelism(3, morsel_rows=256, min_rows=256)

    text = (
        "with SSB for s_region = 'ASIA' by category, s_region "
        "assess quantity against s_region = 'AMERICA' "
        f"using ratio(quantity, benchmark.quantity) {LABELS}"
    )
    statement = serial.parse(text)
    reference = serial.execute_plan(serial.plans(statement)["NP"], statement)
    statement_p = parallel.parse(text)
    for name, plan in parallel.plans(statement_p).items():
        result = parallel.execute_plan(plan, statement_p)
        assert identical_cells(result, reference), name
    assert parallel.engine.metrics.get("engine.parallel.queries") >= 1
