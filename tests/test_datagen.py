"""Unit tests for the data generators (SALES, SSB, BUDGET, random cubes)."""

import numpy as np
import pytest

from repro.core import CubeQuery, GroupBySet
from repro.datagen import (
    build_sales_catalog,
    build_ssb_catalog,
    dimension_cardinalities,
    random_detailed_cube,
    random_hierarchy,
    random_schema,
    sales_engine,
    ssb_engine,
)


class TestSalesGenerator:
    def test_fact_cardinality(self):
        catalog, schema, star = build_sales_catalog(n_rows=1000, seed=1)
        assert len(catalog.table("sales_fact")) == 1000

    def test_paper_members_exist(self, sales):
        catalog = sales.catalog
        products = set(catalog.table("sales_product").column("p_name"))
        assert {"Apple", "Pear", "Lemon", "milk"} <= products
        stores = set(catalog.table("sales_store").column("s_name"))
        assert "SmartMart" in stores
        countries = set(catalog.table("sales_store").column("s_country"))
        assert {"Italy", "France", "Spain"} == countries

    def test_months_cover_1996_1997(self, sales):
        months = sales.ordered_members("SALES", "month")
        assert "1996-01" in months and "1997-12" in months
        assert len(months) == 24

    def test_deterministic_by_seed(self):
        a, _, _ = build_sales_catalog(n_rows=500, seed=9)
        b, _, _ = build_sales_catalog(n_rows=500, seed=9)
        assert np.array_equal(
            a.table("sales_fact").column("quantity"),
            b.table("sales_fact").column("quantity"),
        )

    def test_different_seed_differs(self):
        a, _, _ = build_sales_catalog(n_rows=500, seed=1)
        b, _, _ = build_sales_catalog(n_rows=500, seed=2)
        assert not np.array_equal(
            a.table("sales_fact").column("quantity"),
            b.table("sales_fact").column("quantity"),
        )

    def test_profit_positive_on_average(self, sales):
        fact = sales.catalog.table("sales_fact")
        profit = fact.column("storeSales") - fact.column("storeCost")
        assert profit.mean() > 0


class TestSsbGenerator:
    def test_dimension_cardinalities_scale(self):
        small = dimension_cardinalities(60_000)
        large = dimension_cardinalities(600_000)
        assert large[0] == 10 * small[0]  # customers scale with the fact
        assert small == (300, 50, 2000)

    def test_star_layout(self, ssb):
        catalog = ssb.catalog
        assert len(catalog.table("ssb_lineorder")) == 30_000
        for name in ("ssb_date", "ssb_customer", "ssb_supplier", "ssb_part"):
            assert catalog.has_table(name)

    def test_hierarchy_consistency_brand_category_mfgr(self, ssb):
        part = ssb.catalog.table("ssb_part")
        for brand, category, mfgr in zip(
            part.column("p_brand1"), part.column("p_category"), part.column("p_mfgr")
        ):
            assert brand.startswith(category)
            assert category.startswith(mfgr)

    def test_geo_hierarchy_consistency(self, ssb):
        customer = ssb.catalog.table("ssb_customer")
        nation_region = {}
        for nation, region in zip(
            customer.column("c_nation"), customer.column("c_region")
        ):
            assert nation_region.setdefault(nation, region) == region

    def test_revenue_formula(self, ssb):
        fact = ssb.catalog.table("ssb_lineorder")
        revenue = fact.column("lo_revenue")
        expected = np.round(
            fact.column("lo_extendedprice") * (100.0 - fact.column("lo_discount")) / 100.0,
            2,
        )
        assert np.allclose(revenue, expected)

    def test_budget_cube_joinable_with_ssb(self, ssb):
        budget_schema = ssb.cube("BUDGET").schema
        ssb_schema = ssb.cube("SSB").schema
        query = CubeQuery("SSB", GroupBySet(ssb_schema, ["month", "category"]), (),
                          ("revenue",))
        budget_query = CubeQuery(
            "BUDGET", GroupBySet(budget_schema, ["month", "category"]), (),
            ("expected_revenue",),
        )
        actual = ssb.get(query)
        expected = ssb.get(budget_query)
        assert actual.is_joinable_with(expected)
        joined = actual.natural_join(expected)
        assert len(joined) == len(actual)  # budget covers every cell

    def test_budget_close_to_actual(self, ssb):
        ssb_schema = ssb.cube("SSB").schema
        budget_schema = ssb.cube("BUDGET").schema
        actual = ssb.get(
            CubeQuery("SSB", GroupBySet(ssb_schema, ["month", "category"]), (),
                      ("revenue",))
        )
        budget = ssb.get(
            CubeQuery("BUDGET", GroupBySet(budget_schema, ["month", "category"]), (),
                      ("expected_revenue",))
        )
        joined = actual.natural_join(budget)
        ratio = joined.measure("benchmark.expected_revenue") / joined.measure("revenue")
        assert 0.5 < np.median(ratio) < 1.5


class TestRandomCube:
    def test_random_hierarchy_part_of_consistent(self):
        rng = np.random.default_rng(3)
        hierarchy = random_hierarchy(rng, "H", depth=3)
        for member in hierarchy.members_of(hierarchy.finest_level.name):
            top = hierarchy.rollup_member(
                member, hierarchy.finest_level.name, hierarchy.coarsest_level.name
            )
            assert top in hierarchy.members_of(hierarchy.coarsest_level.name)

    def test_random_schema_shape(self):
        rng = np.random.default_rng(5)
        schema = random_schema(rng, n_hierarchies=3, n_measures=2)
        assert len(schema.hierarchies) == 3
        assert len(schema.measures) == 2

    def test_random_cube_density(self):
        rng = np.random.default_rng(7)
        schema = random_schema(rng)
        cube = random_detailed_cube(rng, schema, density=1.0)
        sparse = random_detailed_cube(rng, schema, density=0.2)
        assert len(sparse) <= len(cube)
        assert len(cube) >= 1
