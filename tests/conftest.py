"""Shared fixtures: the SALES example engine, a small SSB engine, and the
exact mini-cube of the paper's Figure 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AssessSession
from repro.core import CubeSchema, Hierarchy, Level, Measure
from repro.datagen import sales_engine, ssb_engine
from repro.engine import Catalog, DimensionBinding, StarSchema, Table
from repro.olap import MultidimensionalEngine, hydrate_hierarchies


@pytest.fixture(autouse=True)
def _reset_global_metrics():
    """Counter isolation: every test starts with pristine global METRICS.

    Engine registries propagate into the process-wide roll-up, so
    without this a test asserting on ``METRICS`` counter values would
    see increments leaked by whichever tests ran before it.
    """
    from repro.obs.metrics import METRICS

    METRICS.reset()
    yield
    METRICS.reset()


@pytest.fixture(scope="session")
def sales():
    """The SALES example engine (20k fact rows, hydrated hierarchies)."""
    return sales_engine(n_rows=20_000, seed=42)


@pytest.fixture(scope="session")
def ssb():
    """A small SSB engine with the BUDGET external cube."""
    return ssb_engine(lineorder_rows=30_000, seed=7)


@pytest.fixture()
def sales_session(sales):
    return AssessSession(sales)


@pytest.fixture()
def ssb_session(ssb):
    return AssessSession(ssb)


# ----------------------------------------------------------------------
# The exact cube of Figure 1 / Example 2.7: fresh-fruit quantities in
# Italy and France, one fact row per cell.
# ----------------------------------------------------------------------
FIGURE1_QUANTITIES = {
    ("Apple", "Italy"): 100,
    ("Pear", "Italy"): 90,
    ("Lemon", "Italy"): 30,
    ("Apple", "France"): 150,
    ("Pear", "France"): 110,
    ("Lemon", "France"): 20,
}


def build_figure1_engine() -> MultidimensionalEngine:
    """A tiny SALES star holding exactly the Figure 1 numbers."""
    catalog = Catalog()
    products = ["Apple", "Pear", "Lemon", "Milk"]
    catalog.register(
        Table(
            "f1_product",
            {
                "pkey": np.arange(4, dtype=np.int64),
                "p_name": np.array(products, dtype=object),
                "p_type": np.array(
                    ["Fresh Fruit", "Fresh Fruit", "Fresh Fruit", "Dairy"],
                    dtype=object,
                ),
                "p_category": np.array(
                    ["Fruit", "Fruit", "Fruit", "Drinks"], dtype=object
                ),
            },
        )
    )
    countries = ["Italy", "France", "Spain"]
    catalog.register(
        Table(
            "f1_store",
            {
                "skey": np.arange(3, dtype=np.int64),
                "s_name": np.array(["ItStore", "FrStore", "EsStore"], dtype=object),
                "s_country": np.array(countries, dtype=object),
            },
        )
    )
    pkeys, skeys, quantities = [], [], []
    for (product, country), quantity in FIGURE1_QUANTITIES.items():
        pkeys.append(products.index(product))
        skeys.append(countries.index(country))
        quantities.append(float(quantity))
    # a Milk row in Spain exercises predicate filtering
    pkeys.append(3)
    skeys.append(2)
    quantities.append(55.0)
    catalog.register(
        Table(
            "f1_fact",
            {
                "pkey": np.asarray(pkeys, dtype=np.int64),
                "skey": np.asarray(skeys, dtype=np.int64),
                "quantity": np.asarray(quantities, dtype=np.float64),
            },
        )
    )

    schema = CubeSchema(
        "SALES",
        [
            Hierarchy("Product", [Level("product"), Level("type"), Level("category")]),
            Hierarchy("Store", [Level("store"), Level("country")]),
        ],
        [Measure("quantity", "sum")],
    )
    star = StarSchema(
        name="SALES",
        fact_table="f1_fact",
        dimensions=[
            DimensionBinding("Product", "f1_product", "pkey", "pkey",
                             {"product": "p_name", "type": "p_type",
                              "category": "p_category"}),
            DimensionBinding("Store", "f1_store", "skey", "skey",
                             {"store": "s_name", "country": "s_country"}),
        ],
        measure_columns={"quantity": "quantity"},
    )
    engine = MultidimensionalEngine(catalog)
    engine.register_cube("SALES", schema, star)
    hydrate_hierarchies(schema, star, catalog)
    return engine


@pytest.fixture()
def figure1():
    return build_figure1_engine()


@pytest.fixture()
def figure1_session(figure1):
    return AssessSession(figure1)
