"""Property-based round-trip tests: render(statement) reparses identically.

Statements are generated programmatically over the SALES schema — random
group-by sets, predicates, benchmark types, nested using expressions, and
label range sets — then rendered to the surface syntax and reparsed.  The
reparse must reproduce the same semantic object (same rendering, same
group-by, same benchmark, same label vocabulary).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AssessStatement,
    ConstantBenchmark,
    FunctionCall,
    GroupBySet,
    Interval,
    LabelRule,
    Literal,
    MeasureRef,
    NamedLabeling,
    Predicate,
    RangeLabeling,
    SiblingBenchmark,
)
from repro.datagen import sales_schema
from repro.parser import parse_statement

SCHEMA = sales_schema()
SCHEMAS = {"SALES": SCHEMA}

MEASURES = ("quantity", "storeSales", "storeCost")
LABEL_WORDS = ("bad", "ok", "good", "great", "poor", "fine")
COUNTRIES = ("Italy", "France", "Spain")


def _interval_chain(bounds):
    """A complete partition of R from sorted bounds."""
    edges = [-math.inf] + sorted(set(bounds)) + [math.inf]
    rules = []
    for i in range(len(edges) - 1):
        rules.append(
            LabelRule(
                Interval(edges[i], edges[i + 1], i > 0, False),
                LABEL_WORDS[i % len(LABEL_WORDS)] + (str(i) if i >= len(LABEL_WORDS) else ""),
            )
        )
    return RangeLabeling(rules)


bounds_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda x: round(x, 2)
    ),
    min_size=1,
    max_size=4,
    unique=True,
)

labels_strategy = st.one_of(
    st.sampled_from(["quartiles", "terciles", "median", "top3", "zscoreLikert"]).map(
        NamedLabeling
    ),
    bounds_strategy.map(_interval_chain),
)

measure_strategy = st.sampled_from(MEASURES)


def zero_statement(measure, group_levels, labels):
    return AssessStatement(
        source="SALES",
        schema=SCHEMA,
        group_by=GroupBySet(SCHEMA, group_levels),
        measure=measure,
        predicates=(),
        benchmark=None,
        using=None,
        labels=labels,
    )


class TestRoundTripProperties:
    @given(
        measure=measure_strategy,
        labels=labels_strategy,
        levels=st.sets(
            st.sampled_from(["month", "year", "product", "type", "country", "gender"]),
            min_size=1,
            max_size=3,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_zero_benchmark_round_trip(self, measure, labels, levels):
        try:
            statement = zero_statement(measure, sorted(levels), labels)
        except Exception:
            # two levels of the same hierarchy — not a valid group-by set
            return
        reparsed = parse_statement(statement.render(), SCHEMAS)
        assert reparsed.render() == statement.render()
        assert reparsed.group_by == statement.group_by
        assert reparsed.measure == statement.measure

    @given(
        measure=measure_strategy,
        labels=labels_strategy,
        value=st.floats(min_value=0.5, max_value=1e6, allow_nan=False).map(
            lambda x: round(x, 1)
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_benchmark_round_trip(self, measure, labels, value):
        statement = AssessStatement(
            source="SALES",
            schema=SCHEMA,
            group_by=GroupBySet(SCHEMA, ["month"]),
            measure=measure,
            benchmark=ConstantBenchmark(value),
            using=FunctionCall("ratio", [MeasureRef(measure), Literal(value)]),
            labels=labels,
        )
        reparsed = parse_statement(statement.render(), SCHEMAS)
        assert isinstance(reparsed.benchmark, ConstantBenchmark)
        assert reparsed.benchmark.value == pytest.approx(value)
        assert reparsed.render() == statement.render()

    @given(
        target=st.sampled_from(COUNTRIES),
        sibling=st.sampled_from(COUNTRIES),
        labels=labels_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_sibling_benchmark_round_trip(self, target, sibling, labels):
        if target == sibling:
            return
        statement = AssessStatement(
            source="SALES",
            schema=SCHEMA,
            group_by=GroupBySet(SCHEMA, ["product", "country"]),
            measure="quantity",
            predicates=(Predicate.eq("country", target),),
            benchmark=SiblingBenchmark("country", sibling),
            labels=labels,
        )
        reparsed = parse_statement(statement.render(), SCHEMAS)
        assert isinstance(reparsed.benchmark, SiblingBenchmark)
        assert reparsed.benchmark.sibling == sibling
        assert reparsed.render() == statement.render()

    @given(bounds=bounds_strategy)
    @settings(max_examples=80, deadline=None)
    def test_label_ranges_round_trip(self, bounds):
        labeling = _interval_chain(bounds)
        statement = zero_statement("quantity", ["month"], labeling)
        reparsed = parse_statement(statement.render(), SCHEMAS)
        assert isinstance(reparsed.labels, RangeLabeling)
        assert reparsed.labels.labels == labeling.labels
        for original, parsed in zip(labeling.rules, reparsed.labels.rules):
            assert parsed.interval == original.interval
