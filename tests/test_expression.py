"""Unit tests for the using-clause expression AST."""

import pytest

from repro.core import BinaryOp, FunctionCall, Literal, MeasureRef
from repro.core.expression import default_using


class TestLiteral:
    def test_render_integers_without_decimal(self):
        assert Literal(1000).render() == "1000"
        assert Literal(0.5).render() == "0.5"

    def test_no_references(self):
        assert Literal(1).references() == ()

    def test_equality(self):
        assert Literal(1) == Literal(1.0)
        assert Literal(1) != Literal(2)


class TestMeasureRef:
    def test_unqualified(self):
        ref = MeasureRef("quantity")
        assert ref.column_name == "quantity"
        assert ref.render() == "quantity"

    def test_qualified(self):
        ref = MeasureRef("quantity", "benchmark")
        assert ref.column_name == "benchmark.quantity"
        assert ref.render() == "benchmark.quantity"

    def test_references_self(self):
        ref = MeasureRef("m")
        assert ref.references() == (ref,)

    def test_equality_includes_qualifier(self):
        assert MeasureRef("m") != MeasureRef("m", "benchmark")
        assert MeasureRef("m", "b") == MeasureRef("m", "b")


class TestFunctionCall:
    def test_render_nested(self):
        expr = FunctionCall(
            "minMaxNorm",
            [FunctionCall("difference", [MeasureRef("storeSales"), Literal(1000)])],
        )
        assert expr.render() == "minMaxNorm(difference(storeSales, 1000))"

    def test_references_collected_left_to_right(self):
        expr = FunctionCall(
            "percOfTotal",
            [
                FunctionCall(
                    "difference",
                    [MeasureRef("quantity"), MeasureRef("quantity", "benchmark")],
                ),
                MeasureRef("quantity"),
            ],
        )
        names = [r.column_name for r in expr.references()]
        assert names == ["quantity", "benchmark.quantity", "quantity"]

    def test_equality(self):
        a = FunctionCall("f", [Literal(1)])
        assert a == FunctionCall("f", [Literal(1)])
        assert a != FunctionCall("g", [Literal(1)])
        assert a != FunctionCall("f", [Literal(2)])


class TestBinaryOp:
    def test_render_parenthesised(self):
        expr = BinaryOp("-", MeasureRef("storeSales"), MeasureRef("storeCost"))
        assert expr.render() == "(storeSales - storeCost)"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("%", Literal(1), Literal(2))

    def test_references_from_both_sides(self):
        expr = BinaryOp("*", MeasureRef("a"), BinaryOp("+", MeasureRef("b"), Literal(1)))
        assert [r.name for r in expr.references()] == ["a", "b"]


class TestDefaultUsing:
    def test_shape(self):
        expr = default_using("quantity", "constant")
        assert expr.render() == "difference(quantity, benchmark.constant)"

    def test_against_own_measure(self):
        expr = default_using("storeSales", "storeSales")
        assert expr.render() == "difference(storeSales, benchmark.storeSales)"
