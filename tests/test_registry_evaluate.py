"""Unit tests for the function registry and expression evaluation."""

import numpy as np
import pytest

from repro.core import (
    BinaryOp,
    Cube,
    CubeSchema,
    FunctionCall,
    FunctionError,
    GroupBySet,
    Hierarchy,
    Level,
    Literal,
    Measure,
    MeasureRef,
)
from repro.functions import classify_expression, default_registry, evaluate
from repro.functions.registry import FunctionRegistry


@pytest.fixture()
def cube():
    schema = CubeSchema(
        "S",
        [Hierarchy("P", [Level("product")])],
        [Measure("quantity"), Measure("storeSales"), Measure("storeCost")],
    )
    gb = GroupBySet(schema, ["product"])
    return Cube(
        schema,
        gb,
        {"product": ["a", "b", "c"]},
        {
            "quantity": [100.0, 90.0, 30.0],
            "storeSales": [20.0, 18.0, 9.0],
            "storeCost": [12.0, 10.0, 6.0],
            "benchmark.quantity": [150.0, 110.0, 20.0],
        },
    )


class TestRegistry:
    def test_case_insensitive_lookup(self):
        registry = default_registry()
        assert registry.get("minmaxnorm").name == "minMaxNorm"
        assert registry.get("MINMAXNORM") is registry.get("minMaxNorm")

    def test_unknown_function(self):
        with pytest.raises(FunctionError):
            default_registry().get("nope")

    def test_duplicate_registration_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", "cell", lambda a: a)
        with pytest.raises(FunctionError):
            registry.register("F", "cell", lambda a: a)
        registry.register("f", "cell", lambda a: a + 1, replace=True)

    def test_unknown_kind_rejected(self):
        registry = FunctionRegistry()
        with pytest.raises(FunctionError):
            registry.register("f", "weird", lambda a: a)

    def test_copy_isolation(self):
        base = default_registry()
        clone = base.copy()
        clone.register("custom", "cell", lambda a: a)
        assert clone.has("custom")
        assert not base.has("custom")

    def test_names_filtered_by_kind(self):
        registry = default_registry()
        assert "linearRegression" in registry.names("prediction")
        assert "linearRegression" not in registry.names("cell")

    def test_holistic_flag(self):
        registry = default_registry()
        assert registry.get("percOfTotal").is_holistic
        assert not registry.get("difference").is_holistic


class TestEvaluate:
    def test_literal_broadcast(self, cube):
        out = evaluate(Literal(5), cube)
        assert out.tolist() == [5.0, 5.0, 5.0]

    def test_measure_ref(self, cube):
        out = evaluate(MeasureRef("quantity"), cube)
        assert out.tolist() == [100.0, 90.0, 30.0]

    def test_qualified_ref(self, cube):
        out = evaluate(MeasureRef("quantity", "benchmark"), cube)
        assert out.tolist() == [150.0, 110.0, 20.0]

    def test_arithmetic(self, cube):
        profit = BinaryOp("-", MeasureRef("storeSales"), MeasureRef("storeCost"))
        assert evaluate(profit, cube).tolist() == [8.0, 8.0, 3.0]

    def test_division(self, cube):
        expr = BinaryOp("/", MeasureRef("storeSales"), MeasureRef("storeCost"))
        assert evaluate(expr, cube)[2] == pytest.approx(1.5)

    def test_nested_calls_match_figure1(self, cube):
        expr = FunctionCall(
            "percOfTotal",
            [
                FunctionCall(
                    "difference",
                    [MeasureRef("quantity"), MeasureRef("quantity", "benchmark")],
                ),
                MeasureRef("quantity"),
            ],
        )
        out = evaluate(expr, cube)
        assert out[0] == pytest.approx(-50 / 220)
        assert out[2] == pytest.approx(10 / 220)

    def test_unknown_measure_rejected(self, cube):
        from repro.core import SchemaError

        with pytest.raises(SchemaError):
            evaluate(MeasureRef("profit"), cube)

    def test_wrong_arity_rejected(self, cube):
        with pytest.raises(FunctionError):
            evaluate(FunctionCall("difference", [MeasureRef("quantity")]), cube)

    def test_labeling_function_rejected_in_using(self, cube):
        with pytest.raises(FunctionError):
            evaluate(FunctionCall("quartiles", [MeasureRef("quantity")]), cube)

    def test_wrong_shape_rejected(self, cube):
        registry = default_registry().copy()
        registry.register("broken", "cell", lambda a: np.array([1.0]), arity=1)
        with pytest.raises(FunctionError):
            evaluate(FunctionCall("broken", [MeasureRef("quantity")]), cube, registry)


class TestClassify:
    def test_cell_expression(self):
        expr = FunctionCall("difference", [MeasureRef("a"), Literal(1)])
        assert classify_expression(expr) == "cell"

    def test_arithmetic_is_cell(self):
        expr = BinaryOp("-", MeasureRef("a"), MeasureRef("b"))
        assert classify_expression(expr) == "cell"

    def test_holistic_outer(self):
        expr = FunctionCall("minMaxNorm", [MeasureRef("a")])
        assert classify_expression(expr) == "holistic"

    def test_holistic_nested(self):
        expr = FunctionCall(
            "difference",
            [FunctionCall("zscore", [MeasureRef("a")]), Literal(0)],
        )
        assert classify_expression(expr) == "holistic"
