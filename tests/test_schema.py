"""Unit tests for measures and cube schemas (Definition 2.1)."""

import numpy as np
import pytest

from repro.core import CubeSchema, Hierarchy, Level, Measure, SchemaError
from repro.datagen import sales_schema, ssb_schema


class TestMeasure:
    def test_default_operator_is_sum(self):
        assert Measure("quantity").op == "sum"

    def test_aggregate_dispatch(self):
        values = np.array([1.0, 2.0, 3.0])
        assert Measure("m", "sum").aggregate(values) == 6.0
        assert Measure("m", "avg").aggregate(values) == 2.0
        assert Measure("m", "min").aggregate(values) == 1.0
        assert Measure("m", "max").aggregate(values) == 3.0
        assert Measure("m", "count").aggregate(values) == 3.0

    def test_distributive_flag(self):
        assert Measure("m", "sum").is_distributive
        assert not Measure("m", "avg").is_distributive

    def test_unknown_operator_rejected(self):
        with pytest.raises(SchemaError):
            Measure("m", "median")

    def test_equality(self):
        assert Measure("m", "sum") == Measure("m", "sum")
        assert Measure("m", "sum") != Measure("m", "avg")


class TestCubeSchema:
    def test_sales_schema_shape(self):
        schema = sales_schema()
        assert schema.hierarchy_names() == ("Date", "Customer", "Product", "Store")
        assert schema.measure_names() == ("quantity", "storeSales", "storeCost")
        assert schema.finest_group_by() == ("date", "customer", "product", "store")

    def test_level_lookup_across_hierarchies(self):
        schema = sales_schema()
        assert schema.hierarchy_of_level("country").name == "Store"
        assert schema.level("month").name == "month"
        assert schema.has_level("type")
        assert not schema.has_level("brand")

    def test_unknown_lookups_raise(self):
        schema = sales_schema()
        with pytest.raises(SchemaError):
            schema.hierarchy("Region")
        with pytest.raises(SchemaError):
            schema.hierarchy_of_level("brand")
        with pytest.raises(SchemaError):
            schema.measure("profit")

    def test_duplicate_level_names_across_hierarchies_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                "BAD",
                [
                    Hierarchy("A", [Level("x")]),
                    Hierarchy("B", [Level("x")]),
                ],
                [Measure("m")],
            )

    def test_duplicate_hierarchy_names_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                "BAD",
                [Hierarchy("A", [Level("x")]), Hierarchy("A", [Level("y")])],
                [Measure("m")],
            )

    def test_duplicate_measures_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                "BAD",
                [Hierarchy("A", [Level("x")])],
                [Measure("m"), Measure("m")],
            )

    def test_needs_hierarchies_and_measures(self):
        with pytest.raises(SchemaError):
            CubeSchema("BAD", [], [Measure("m")])
        with pytest.raises(SchemaError):
            CubeSchema("BAD", [Hierarchy("A", [Level("x")])], [])

    def test_temporal_hierarchy_by_name(self):
        assert sales_schema().temporal_hierarchy().name == "Date"
        assert ssb_schema().temporal_hierarchy().name == "Date"

    def test_temporal_hierarchy_by_level_name(self):
        schema = CubeSchema(
            "T",
            [Hierarchy("When", [Level("time"), Level("shift")])],
            [Measure("m")],
        )
        assert schema.temporal_hierarchy().name == "When"

    def test_no_temporal_hierarchy(self):
        schema = CubeSchema(
            "T", [Hierarchy("Geo", [Level("city")])], [Measure("m")]
        )
        assert schema.temporal_hierarchy() is None

    def test_ssb_measures_include_avg_discount(self):
        schema = ssb_schema()
        assert schema.measure("discount").op == "avg"
        assert schema.measure("revenue").op == "sum"
