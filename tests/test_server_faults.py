"""Fault injection: deadlines, saturation, and mid-request shutdown.

The three failure modes the ISSUE pins, each driven through the
server's ``before_execute`` hook (called on the execution worker, so a
sleeping hook simulates a slow tenant without touching engine code):

* a slow execution trips the per-request deadline — the client gets a
  504 envelope *and* the session rejoins the pool clean (the very next
  request succeeds on it);
* pool + queue saturation answers 429 with a ``Retry-After`` header
  matching the admission config;
* a shutdown issued mid-request drains: the in-flight query completes
  with 200, late arrivals get 503, and the tenant's query log holds
  only whole records (``iter_records(strict=True)`` parses every line).
"""

from __future__ import annotations

import threading
import time

from repro.obs.qlog import iter_records, validate_record
from repro.server import AdmissionConfig, ReproServer, ServerConfig, TenantConfig

from .server_utils import SALES_STATEMENT, post_json

ROWS = 1_500


def _server(tmp_path=None, *, pool_size=1, max_queue=0, deadline_s=30.0,
            retry_after_s=0.25, shutdown_grace_s=10.0):
    telemetry_dir = str(tmp_path / "qlog") if tmp_path is not None else None
    config = ServerConfig(
        host="127.0.0.1", port=0,
        admission=AdmissionConfig(
            max_queue=max_queue, deadline_s=deadline_s,
            retry_after_s=retry_after_s, shutdown_grace_s=shutdown_grace_s,
        ),
        tenants=[TenantConfig(
            "demo", cube="sales", rows=ROWS, pool_size=pool_size,
            telemetry_dir=telemetry_dir,
        )],
    )
    return ReproServer(config).start()


def test_slow_execution_trips_deadline_and_pool_stays_clean():
    server = _server(pool_size=1)
    try:
        blocker = threading.Event()

        def slow(tenant_id):
            blocker.wait(timeout=20.0)

        server.before_execute = slow
        start = time.monotonic()
        status, document, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT,
             "deadline_s": 0.5},
            timeout=30.0,
        )
        elapsed = time.monotonic() - start
        assert status == 504
        assert document["error"]["code"] == "deadline_exceeded"
        assert "0.5" in document["error"]["message"]
        # The 504 came back on the deadline, not on the slow worker.
        assert elapsed < 5.0

        # Free the worker; the session must rejoin the pool clean and
        # serve the next request (pool_size=1, so it IS that session).
        blocker.set()
        server.before_execute = None
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if server.tenants["demo"].available() == 1:
                break
            time.sleep(0.05)
        status, document, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
        )
        assert status == 200
        assert document["rows"] > 0

        admission = server.tenants["demo"].admission_stats()
        assert admission["errors"] == 1  # the aborted slow execution
        assert admission["completed"] >= 1
    finally:
        server.shutdown(grace_s=10.0)


def test_queue_saturation_returns_429_with_retry_after():
    server = _server(pool_size=1, max_queue=0, retry_after_s=0.25)
    try:
        blocker = threading.Event()
        server.before_execute = lambda tenant_id: blocker.wait(timeout=20.0)

        background = {}

        def occupy():
            background["response"] = post_json(
                f"{server.url}/v1/query",
                {"tenant": "demo", "statement": SALES_STATEMENT},
                timeout=60.0,
            )

        thread = threading.Thread(target=occupy)
        thread.start()
        # Wait until the one pooled session is checked out.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if server.tenants["demo"].available() == 0:
                break
            time.sleep(0.02)
        assert server.tenants["demo"].available() == 0

        status, document, headers = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
        )
        assert status == 429
        assert document["error"]["code"] == "overloaded"
        assert document["error"]["retry_after_s"] == 0.25
        assert headers["Retry-After"] == "0.25"

        blocker.set()
        thread.join(timeout=60.0)
        assert background["response"][0] == 200

        admission = server.tenants["demo"].admission_stats()
        assert admission["rejected_queue_full"] == 1
    finally:
        server.shutdown(grace_s=10.0)


def test_deadline_while_queued_returns_504():
    # max_queue=2 admits a waiter; the waiter's own deadline lapses
    # before the single session frees up.
    server = _server(pool_size=1, max_queue=2)
    try:
        blocker = threading.Event()
        server.before_execute = lambda tenant_id: blocker.wait(timeout=20.0)

        def occupy():
            post_json(
                f"{server.url}/v1/query",
                {"tenant": "demo", "statement": SALES_STATEMENT},
                timeout=60.0,
            )

        thread = threading.Thread(target=occupy)
        thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if server.tenants["demo"].available() == 0:
                break
            time.sleep(0.02)

        status, document, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT,
             "deadline_s": 0.4},
            timeout=30.0,
        )
        assert status == 504
        assert document["error"]["code"] == "deadline_exceeded"
        blocker.set()
        thread.join(timeout=60.0)
        assert server.tenants["demo"].admission_stats()["rejected_deadline"] == 1
    finally:
        server.shutdown(grace_s=10.0)


def test_mid_request_shutdown_drains_without_torn_qlog(tmp_path):
    server = _server(tmp_path, pool_size=2, max_queue=8)
    qlog_dir = tmp_path / "qlog"
    gate = threading.Event()
    started = threading.Event()

    def slowish(tenant_id):
        started.set()
        gate.wait(timeout=20.0)

    server.before_execute = slowish

    in_flight = {}

    def client():
        in_flight["response"] = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
            timeout=60.0,
        )

    thread = threading.Thread(target=client)
    thread.start()
    assert started.wait(timeout=10.0)

    # Shut down while that query executes; release it shortly after the
    # drain begins so the grace window sees it through.
    releaser = threading.Timer(0.3, gate.set)
    releaser.start()
    drained = server.shutdown(grace_s=15.0)
    assert drained, "shutdown failed to drain the in-flight query"
    thread.join(timeout=60.0)
    releaser.cancel()

    # The in-flight query completed normally...
    assert in_flight["response"][0] == 200
    assert in_flight["response"][1]["rows"] > 0

    # ...and a late arrival is refused while draining (the socket may
    # instead be closed already, which is equally acceptable).
    try:
        status, document, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
            timeout=5.0,
        )
    except OSError:
        pass
    else:
        assert status == 503
        assert document["error"]["code"] == "shutting_down"

    # The query log holds only whole, schema-valid records: strict
    # parsing raises on any torn line.
    records = list(iter_records(qlog_dir, strict=True))
    assert len(records) == 1
    for record in records:
        validate_record(record)  # raises QueryLogError on violation
    assert records[0]["status"] == "ok"


def test_draining_server_rejects_new_requests_with_503():
    server = _server(pool_size=1)
    gate = threading.Event()
    started = threading.Event()

    def hold(tenant_id):
        started.set()
        gate.wait(timeout=20.0)

    server.before_execute = hold
    background = {}

    def client():
        background["response"] = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
            timeout=60.0,
        )

    thread = threading.Thread(target=client)
    thread.start()
    assert started.wait(timeout=10.0)

    shutdown_result = {}

    def stop():
        shutdown_result["drained"] = server.shutdown(grace_s=15.0)

    stopper = threading.Thread(target=stop)
    stopper.start()
    # Draining flips synchronously under the state lock; poll health
    # semantics via a new request instead (health itself still serves).
    deadline = time.monotonic() + 5.0
    refused = None
    while time.monotonic() < deadline:
        try:
            status, document, _ = post_json(
                f"{server.url}/v1/query",
                {"tenant": "demo", "statement": SALES_STATEMENT},
                timeout=5.0,
            )
        except OSError:
            break
        if status == 503:
            refused = document
            break
        time.sleep(0.05)
    gate.set()
    stopper.join(timeout=60.0)
    thread.join(timeout=60.0)
    assert shutdown_result["drained"]
    assert background["response"][0] == 200
    if refused is not None:
        assert refused["error"]["code"] == "shutting_down"


def test_error_envelope_for_engine_failure():
    # A statement that parses and lints clean but explodes at runtime
    # must come back as a 500 envelope, not a hung or torn response.
    server = _server(pool_size=1)
    try:
        def boom(tenant_id):
            raise RuntimeError("injected engine failure")

        server.before_execute = boom
        status, document, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
        )
        assert status == 500
        assert document["error"]["code"] == "internal"
        assert "injected engine failure" in document["error"]["message"]
        server.before_execute = None
        # The pool recovered.
        status, document, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "demo", "statement": SALES_STATEMENT},
        )
        assert status == 200
    finally:
        server.shutdown(grace_s=10.0)


def test_pooled_sessions_get_distinct_qlog_labels(tmp_path):
    # The PR's telemetry fix: two pooled sessions sharing one bundle
    # must write attributable (distinct) session labels.
    server = _server(tmp_path, pool_size=2, max_queue=8)
    qlog_dir = tmp_path / "qlog"
    try:
        gate = threading.Event()
        both_started = threading.Barrier(3, timeout=20.0)

        def hold(tenant_id):
            both_started.wait()
            gate.wait(timeout=20.0)

        server.before_execute = hold
        threads = [
            threading.Thread(target=post_json, args=(
                f"{server.url}/v1/query",
                {"tenant": "demo", "statement": SALES_STATEMENT},
            ), kwargs={"timeout": 60.0})
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        both_started.wait()  # both sessions are checked out concurrently
        gate.set()
        for thread in threads:
            thread.join(timeout=60.0)
        server.before_execute = None

        records = list(iter_records(qlog_dir, strict=True))
        assert len(records) == 2
        labels = {record["session"] for record in records}
        assert len(labels) == 2, (
            f"pooled sessions wrote colliding labels: {labels}"
        )
        stem = min(labels, key=len)
        assert all(label.startswith(stem) for label in labels)
    finally:
        server.shutdown(grace_s=10.0)
