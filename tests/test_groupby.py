"""Unit tests for group-by sets, coordinates and roll-up (Definition 2.3)."""

import pytest

from repro.core import GroupBySet, SchemaError, top_group_by
from repro.datagen import sales_schema


@pytest.fixture(scope="module")
def schema():
    s = sales_schema()
    # Wire the part-of members Example 2.5 uses.
    product = s.hierarchy("Product")
    product.set_parent("product", "Lemon", "Fresh Fruit")
    product.set_parent("type", "Fresh Fruit", "Fruit")
    date = s.hierarchy("Date")
    date.set_parent("date", "1997-04-15", "1997-04")
    date.set_parent("month", "1997-04", "1997")
    store = s.hierarchy("Store")
    store.set_parent("store", "SmartMart", "Bologna")
    store.set_parent("city", "Bologna", "Italy")
    return s


class TestConstruction:
    def test_canonical_ordering_is_schema_order(self, schema):
        # Textual order does not matter: hierarchies order coordinates.
        a = GroupBySet(schema, ["country", "month"])
        b = GroupBySet(schema, ["month", "country"])
        assert a.levels == ("month", "country")
        assert a == b
        assert hash(a) == hash(b)

    def test_two_levels_same_hierarchy_rejected(self, schema):
        with pytest.raises(SchemaError):
            GroupBySet(schema, ["product", "type"])

    def test_same_level_twice_is_tolerated(self, schema):
        gb = GroupBySet(schema, ["product", "product"])
        assert gb.levels == ("product",)

    def test_unknown_level_rejected(self, schema):
        with pytest.raises(SchemaError):
            GroupBySet(schema, ["brand"])

    def test_membership_and_positions(self, schema):
        gb = GroupBySet(schema, ["month", "product", "country"])
        assert "product" in gb
        assert "year" not in gb
        assert gb.position_of("month") == 0
        assert gb.position_of("country") == 2
        with pytest.raises(SchemaError):
            gb.position_of("year")

    def test_level_for_hierarchy(self, schema):
        gb = GroupBySet(schema, ["month", "country"])
        assert gb.level_for_hierarchy("Date") == "month"
        with pytest.raises(SchemaError):
            gb.level_for_hierarchy("Product")

    def test_top_group_by(self, schema):
        top = top_group_by(schema)
        assert top.levels == ("date", "customer", "product", "store")


class TestPartialOrder:
    def test_example_2_5_chain(self, schema):
        g0 = GroupBySet(schema, ["date", "customer", "product", "store"])
        g1 = GroupBySet(schema, ["date", "type", "country"])
        g2 = GroupBySet(schema, ["month", "category"])
        assert g0.rolls_up_to(g1)
        assert g1.rolls_up_to(g2)
        assert g0.rolls_up_to(g2)  # transitivity
        assert not g2.rolls_up_to(g1)
        assert not g1.rolls_up_to(g0)

    def test_reflexivity(self, schema):
        g = GroupBySet(schema, ["month", "type"])
        assert g.rolls_up_to(g)

    def test_complete_aggregation_is_bottom(self, schema):
        empty = GroupBySet(schema, [])
        g = GroupBySet(schema, ["month"])
        assert g.rolls_up_to(empty)
        assert not empty.rolls_up_to(g)

    def test_incomparable_group_bys(self, schema):
        by_month = GroupBySet(schema, ["month"])
        by_type = GroupBySet(schema, ["type"])
        assert not by_month.rolls_up_to(by_type)
        assert not by_type.rolls_up_to(by_month)


class TestRup:
    def test_example_2_5_rup(self, schema):
        g1 = GroupBySet(schema, ["date", "type", "country"])
        g2 = GroupBySet(schema, ["month", "category"])
        gamma1 = ("1997-04-15", "Fresh Fruit", "Italy")
        assert g1.rup(gamma1, g2) == ("1997-04", "Fruit")

    def test_rup_identity(self, schema):
        g = GroupBySet(schema, ["month", "type"])
        assert g.rup(("1997-04", "Fresh Fruit"), g) == ("1997-04", "Fresh Fruit")

    def test_rup_to_complete_aggregation(self, schema):
        g = GroupBySet(schema, ["month"])
        assert g.rup(("1997-04",), GroupBySet(schema, [])) == ()

    def test_rup_wrong_arity_rejected(self, schema):
        g = GroupBySet(schema, ["month", "type"])
        with pytest.raises(SchemaError):
            g.rup(("1997-04",), GroupBySet(schema, ["year"]))

    def test_rup_incomparable_rejected(self, schema):
        by_month = GroupBySet(schema, ["month"])
        with pytest.raises(SchemaError):
            by_month.rup(("1997-04",), GroupBySet(schema, ["type"]))
