"""Unit tests for CSV ingestion and the flat→star builder."""

import numpy as np
import pytest

from repro.api import AssessSession
from repro.core import EngineError, SchemaError
from repro.datagen.flat import star_from_flat, table_from_csv
from repro.engine import Catalog, Table
from repro.olap import MultidimensionalEngine

CSV_CONTENT = """product,type,store,country,quantity,price
Apple,Fruit,Roma1,Italy,10,2.5
Apple,Fruit,Paris1,France,4,2.8
Pear,Fruit,Roma1,Italy,6,3.0
Milk,Dairy,Roma1,Italy,8,1.2
Milk,Dairy,Paris1,France,9,1.1
Pear,Fruit,Paris1,France,5,3.1
"""


@pytest.fixture()
def csv_path(tmp_path):
    path = tmp_path / "mini_sales.csv"
    path.write_text(CSV_CONTENT)
    return str(path)


@pytest.fixture()
def flat(csv_path):
    return table_from_csv(csv_path)


class TestTableFromCsv:
    def test_header_and_rows(self, flat):
        assert flat.name == "mini_sales"
        assert len(flat) == 6
        assert flat.column_names == (
            "product", "type", "store", "country", "quantity", "price"
        )

    def test_type_inference(self, flat):
        assert flat.column("quantity").dtype == np.float64
        assert flat.column("product").dtype == object

    def test_empty_numeric_cell_becomes_nan(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("a,b\n1,\n2,3\n")
        table = table_from_csv(str(path))
        assert np.isnan(table.column("b")[0])
        assert table.column("b")[1] == 3.0

    def test_mixed_column_stays_string(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a\n1\nx\n")
        table = table_from_csv(str(path))
        assert table.column("a").dtype == object

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(EngineError, match="line 2"):
            table_from_csv(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(EngineError):
            table_from_csv(str(path))

    def test_explicit_name(self, csv_path):
        assert table_from_csv(csv_path, name="custom").name == "custom"


class TestStarFromFlat:
    def build(self, flat):
        engine = MultidimensionalEngine(Catalog())
        schema, star = star_from_flat(
            engine,
            "MINI",
            flat,
            hierarchies={
                "Product": ["product", "type"],
                "Store": ["store", "country"],
            },
            measures={"quantity": "sum", "price": "avg"},
        )
        return engine, schema, star

    def test_dimensions_deduplicated(self, flat):
        engine, _, _ = self.build(flat)
        product_dim = engine.catalog.table("mini_product_dim")
        assert len(product_dim) == 3  # Apple, Pear, Milk
        store_dim = engine.catalog.table("mini_store_dim")
        assert len(store_dim) == 2

    def test_fact_preserves_row_count(self, flat):
        engine, _, _ = self.build(flat)
        assert len(engine.catalog.table("mini_fact")) == 6

    def test_aggregation_correct(self, flat):
        engine, schema, _ = self.build(flat)
        session = AssessSession(engine)
        result = session.assess(
            "with MINI by type assess quantity against 20 "
            "using ratio(quantity, 20) labels {[0, 1): under, [1, inf): over}"
        )
        cells = {cell.coordinate[0]: cell.value for cell in result}
        assert cells == {"Fruit": 25.0, "Dairy": 17.0}

    def test_avg_measure(self, flat):
        engine, schema, _ = self.build(flat)
        session = AssessSession(engine)
        result = session.assess(
            "with MINI by product assess price labels terciles"
        )
        prices = {cell.coordinate[0]: cell.value for cell in result}
        assert prices["Apple"] == pytest.approx((2.5 + 2.8) / 2)

    def test_hydrated_hierarchies(self, flat):
        engine, schema, _ = self.build(flat)
        product = schema.hierarchy("Product")
        assert product.parent_of("product", "Apple") == "Fruit"

    def test_sibling_statement_end_to_end(self, flat):
        engine, _, _ = self.build(flat)
        session = AssessSession(engine)
        result = session.assess(
            """with MINI for country = 'Italy' by product, country
               assess quantity against country = 'France'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): behind, [0, inf): ahead}""",
            plan="POP",
        )
        assert len(result) == 3

    def test_functional_dependency_violation_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "product,type,quantity\nApple,Fruit,1\nApple,Dairy,2\n"
        )
        flat = table_from_csv(str(path))
        engine = MultidimensionalEngine(Catalog())
        with pytest.raises(SchemaError, match="not functional"):
            star_from_flat(
                engine, "BAD", flat,
                hierarchies={"Product": ["product", "type"]},
                measures={"quantity": "sum"},
            )

    def test_unknown_level_column_rejected(self, flat):
        engine = MultidimensionalEngine(Catalog())
        with pytest.raises(EngineError):
            star_from_flat(
                engine, "X", flat,
                hierarchies={"P": ["brand"]},
                measures={"quantity": "sum"},
            )

    def test_non_numeric_measure_rejected(self, flat):
        engine = MultidimensionalEngine(Catalog())
        with pytest.raises(EngineError, match="not numeric"):
            star_from_flat(
                engine, "X", flat,
                hierarchies={"P": ["product"]},
                measures={"type": "sum"},
            )
