"""Unit tests for the Cube data structure and its join/pivot kernels."""

import math

import numpy as np
import pytest

from repro.core import (
    Cube,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    JoinabilityError,
    Level,
    Measure,
    SchemaError,
    constant_benchmark_cube,
)


@pytest.fixture(scope="module")
def schema():
    return CubeSchema(
        "SALES",
        [
            Hierarchy("Product", [Level("product"), Level("type")]),
            Hierarchy("Store", [Level("country")]),
        ],
        [Measure("quantity"), Measure("storeSales")],
    )


def make_cube(schema, rows, measures=("quantity",)):
    gb = GroupBySet(schema, ["product", "country"])
    cells = [
        (coordinate, dict(zip(measures, values)))
        for coordinate, values in rows
    ]
    return Cube.from_cells(schema, gb, cells, measure_names=list(measures))


ITALY = [
    (("Apple", "Italy"), (100.0,)),
    (("Pear", "Italy"), (90.0,)),
    (("Lemon", "Italy"), (30.0,)),
]
FRANCE = [
    (("Apple", "France"), (150.0,)),
    (("Pear", "France"), (110.0,)),
    (("Lemon", "France"), (20.0,)),
]


class TestConstruction:
    def test_from_cells_and_accessors(self, schema):
        cube = make_cube(schema, ITALY)
        assert len(cube) == 3
        assert cube.measure_names == ("quantity",)
        assert cube.cell(("Apple", "Italy")) == {"quantity": 100.0}
        assert ("Apple", "Italy") in cube
        assert ("Apple", "Spain") not in cube

    def test_mismatched_coordinate_rejected(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        with pytest.raises(SchemaError):
            Cube.from_cells(schema, gb, [(("Apple",), {"quantity": 1.0})])

    def test_ragged_columns_rejected(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        with pytest.raises(SchemaError):
            Cube(schema, gb,
                 {"product": ["a"], "country": ["x", "y"]},
                 {"quantity": [1.0]})

    def test_coords_must_match_group_by(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        with pytest.raises(SchemaError):
            Cube(schema, gb, {"product": ["a"]}, {"quantity": [1.0]})

    def test_empty_cube(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        cube = Cube.empty(schema, gb, ["quantity"])
        assert len(cube) == 0
        assert list(cube.cells()) == []

    def test_object_measures_kept_as_object(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        cube = Cube(schema, gb,
                    {"product": ["a"], "country": ["x"]},
                    {"label": ["good"]})
        assert cube.measure("label").dtype == object

    def test_to_rows(self, schema):
        cube = make_cube(schema, ITALY[:1])
        assert cube.to_rows() == [
            {"product": "Apple", "country": "Italy", "quantity": 100.0}
        ]


class TestColumnOps:
    def test_with_measure(self, schema):
        cube = make_cube(schema, ITALY)
        bigger = cube.with_measure("double", cube.measure("quantity") * 2)
        assert bigger.measure_names == ("quantity", "double")
        assert len(cube.measure_names) == 1  # original untouched
        assert bigger.cell(("Pear", "Italy"))["double"] == 180.0

    def test_with_measure_duplicate_rejected(self, schema):
        cube = make_cube(schema, ITALY)
        with pytest.raises(SchemaError):
            cube.with_measure("quantity", cube.measure("quantity"))

    def test_with_measure_wrong_length_rejected(self, schema):
        cube = make_cube(schema, ITALY)
        with pytest.raises(SchemaError):
            cube.with_measure("short", [1.0])

    def test_rename_and_project(self, schema):
        cube = make_cube(schema, ITALY).with_measure("extra", [1.0, 2.0, 3.0])
        renamed = cube.rename_measures({"extra": "bonus"})
        assert renamed.measure_names == ("quantity", "bonus")
        projected = renamed.project_measures(["bonus"])
        assert projected.measure_names == ("bonus",)

    def test_rename_collision_rejected(self, schema):
        cube = make_cube(schema, ITALY).with_measure("extra", [1.0, 2.0, 3.0])
        with pytest.raises(SchemaError):
            cube.rename_measures({"extra": "quantity"})

    def test_filter_rows(self, schema):
        cube = make_cube(schema, ITALY)
        small = cube.filter_rows(cube.measure("quantity") < 100)
        assert len(small) == 2
        assert ("Apple", "Italy") not in small

    def test_sorted_by_coordinates(self, schema):
        cube = make_cube(schema, list(reversed(ITALY)))
        ordered = cube.sorted_by_coordinates()
        assert ordered.coordinates() == sorted(cube.coordinates())


class TestNaturalJoin:
    def test_inner_join_aligns_by_coordinate(self, schema):
        left = make_cube(schema, ITALY)
        right = make_cube(
            schema,
            [(("Apple", "Italy"), (5.0,)), (("Lemon", "Italy"), (7.0,))],
        )
        joined = left.natural_join(right)
        assert len(joined) == 2
        assert joined.measure_names == ("quantity", "benchmark.quantity")
        assert joined.cell(("Lemon", "Italy"))["benchmark.quantity"] == 7.0

    def test_outer_join_keeps_unmatched_with_nan(self, schema):
        left = make_cube(schema, ITALY)
        right = make_cube(schema, [(("Apple", "Italy"), (5.0,))])
        joined = left.natural_join(right, outer=True)
        assert len(joined) == 3
        assert math.isnan(joined.cell(("Pear", "Italy"))["benchmark.quantity"])

    def test_join_requires_same_group_by(self, schema):
        left = make_cube(schema, ITALY)
        other = Cube.from_cells(
            schema, GroupBySet(schema, ["country"]),
            [(("Italy",), {"quantity": 1.0})],
        )
        with pytest.raises(JoinabilityError):
            left.natural_join(other)

    def test_custom_alias(self, schema):
        left = make_cube(schema, ITALY)
        joined = left.natural_join(make_cube(schema, ITALY), alias="goal")
        assert "goal.quantity" in joined.measure_names


class TestPartialJoin:
    def test_single_match_partial_join(self, schema):
        italy = make_cube(schema, ITALY)
        france = make_cube(schema, FRANCE)
        joined = italy.partial_join(france, ["product"])
        assert len(joined) == 3
        assert joined.cell(("Apple", "Italy"))["benchmark.quantity"] == 150.0
        # target coordinates are preserved (not replaced by the sibling's)
        assert all(coord[1] == "Italy" for coord in joined.coordinates())

    def test_partial_join_drops_unmatched(self, schema):
        italy = make_cube(schema, ITALY)
        france = make_cube(schema, FRANCE[:1])
        joined = italy.partial_join(france, ["product"])
        assert len(joined) == 1

    def test_partial_join_outer(self, schema):
        italy = make_cube(schema, ITALY)
        france = make_cube(schema, FRANCE[:1])
        joined = italy.partial_join(france, ["product"], outer=True)
        assert len(joined) == 3
        assert math.isnan(joined.cell(("Pear", "Italy"))["benchmark.quantity"])

    def test_multi_match_appends_numbered_columns(self, schema):
        italy = make_cube(schema, ITALY[:1])
        both = make_cube(schema, [FRANCE[0], (("Apple", "Spain"), (60.0,))])
        joined = italy.partial_join(both, ["product"])
        # Matches ordered by the benchmark cells' coordinates: France < Spain.
        assert "benchmark.quantity_1" in joined.measure_names
        assert "benchmark.quantity_2" in joined.measure_names
        cell = joined.cell(("Apple", "Italy"))
        assert cell["benchmark.quantity_1"] == 150.0
        assert cell["benchmark.quantity_2"] == 60.0

    def test_join_level_must_be_in_group_by(self, schema):
        italy = make_cube(schema, ITALY)
        with pytest.raises(JoinabilityError):
            italy.partial_join(make_cube(schema, FRANCE), ["type"])

    def test_not_commutative(self, schema):
        italy = make_cube(schema, ITALY[:2])
        france = make_cube(schema, FRANCE)
        a = italy.partial_join(france, ["product"])
        b = france.partial_join(italy, ["product"])
        assert len(a) == 2 and len(b) == 2
        assert a.coordinates() != b.coordinates()


class TestPivot:
    def test_figure2_pivot(self, schema):
        cube = make_cube(schema, ITALY + FRANCE)
        pivoted = cube.pivot(
            "country", "Italy", {"France": {"quantity": "qtyFrance"}}
        )
        assert len(pivoted) == 3
        assert pivoted.measure_names == ("quantity", "qtyFrance")
        assert pivoted.cell(("Apple", "Italy"))["qtyFrance"] == 150.0
        assert pivoted.cell(("Lemon", "Italy"))["qtyFrance"] == 20.0

    def test_require_all_drops_incomplete_rows(self, schema):
        cube = make_cube(schema, ITALY + FRANCE[:1])
        strict = cube.pivot("country", "Italy", {"France": {"quantity": "f"}},
                            require_all=True)
        assert len(strict) == 1
        lax = cube.pivot("country", "Italy", {"France": {"quantity": "f"}},
                         require_all=False)
        assert len(lax) == 3
        assert math.isnan(lax.cell(("Pear", "Italy"))["f"])

    def test_multiple_members(self, schema):
        cube = make_cube(
            schema, ITALY[:1] + FRANCE[:1] + [(("Apple", "Spain"), (60.0,))]
        )
        pivoted = cube.pivot(
            "country",
            "Italy",
            {"France": {"quantity": "fr"}, "Spain": {"quantity": "es"}},
        )
        cell = pivoted.cell(("Apple", "Italy"))
        assert cell["fr"] == 150.0 and cell["es"] == 60.0

    def test_unknown_level_rejected(self, schema):
        cube = make_cube(schema, ITALY)
        with pytest.raises(SchemaError):
            cube.pivot("year", "Italy", {})

    def test_duplicate_column_rejected(self, schema):
        cube = make_cube(schema, ITALY + FRANCE)
        with pytest.raises(SchemaError):
            cube.pivot("country", "Italy", {"France": {"quantity": "quantity"}})


class TestConstantBenchmark:
    def test_same_coordinates_constant_value(self, schema):
        cube = make_cube(schema, ITALY)
        benchmark = constant_benchmark_cube(cube, 1000.0)
        assert len(benchmark) == len(cube)
        assert benchmark.coordinates() == cube.coordinates()
        assert set(benchmark.measure("constant")) == {1000.0}

    def test_joins_cleanly_with_target(self, schema):
        cube = make_cube(schema, ITALY)
        joined = cube.natural_join(constant_benchmark_cube(cube, 50.0))
        assert len(joined) == 3
        assert joined.cell(("Apple", "Italy"))["benchmark.constant"] == 50.0
