"""Unit tests for the materialized-view advisor."""

import pytest

from repro.olap.advisor import advise_views, workload_gets


SIBLING = """
with SSB for s_region = 'ASIA' by category, s_region
assess revenue against s_region = 'AMERICA'
using difference(revenue, benchmark.revenue)
labels {[-inf, 0): behind, [0, inf): ahead}
"""
BY_YEAR = """
with SSB by year, c_region assess revenue against 100000000
using ratio(revenue, 100000000) labels {[0, 1): under, [1, inf): over}
"""


@pytest.fixture()
def workload(ssb_session):
    return [ssb_session.parse(SIBLING), ssb_session.parse(BY_YEAR),
            ssb_session.parse(SIBLING)]


class TestWorkloadGets:
    def test_collects_gets_from_best_plans(self, ssb_session, workload):
        gets = workload_gets(workload, ssb_session.engine)
        # sibling best plan = POP (1 combined get) ×2 + constant NP (1 get)
        assert len(gets) == 3


class TestAdviseViews:
    def test_recommends_covering_views(self, ssb_session, workload):
        recommendations = advise_views(ssb_session.engine, workload)
        assert recommendations
        top = recommendations[0]
        # the repeated sibling get dominates the saving
        assert set(top.levels) == {"category", "s_region"}
        assert top.queries_covered == 2
        assert top.estimated_saving > 0

    def test_savings_sorted_descending(self, ssb_session, workload):
        recommendations = advise_views(ssb_session.engine, workload)
        savings = [r.estimated_saving for r in recommendations]
        assert savings == sorted(savings, reverse=True)

    def test_low_compression_candidates_dropped(self, ssb_session):
        # date × customer is nearly as large as the fact table: no benefit
        statement = ssb_session.parse(
            """with SSB by date, customer assess revenue against 1
               using ratio(revenue, 1) labels {[0, inf): any}"""
        )
        recommendations = advise_views(
            ssb_session.engine, [statement], min_compression=5.0
        )
        assert all(
            set(r.levels) != {"customer", "date"} for r in recommendations
        )

    def test_recommendation_is_materializable_and_routes(self, ssb_session, workload):
        engine = ssb_session.engine
        recommendations = advise_views(engine, workload)
        top = recommendations[0]
        view = engine.materialize(top.source, top.levels, name="advised")
        try:
            statement = ssb_session.parse(SIBLING)
            sql = ssb_session.pushed_sql(ssb_session.plan(statement, "POP"))[0]
            assert "advised" in sql
            result = ssb_session.assess(SIBLING, plan="POP")
            assert len(result) > 0
        finally:
            engine.drop_view("advised")
