"""Unit tests for harness plumbing: ladder config and claim checkers."""

import pytest

from repro.experiments.report import _check_linear_scaling, _check_plan_ordering
from repro.experiments.runner import DEFAULT_LADDER, ladder_from_env


class TestLadderFromEnv:
    def test_default_ladder(self, monkeypatch):
        monkeypatch.delenv("REPRO_LADDER", raising=False)
        ladder = ladder_from_env()
        assert list(ladder.values()) == list(DEFAULT_LADDER)
        assert list(ladder) == ["SSB1", "SSB10", "SSB100"]

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LADDER", "100,200,300")
        assert ladder_from_env() == {"SSB1": 100, "SSB10": 200, "SSB100": 300}

    def test_short_ladder(self, monkeypatch):
        monkeypatch.setenv("REPRO_LADDER", "5000")
        assert ladder_from_env() == {"SSB1": 5000}

    def test_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_LADDER", " 10 , 20 ")
        assert ladder_from_env() == {"SSB1": 10, "SSB10": 20}


def fig3_data(sibling_pop_time):
    """Synthetic fig3 measurements with a controllable POP time."""
    return {
        "Constant": {"NP": {"A": 1.0, "B": 10.0}},
        "External": {"NP": {"A": 2.0, "B": 20.0}, "JOP": {"A": 1.0, "B": 10.0}},
        "Sibling": {
            "NP": {"A": 2.0, "B": 20.0},
            "JOP": {"A": 1.0, "B": 10.0},
            "POP": {"A": 0.5, "B": sibling_pop_time},
        },
        "Past": {
            "NP": {"A": 2.0, "B": 20.0},
            "JOP": {"A": 1.0, "B": 10.0},
            "POP": {"A": 0.5, "B": 5.0},
        },
    }


LADDER = {"A": 1_000, "B": 10_000}


class TestClaimCheckers:
    def test_ordering_all_pass(self):
        line = _check_plan_ordering(fig3_data(5.0), list(LADDER))
        assert line.count("✓") == 4
        assert "✗" not in line

    def test_ordering_detects_violation(self):
        # POP slower than JOP beyond the 5% noise allowance
        line = _check_plan_ordering(fig3_data(12.0), list(LADDER))
        assert "Sibling: ✗" in line

    def test_ordering_tolerates_noise(self):
        # 10.4 vs JOP's 10.0 is within the 0.95 noise factor
        line = _check_plan_ordering(fig3_data(10.4), list(LADDER))
        assert "Sibling: ✓" in line

    def test_linear_scaling_pass(self):
        line = _check_linear_scaling(fig3_data(5.0), LADDER)
        assert line.count("✓") == 4

    def test_linear_scaling_detects_blowup(self):
        data = fig3_data(5.0)
        data["Past"]["POP"]["B"] = 200.0  # 400x time for 10x rows
        line = _check_linear_scaling(data, LADDER)
        assert "Past: worst rung 40.00x-of-linear ✗" in line

    def test_single_rung_not_checked(self):
        line = _check_linear_scaling(fig3_data(5.0), {"A": 1_000})
        assert "not checked" in line
