"""Batched execution: CSE, fused scans, and the bit-identity property.

The central property mirrors the cache suite's: over random star schemas
and random statement batches, ``AssessSession.execute_many`` is
*bit-identical* to assessing the same statements one by one on an equal
session — including when the result cache serves some of the batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import batch_diagnostics
from repro.api import AssessSession
from repro.batch import plan_fusion, results_identical
from repro.cache.fingerprint import fingerprint_query
from repro.core.groupby import GroupBySet
from repro.core.query import CubeQuery, Predicate

from tests.test_cache import _random_engine


# ----------------------------------------------------------------------
# Random statement batches over the random star engines
# ----------------------------------------------------------------------
LABELS = "labels {(-inf, 0.5): low, [0.5, inf): high}"


def _random_statements(rng, hierarchies, count: int = 8):
    """Random statement texts over the RAND cube (constant + sibling)."""
    texts = []
    for _ in range(count):
        levels = [
            h.level_names()[int(rng.integers(0, len(h.levels)))]
            for h in hierarchies
            if rng.random() < 0.8
        ]
        if not levels:
            levels = [hierarchies[0].level_names()[0]]
        measure = ("m_sum", "m_min", "m_avg", "m_frac")[int(rng.integers(0, 4))]
        predicate = ""
        if rng.random() < 0.5:
            hierarchy = hierarchies[int(rng.integers(0, len(hierarchies)))]
            level = hierarchy.level_names()[
                int(rng.integers(0, len(hierarchy.levels)))
            ]
            members = sorted(hierarchy.members_of(level))
            member = members[int(rng.integers(0, len(members)))]
            predicate = f"for {level} = '{member}' "
        if rng.random() < 0.25 and len(hierarchies) >= 2:
            # sibling benchmark: slice a level of one hierarchy to a member,
            # group by a level of the *other* hierarchy plus the sliced one
            slicing, grouping = hierarchies[0], hierarchies[1]
            level = slicing.level_names()[
                int(rng.integers(0, len(slicing.levels)))
            ]
            members = sorted(slicing.members_of(level))
            other = grouping.level_names()[
                int(rng.integers(0, len(grouping.levels)))
            ]
            if len(members) >= 2:
                ours, theirs = (
                    members[i]
                    for i in rng.choice(len(members), size=2, replace=False)
                )
                texts.append(
                    f"with RAND for {level} = '{ours}' "
                    f"by {other}, {level} "
                    f"assess {measure} against {level} = '{theirs}' "
                    f"using difference({measure}, benchmark.{measure}) "
                    f"{LABELS}"
                )
                continue
        threshold = int(rng.integers(1, 500))
        texts.append(
            f"with RAND {predicate}by {', '.join(levels)} "
            f"assess {measure} against {threshold} "
            f"using ratio({measure}, {threshold}) {LABELS}"
        )
    return texts


@pytest.mark.parametrize("seed", range(5))
def test_execute_many_bit_identical_to_sequential(seed):
    """The property: batch answers == one-by-one answers, bit for bit."""
    engine, hierarchies = _random_engine(seed)
    reference_engine, _ = _random_engine(seed)
    batch_session = AssessSession(engine)
    reference_session = AssessSession(reference_engine)
    rng = np.random.default_rng(500 + seed)
    statements = _random_statements(rng, hierarchies)
    statements.append(statements[0])  # duplicate: served from the batch memo

    # Warm both result caches identically first, so part of the batch is
    # answered by cache hits interleaved with cold fused scans.
    for text in statements[:2]:
        batch_session.assess(text)
        reference_session.assess(text)

    batch = batch_session.execute_many(statements)
    sequential = [reference_session.assess(text) for text in statements]

    assert len(batch) == len(statements)
    for ours, theirs in zip(batch.results, sequential):
        assert results_identical(ours, theirs)
    # the duplicate never re-executes: unique queries < statements
    assert batch.report.statements == len(statements)


@pytest.mark.parametrize("plan", ["best", "auto", "NP"])
def test_execute_many_plan_modes_agree(plan):
    engine, hierarchies = _random_engine(42)
    reference_engine, _ = _random_engine(42)
    session = AssessSession(engine)
    reference = AssessSession(reference_engine)
    rng = np.random.default_rng(4242)
    statements = _random_statements(rng, hierarchies, count=5)
    batch = session.execute_many(statements, plan=plan)
    for ours, text in zip(batch.results, statements):
        assert results_identical(ours, reference.assess(text, plan=plan))


def test_execute_many_empty_batch():
    engine, _ = _random_engine(3)
    session = AssessSession(engine)
    batch = session.execute_many([])
    assert len(batch) == 0
    assert batch.report.statements == 0
    assert batch.report.engine_scans == 0


# ----------------------------------------------------------------------
# Fusion planning: CSE, grouping, predicate subsumption
# ----------------------------------------------------------------------
def _aggregate(engine, schema, levels, predicates=(), measures=("m_sum",)):
    return engine.build_aggregate_query(
        CubeQuery("RAND", GroupBySet(schema, levels), list(predicates), measures)
    )


def test_plan_fusion_groups_compatible_scans():
    engine, hierarchies = _random_engine(7)
    schema = engine.cube("RAND").schema
    h0 = hierarchies[0]
    fine, coarse = h0.level_names()[0], h0.level_names()[-1]
    member = sorted(h0.members_of(coarse))[0]
    same_where = [Predicate.eq(coarse, member)]

    q_fine = _aggregate(engine, schema, [fine], same_where)
    q_coarse = _aggregate(engine, schema, [coarse], same_where)
    groups = plan_fusion([q_fine, q_coarse])
    assert len(groups) == 1
    assert len(groups[0]) == 2
    assert all(member.residual == () for member in groups[0].members)

    # identical fingerprints collapse before grouping (CSE)
    assert len(plan_fusion([q_fine, q_fine])) == 0

    # singleton shapes never form a group
    assert plan_fusion([q_fine]) == []


def test_plan_fusion_subsumption_residual():
    """A strictly wider predicate set joins the group with a residual."""
    engine, hierarchies = _random_engine(8)
    schema = engine.cube("RAND").schema
    h0, h1 = hierarchies
    lvl0, lvl1 = h0.level_names()[-1], h1.level_names()[-1]
    m0 = sorted(h0.members_of(lvl0))[0]
    m1 = sorted(h1.members_of(lvl1))[0]
    base = [Predicate.eq(lvl0, m0)]
    wider = [Predicate.eq(lvl0, m0), Predicate.eq(lvl1, m1)]

    q_base = _aggregate(engine, schema, [h0.level_names()[0]], base)
    q_wider = _aggregate(engine, schema, [h1.level_names()[0]], wider)
    groups = plan_fusion([q_base, q_wider])
    assert len(groups) == 1
    group = groups[0]
    by_fingerprint = {m.fingerprint: m for m in group.members}
    assert by_fingerprint[fingerprint_query(q_base)].residual == ()
    residual = by_fingerprint[fingerprint_query(q_wider)].residual
    assert len(residual) == 1  # only the extra predicate survives as residual
    # the scan itself is the narrow (base) predicate set
    assert set(group.scan_where) == set(q_base.where)


# ----------------------------------------------------------------------
# Fused execution kernels: derivation vs fallback, bit-identity
# ----------------------------------------------------------------------
def test_execute_fused_matches_direct_execution():
    engine, hierarchies = _random_engine(9)
    schema = engine.cube("RAND").schema
    executor = engine.executor
    h0, h1 = hierarchies
    queries = [
        _aggregate(engine, schema, [h0.level_names()[0]], measures=("m_sum", "m_min")),
        _aggregate(engine, schema, [h0.level_names()[-1]], measures=("m_sum",)),
        _aggregate(engine, schema, [h1.level_names()[0]], measures=("m_avg",)),
        _aggregate(engine, schema, [h0.level_names()[1]], measures=("m_frac",)),
    ]
    fused, derived = executor.execute_fused(
        queries, queries[0].where, [()] * len(queries)
    )
    # integral sum/min derive; avg and fractional sums take the fallback
    assert derived == [True, True, False, False]
    for query, result in zip(queries, fused):
        direct = executor.execute_aggregate(query)
        assert list(result.columns) == list(direct.columns)
        for name in result.columns:
            ours, theirs = result.columns[name], direct.columns[name]
            if ours.dtype == np.float64:
                assert ours.tobytes() == theirs.tobytes(), name
            else:
                assert ours.tolist() == theirs.tolist(), name


def test_batch_scans_fewer_than_statements():
    """The CI smoke property at unit scale: shared scans beat one-per-query."""
    engine, hierarchies = _random_engine(11)
    engine.result_cache.enabled = False
    session = AssessSession(engine)
    h0 = hierarchies[0]
    statements = [
        f"with RAND by {level} assess m_sum against 100 "
        f"using ratio(m_sum, 100) {LABELS}"
        for level in h0.level_names()
    ]
    batch = session.execute_many(statements)
    assert batch.report.engine_scans < len(statements)
    assert batch.report.fused_groups >= 1


# ----------------------------------------------------------------------
# Batch-aware cost model
# ----------------------------------------------------------------------
def test_choose_plan_batch_prices_shared_nodes_once():
    from repro.algebra.cost import choose_plan_batch

    engine, hierarchies = _random_engine(12)
    session = AssessSession(engine)
    text = (
        f"with RAND by {hierarchies[0].level_names()[0]} "
        f"assess m_sum against 100 using ratio(m_sum, 100) {LABELS}"
    )
    statements = [session.parse(text), session.parse(text)]
    plans, costs = choose_plan_batch(statements, engine)
    assert len(plans) == len(costs) == 2
    assert plans[0].name == plans[1].name
    # the second statement sees the first's chosen nodes as warm
    assert min(costs[1].values()) < min(costs[0].values())


# ----------------------------------------------------------------------
# Batch diagnostics (ASSESS3xx)
# ----------------------------------------------------------------------
def test_batch_diagnostics_empty_batch_warns():
    bag = batch_diagnostics([])
    assert bag.codes() == ("ASSESS301",)
    assert not bag.has_errors


def test_batch_diagnostics_duplicates_warn():
    text = "with RAND by h assess m_sum against 1 using ratio(m_sum, 1) " + LABELS
    other = text.replace("against 1", "against 2")
    bag = batch_diagnostics([text, other, "  " + text.replace("  ", " ")])
    assert bag.codes() == ("ASSESS302",)
    assert not bag.has_errors
    assert "statement 3 duplicates statement 1" in bag.diagnostics[0].message


def test_batch_diagnostics_clean_batch():
    assert batch_diagnostics(["with A ...", "with B ..."]).codes() == ()


# ----------------------------------------------------------------------
# Reporting surface
# ----------------------------------------------------------------------
def test_sharing_report_render_and_dict():
    engine, hierarchies = _random_engine(13)
    engine.result_cache.enabled = False
    session = AssessSession(engine)
    level = hierarchies[0].level_names()[0]
    text = (
        f"with RAND by {level} assess m_sum against 100 "
        f"using ratio(m_sum, 100) {LABELS}"
    )
    batch = session.execute_many([text, text])
    report = batch.report
    as_dict = report.to_dict()
    assert as_dict["statements"] == 2
    assert as_dict["unique_queries"] == 1
    assert report.shared_hits >= 1
    rendered = report.render()
    assert "shared (CSE) hits" in rendered and "engine scans" in rendered
    assert len(batch.seconds) == 2 and all(s >= 0 for s in batch.seconds)
