"""Unit tests for partial-statement completion (§8 future work)."""

import pytest

from repro.core import ParseError, RangeLabeling
from repro.suggest import Completion, complete_statement


class TestCompletion:
    def test_missing_labels_completed(self, sales_session):
        completions = complete_statement(
            sales_session,
            """with SALES for type = 'Fresh Fruit', country = 'Italy'
               by product, country
               assess quantity against country = 'France'
               using ratio(quantity, benchmark.quantity)""",
        )
        assert completions
        best = completions[0]
        assert isinstance(best, Completion)
        assert best.score > 0
        assert len(best.result) > 0
        # the given using clause is preserved
        assert best.statement.using.render() == "ratio(quantity, benchmark.quantity)"

    def test_missing_using_and_labels(self, sales_session):
        completions = complete_statement(
            sales_session,
            """with SALES for type = 'Fresh Fruit', country = 'Italy'
               by product, country
               assess quantity against country = 'France'""",
            top_k=5,
        )
        assert len(completions) >= 2
        # ranked descending
        scores = [completion.score for completion in completions]
        assert scores == sorted(scores, reverse=True)
        # every completion carries an executable, labeled result
        for completion in completions:
            assert completion.result.label_counts()
            assert completion.rationale

    def test_constant_benchmark_suggests_kpi_comparisons(self, sales_session):
        completions = complete_statement(
            sales_session,
            "with SALES by month assess storeSales against 50000",
            top_k=6,
        )
        rendered = [c.statement.using.render() for c in completions]
        assert any("ratio(storeSales, 50000)" in r for r in rendered)

    def test_zero_benchmark_uses_raw_or_zscore(self, sales_session):
        completions = complete_statement(
            sales_session, "with SALES by month assess storeSales", top_k=4
        )
        rendered = {c.statement.using.render() for c in completions}
        assert rendered <= {"identity(storeSales)", "zscore(storeSales)"}

    def test_past_benchmark_completion(self, sales_session):
        completions = complete_statement(
            sales_session,
            """with SALES for month = '1997-07', store = 'SmartMart'
               by month, store assess storeSales against past 4""",
        )
        assert completions
        assert completions[0].result.plan_name in ("NP", "JOP", "POP")

    def test_full_statement_passes_through(self, sales_session):
        completions = complete_statement(
            sales_session,
            """with SALES by month assess storeSales against 50000
               using ratio(storeSales, 50000)
               labels {[0, 1): under, [1, inf): over}""",
        )
        assert len(completions) == 1
        assert isinstance(completions[0].statement.labels, RangeLabeling)

    def test_broken_statement_still_raises(self, sales_session):
        with pytest.raises(ParseError):
            complete_statement(sales_session, "with SALES assess nothing")

    def test_degenerate_labelings_rank_low(self, sales_session):
        """A labeling that puts everything in one class must not win."""
        completions = complete_statement(
            sales_session,
            """with SALES for type = 'Fresh Fruit', country = 'Italy'
               by product, country
               assess quantity against country = 'France'
               using ratio(quantity, benchmark.quantity)""",
            top_k=10,
        )
        best = completions[0]
        counts = best.result.label_counts()
        assert len([c for c in counts.values() if c > 0]) >= 2
