"""Concurrency stress: one session, many threads, consistent answers.

Worker threads hammer a single :class:`AssessSession` with a small
statement mix (so cache hits, misses, and derivations all occur) while
the morsel-parallel executor is active and an antagonist thread keeps
replacing a dimension table in the catalog — firing the catalog-listener
invalidation path against in-flight fetches.  Afterwards:

* every result produced by every thread is bit-identical to the serial
  ground truth (a torn cache entry or a racy merge would break this);
* all threads finished (join with timeout — a deadlock in the cache
  RLock or the metrics lock would hang them);
* the cache's occupancy bookkeeping is internally consistent and the
  hit/miss/derivation counters sum to exactly the number of fetches.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import AssessSession
from repro.batch import results_identical
from repro.datagen import sales_engine
from repro.engine.table import Table

N_ROWS = 4000
N_WORKERS = 8
ITERATIONS = 12
JOIN_TIMEOUT = 120.0

LABELS = "labels {[-inf, 0.9): low, [0.9, 1.1]: mid, (1.1, inf): high}"

# quantity is integral, so these go morsel-parallel; the sibling
# statement also exercises the pivot path and member roll-ups.
STATEMENTS = (
    f"with SALES by month assess quantity against 300 "
    f"using ratio(quantity, 300) {LABELS}",
    f"with SALES by year, product assess quantity against 40 "
    f"using ratio(quantity, 40) {LABELS}",
    f"with SALES for country = 'Italy' by month, country assess quantity "
    f"against 100 using ratio(quantity, 100) {LABELS}",
    f"with SALES by product, country assess quantity against 25 "
    f"using ratio(quantity, 25) {LABELS}",
    f"with SALES for country = 'Italy' by product, country "
    f"assess quantity against country = 'France' "
    f"using ratio(quantity, benchmark.quantity) {LABELS}",
)


def _session() -> AssessSession:
    session = AssessSession(sales_engine(n_rows=N_ROWS, seed=11))
    session.set_parallelism(2, morsel_rows=512, min_rows=512)
    return session


@pytest.fixture(scope="module")
def ground_truth():
    serial = AssessSession(sales_engine(n_rows=N_ROWS, seed=11))
    serial.engine.result_cache.enabled = False
    return {text: serial.assess(text) for text in STATEMENTS}


def test_many_threads_one_session(ground_truth):
    session = _session()
    engine = session.engine
    catalog = engine.catalog
    errors = []
    mismatches = []
    stop = threading.Event()

    def worker(worker_id: int) -> None:
        try:
            for iteration in range(ITERATIONS):
                text = STATEMENTS[(worker_id + iteration) % len(STATEMENTS)]
                result = session.assess(text)
                if not results_identical(result, ground_truth[text]):
                    mismatches.append((worker_id, iteration, text))
        except Exception as error:  # noqa: BLE001 - collected and asserted
            errors.append((worker_id, repr(error)))

    def antagonist() -> None:
        """Replace a dimension table with an identical copy, repeatedly.

        Each replace fires the catalog listeners, invalidating every
        cached result that read the table — racing in-flight fetches.
        The copy is value-identical, so correct answers never change.
        """
        try:
            dim_name = engine.cube("SALES").star.dimensions[0].table
            while not stop.is_set():
                original = catalog.table(dim_name)
                catalog.register(
                    Table(dim_name, dict(original.columns)), replace=True
                )
                stop.wait(0.005)
        except Exception as error:  # noqa: BLE001
            errors.append(("antagonist", repr(error)))

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"worker-{i}")
        for i in range(N_WORKERS)
    ]
    chaos = threading.Thread(target=antagonist, name="antagonist")
    for thread in threads:
        thread.start()
    chaos.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    stop.set()
    chaos.join(timeout=JOIN_TIMEOUT)

    hung = [t.name for t in threads + [chaos] if t.is_alive()]
    assert not hung, f"deadlocked threads: {hung}"
    assert not errors, errors
    assert not mismatches, f"non-identical results: {mismatches[:5]}"

    # No torn cache entries: occupancy bookkeeping must match the
    # entries actually present.
    cache = engine.result_cache
    with cache._lock:
        assert cache._cached_cells == sum(
            entry.cells for entry in cache._entries.values()
        )
        assert len(cache._entries) == cache.stats()["entries"]

    stats = cache.stats()
    assert stats["invalidations"] > 0, "the antagonist never invalidated"
    assert stats["hits"] > 0, "the workload never hit the cache"
    assert engine.metrics.get("engine.parallel.queries") > 0

    # After the dust settles the session must still answer correctly.
    for text, expected in ground_truth.items():
        assert results_identical(session.assess(text), expected), text


def test_counters_sum_to_fetch_count():
    """hits + misses + derivations == fetches, even under contention."""
    session = _session()
    cache = session.engine.result_cache
    fetches = []
    original_fetch = type(cache).fetch

    def counting_fetch(self, query):
        fetches.append(1)
        return original_fetch(self, query)

    type(cache).fetch = counting_fetch
    try:
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for iteration in range(ITERATIONS):
                    session.assess(
                        STATEMENTS[(worker_id * 3 + iteration) % len(STATEMENTS)]
                    )
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=JOIN_TIMEOUT)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
    finally:
        type(cache).fetch = original_fetch

    stats = cache.stats()
    total = stats["hits"] + stats["misses"] + stats["derivations"]
    assert total == len(fetches), (total, len(fetches))


def test_metrics_registry_increments_atomically():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    per_thread, n_threads = 5000, 8

    def bump():
        for _ in range(per_thread):
            registry.inc("stress.counter")

    threads = [threading.Thread(target=bump) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    assert registry.get("stress.counter") == per_thread * n_threads
