"""Unit tests for the hand-written-code generator (Table 1 substrate)."""

import ast

import pytest

from repro.codegen import formulation_effort, generate_equivalent_code

STATEMENTS = {
    "constant": """
        with SALES by month assess storeSales against 1000
        using minMaxNorm(difference(storeSales, 1000))
        labels {[0, 0.2]: low, (0.2, 0.8): mid, [0.8, 1]: high}
    """,
    "sibling": """
        with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
        assess quantity against country = 'France'
        using percOfTotal(difference(quantity, benchmark.quantity))
        labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
    """,
    "past": """
        with SALES for month = '1997-07', store = 'SmartMart' by month, store
        assess storeSales against past 4
        using ratio(storeSales, benchmark.storeSales)
        labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
    """,
    "quartiles": "with SALES by month assess storeSales labels quartiles",
}


class TestGeneratedCode:
    @pytest.mark.parametrize("name", sorted(STATEMENTS))
    def test_python_is_syntactically_valid(self, sales_session, name):
        statement = sales_session.parse(STATEMENTS[name])
        _, python_text = generate_equivalent_code(statement, sales_session.engine)
        ast.parse(python_text)  # must not raise

    @pytest.mark.parametrize("name", sorted(STATEMENTS))
    def test_sql_contains_get_per_cube(self, sales_session, name):
        statement = sales_session.parse(STATEMENTS[name])
        sql_text, _ = generate_equivalent_code(statement, sales_session.engine)
        expected_queries = 1 if name in ("constant", "quartiles") else 2
        assert sql_text.count("-- query") == expected_queries
        assert sql_text.count("group by") == expected_queries

    def test_past_python_includes_regression(self, sales_session):
        statement = sales_session.parse(STATEMENTS["past"])
        _, python_text = generate_equivalent_code(statement, sales_session.engine)
        assert "def predict_next(" in python_text
        assert "ordinary least squares" in python_text

    def test_sibling_python_includes_used_functions(self, sales_session):
        statement = sales_session.parse(STATEMENTS["sibling"])
        _, python_text = generate_equivalent_code(statement, sales_session.engine)
        assert "def perc_of_total(" in python_text
        assert "def difference(" in python_text
        assert "def label_by_ranges(" in python_text

    def test_quartiles_python_uses_distribution_labeler(self, sales_session):
        statement = sales_session.parse(STATEMENTS["quartiles"])
        _, python_text = generate_equivalent_code(statement, sales_session.engine)
        assert "def label_by_quantiles(" in python_text


class TestFormulationEffort:
    @pytest.mark.parametrize("name", sorted(STATEMENTS))
    def test_effort_keys_and_consistency(self, sales_session, name):
        statement = sales_session.parse(STATEMENTS[name])
        effort = formulation_effort(statement, sales_session.engine)
        assert set(effort) == {"sql", "python", "total", "assess"}
        assert effort["total"] == effort["sql"] + effort["python"]
        assert effort["assess"] > 0

    @pytest.mark.parametrize("name", sorted(STATEMENTS))
    def test_assess_is_much_shorter(self, sales_session, name):
        """The paper's headline: assess is >5x shorter than SQL+Python."""
        statement = sales_session.parse(STATEMENTS[name])
        effort = formulation_effort(statement, sales_session.engine)
        assert effort["total"] > 5 * effort["assess"]

    def test_original_text_used_when_given(self, sales_session):
        text = STATEMENTS["quartiles"]
        statement = sales_session.parse(text)
        effort = formulation_effort(statement, sales_session.engine, text)
        assert effort["assess"] == len(" ".join(text.split()))
