"""Unit tests for assess statement validation (Sections 3.1 and 4.1)."""

import pytest

from repro.core import (
    AncestorBenchmark,
    AssessStatement,
    ConstantBenchmark,
    ExternalBenchmark,
    GroupBySet,
    NamedLabeling,
    PastBenchmark,
    Predicate,
    SiblingBenchmark,
    ValidationError,
    ZeroBenchmark,
)
from repro.datagen import sales_schema


@pytest.fixture(scope="module")
def schema():
    return sales_schema()


def make(schema, **overrides):
    defaults = dict(
        source="SALES",
        schema=schema,
        group_by=GroupBySet(schema, ["product", "country"]),
        measure="quantity",
        predicates=(Predicate.eq("country", "Italy"),),
        benchmark=None,
        using=None,
        labels=NamedLabeling("quartiles"),
        star=False,
    )
    defaults.update(overrides)
    return AssessStatement(**defaults)


class TestBasics:
    def test_labels_mandatory(self, schema):
        with pytest.raises(ValidationError):
            make(schema, labels=None)

    def test_unknown_measure_rejected(self, schema):
        from repro.core import SchemaError

        with pytest.raises(SchemaError):
            make(schema, measure="profit")

    def test_missing_against_means_zero_benchmark(self, schema):
        statement = make(schema)
        assert isinstance(statement.benchmark, ZeroBenchmark)
        assert statement.benchmark_measure == "constant"

    def test_default_using_compares_to_benchmark(self, schema):
        statement = make(schema)
        assert statement.using.render() == "difference(quantity, benchmark.constant)"

    def test_benchmark_measure_per_type(self, schema):
        assert make(schema, benchmark=ConstantBenchmark(10)).benchmark_measure == "constant"
        assert (
            make(schema, benchmark=SiblingBenchmark("country", "France")).benchmark_measure
            == "quantity"
        )
        external = make(schema, benchmark=ExternalBenchmark("GOALS", "target"))
        assert external.benchmark_measure == "target"


class TestSiblingValidation:
    def test_valid_sibling(self, schema):
        statement = make(schema, benchmark=SiblingBenchmark("country", "France"))
        assert statement.benchmark.sibling == "France"

    def test_sibling_level_must_be_in_group_by(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                group_by=GroupBySet(schema, ["product"]),
                benchmark=SiblingBenchmark("country", "France"),
            )

    def test_sibling_requires_slice_predicate(self, schema):
        with pytest.raises(ValidationError):
            make(schema, predicates=(), benchmark=SiblingBenchmark("country", "France"))

    def test_sibling_slice_must_be_single_member(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                predicates=(Predicate.isin("country", ["Italy", "Spain"]),),
                benchmark=SiblingBenchmark("country", "France"),
            )

    def test_sibling_must_differ_from_target(self, schema):
        with pytest.raises(ValidationError):
            make(schema, benchmark=SiblingBenchmark("country", "Italy"))


class TestPastValidation:
    def test_valid_past(self, schema):
        statement = make(
            schema,
            group_by=GroupBySet(schema, ["month", "store"]),
            predicates=(
                Predicate.eq("month", "1997-07"),
                Predicate.eq("store", "SmartMart"),
            ),
            benchmark=PastBenchmark(4),
        )
        assert statement.temporal_level == "month"

    def test_k_must_be_positive(self, schema):
        with pytest.raises(ValidationError):
            PastBenchmark(0)

    def test_past_requires_temporal_level_in_group_by(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                group_by=GroupBySet(schema, ["product", "country"]),
                benchmark=PastBenchmark(3),
            )

    def test_past_requires_temporal_slice(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                group_by=GroupBySet(schema, ["month", "store"]),
                predicates=(Predicate.eq("store", "SmartMart"),),
                benchmark=PastBenchmark(3),
            )


class TestAncestorValidation:
    def test_valid_ancestor(self, schema):
        statement = make(
            schema,
            group_by=GroupBySet(schema, ["product"]),
            predicates=(),
            benchmark=AncestorBenchmark("product", "type"),
        )
        assert statement.benchmark.ancestor_level == "type"

    def test_level_must_be_in_group_by(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                group_by=GroupBySet(schema, ["month"]),
                predicates=(),
                benchmark=AncestorBenchmark("product", "type"),
            )

    def test_ancestor_must_be_coarser(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                group_by=GroupBySet(schema, ["type"]),
                predicates=(),
                benchmark=AncestorBenchmark("type", "product"),
            )

    def test_ancestor_must_share_hierarchy(self, schema):
        with pytest.raises(ValidationError):
            make(
                schema,
                group_by=GroupBySet(schema, ["product"]),
                predicates=(),
                benchmark=AncestorBenchmark("product", "country"),
            )


class TestPercOfTotalDesugaring:
    def test_one_arg_gains_measure_denominator(self, schema):
        from repro.core import FunctionCall, MeasureRef

        statement = make(
            schema,
            benchmark=SiblingBenchmark("country", "France"),
            using=FunctionCall(
                "percOfTotal",
                [
                    FunctionCall(
                        "difference",
                        [MeasureRef("quantity"), MeasureRef("quantity", "benchmark")],
                    )
                ],
            ),
        )
        assert statement.using.render() == (
            "percOfTotal(difference(quantity, benchmark.quantity), quantity)"
        )

    def test_two_arg_form_untouched(self, schema):
        from repro.core import FunctionCall, MeasureRef

        statement = make(
            schema,
            using=FunctionCall(
                "percOfTotal", [MeasureRef("quantity"), MeasureRef("storeSales")]
            ),
        )
        assert statement.using.render() == "percOfTotal(quantity, storeSales)"


class TestRender:
    def test_full_render(self, schema):
        statement = make(
            schema,
            predicates=(
                Predicate.eq("type", "Fresh Fruit"),
                Predicate.eq("country", "Italy"),
            ),
            benchmark=SiblingBenchmark("country", "France"),
        )
        text = statement.render()
        assert "with SALES" in text
        assert "for type = 'Fresh Fruit', country = 'Italy'" in text
        assert "by product, country" in text
        assert "assess quantity against country = 'France'" in text
        assert "labels quartiles" in text

    def test_star_render(self, schema):
        statement = make(schema, star=True)
        assert "assess* quantity" in statement.render()
