"""Unit tests for result highlights (IAM-style interesting subsets)."""

import numpy as np
import pytest

from repro.core import Cube, CubeSchema, GroupBySet, Hierarchy, Level, Measure
from repro.core.result import AssessResult


def make_result(comparisons, labels):
    schema = CubeSchema("S", [Hierarchy("H", [Level("a")])], [Measure("m")])
    gb = GroupBySet(schema, ["a"])
    n = len(comparisons)
    label_column = np.empty(n, dtype=object)
    label_column[:] = labels
    cube = Cube(
        schema, gb,
        {"a": [f"m{i}" for i in range(n)]},
        {
            "m": np.ones(n),
            "b": np.ones(n),
            "comparison": np.asarray(comparisons, dtype=np.float64),
            "label": label_column,
        },
    )
    return AssessResult(cube, "m", "b", "comparison", "label")


class TestHighlights:
    def test_extreme_cell_ranks_first(self):
        comparisons = [1.0, 1.1, 0.9, 1.05, 10.0]
        labels = ["ok", "ok", "ok", "ok", "ok"]
        result = make_result(comparisons, labels)
        top = result.highlights(k=1)
        assert top[0].coordinate == ("m4",)

    def test_minority_label_boosts_score(self):
        comparisons = [1.0, 1.0, 1.0, 1.0]
        labels = ["common", "common", "common", "rare"]
        result = make_result(comparisons, labels)
        top = result.highlights(k=1)
        assert top[0].label == "rare"

    def test_unlabeled_cells_excluded(self):
        comparisons = [100.0, 1.0]
        labels = [None, "ok"]
        result = make_result(comparisons, labels)
        highlights = result.highlights(k=5)
        assert all(cell.label is not None for cell in highlights)
        assert len(highlights) == 1

    def test_k_caps_output(self):
        result = make_result([1.0, 2.0, 3.0], ["a", "b", "c"])
        assert len(result.highlights(k=2)) == 2

    def test_empty_result(self):
        result = make_result([], [])
        assert result.highlights() == []

    def test_end_to_end_on_sales(self, sales_session):
        result = sales_session.assess(
            "with SALES by month assess storeSales labels quartiles"
        )
        highlights = result.highlights(k=3)
        assert len(highlights) == 3
        # highlights come from the tails of the distribution
        comparisons = sorted(abs(cell.comparison) for cell in result)
        assert abs(highlights[0].comparison) >= comparisons[len(comparisons) // 2]
