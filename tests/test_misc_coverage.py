"""Focused tests for smaller code paths: codegen internals, result
formatting, suggest scoring, and pushed-SQL rendering variants."""

import ast
import math

import numpy as np
import pytest

from repro.codegen import generate_equivalent_code
from repro.core import (
    BinaryOp,
    Cube,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Level,
    Literal,
    Measure,
    MeasureRef,
)
from repro.core.result import AssessResult


class TestCodegenVariants:
    def test_external_statement_codegen(self, ssb_session):
        statement = ssb_session.parse(
            """with SSB by month, category
               assess revenue against BUDGET.expected_revenue
               using normalizedDifference(revenue, benchmark.expected_revenue)
               labels {[-inf, 0): under, [0, inf): over}"""
        )
        sql, python = generate_equivalent_code(statement, ssb_session.engine)
        ast.parse(python)
        assert sql.count("-- query") == 2
        assert "benchmark cube" in sql
        assert "def normalized_difference(" in python

    def test_arithmetic_using_codegen(self, sales_session):
        statement = sales_session.parse(
            """with SALES by month assess storeSales
               using (storeSales - storeCost) / storeSales labels quartiles"""
        )
        _, python = generate_equivalent_code(statement, sales_session.engine)
        ast.parse(python)
        assert "frame['storeSales'] - frame['storeCost']" in python.replace(
            '"', "'"
        )

    def test_topk_vocabulary_in_codegen(self, sales_session):
        statement = sales_session.parse(
            "with SALES by month assess storeSales labels top4"
        )
        _, python = generate_equivalent_code(statement, sales_session.engine)
        assert "top-4" in python and "top-1" in python

    def test_infinite_bounds_render_as_one_sided_conditions(self, sales_session):
        statement = sales_session.parse(
            """with SALES by month assess storeSales
               labels {[-inf, 0): neg, [0, inf): pos}"""
        )
        _, python = generate_equivalent_code(statement, sales_session.engine)
        ast.parse(python)
        assert "inf" not in python.split("label_by_ranges")[1].split("return")[0]


class TestResultFormatting:
    def make_result(self):
        schema = CubeSchema("S", [Hierarchy("H", [Level("a")])], [Measure("m")])
        gb = GroupBySet(schema, ["a"])
        cube = Cube(
            schema, gb,
            {"a": ["x", "y"]},
            {
                "m": [1.0, 2.5],
                "b": [1.0, float("nan")],
                "comparison": [1.0, float("nan")],
                "label": np.array(["good", None], dtype=object),
            },
        )
        return AssessResult(cube, "m", "b", "comparison", "label", "NP",
                            {"get_target": 0.01, "label": 0.002})

    def test_label_counts_includes_none(self):
        result = self.make_result()
        counts = result.label_counts()
        assert counts["good"] == 1
        assert counts[None] == 1

    def test_total_time(self):
        assert self.make_result().total_time() == pytest.approx(0.012)

    def test_table_formats_integers_and_nans(self):
        text = self.make_result().to_table()
        assert "2.5" in text
        assert "null" in text

    def test_iteration_yields_floats(self):
        cells = list(self.make_result())
        assert isinstance(cells[0].value, float)
        assert math.isnan(cells[1].comparison)


class TestSuggestScoring:
    def test_balanced_beats_degenerate(self):
        from repro.suggest import _interest_score

        balanced = self.result_with_labels(["a", "b", "c"] * 10)
        lopsided = self.result_with_labels(["a"] * 29 + ["b"])
        assert _interest_score(balanced) > _interest_score(lopsided)

    def test_nulls_penalised(self):
        from repro.suggest import _interest_score

        clean = self.result_with_labels(["a", "b"] * 10)
        nully = self.result_with_labels(["a", "b"] * 5 + [None] * 10)
        assert _interest_score(clean) > _interest_score(nully)

    def test_empty_result_scores_zero(self):
        from repro.suggest import _interest_score

        assert _interest_score(self.result_with_labels([])) == 0.0

    @staticmethod
    def result_with_labels(labels):
        schema = CubeSchema("S", [Hierarchy("H", [Level("a")])], [Measure("m")])
        gb = GroupBySet(schema, ["a"])
        n = len(labels)
        label_column = np.empty(n, dtype=object)
        label_column[:] = labels
        cube = Cube(
            schema, gb,
            {"a": [f"m{i}" for i in range(n)]},
            {
                "m": np.ones(n),
                "b": np.ones(n),
                "comparison": np.linspace(0, 1, n) if n else np.zeros(0),
                "label": label_column,
            },
        )
        return AssessResult(cube, "m", "b", "comparison", "label")


class TestPushedSqlVariants:
    def test_past_jop_sql_renders(self, sales_session):
        statement = sales_session.parse(
            """with SALES for month = '1997-07', store = 'SmartMart'
               by month, store assess storeSales against past 4
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 1): worse, [1, inf): better}"""
        )
        sqls = sales_session.pushed_sql(sales_session.plan(statement, "JOP"))
        assert len(sqls) == 1
        assert "t1.store = t2.store" in sqls[0]

    def test_external_jop_sql_mentions_both_facts(self, ssb_session):
        statement = ssb_session.parse(
            """with SSB by month, category
               assess revenue against BUDGET.expected_revenue
               labels quartiles"""
        )
        sql = ssb_session.pushed_sql(ssb_session.plan(statement, "JOP"))[0]
        assert "ssb_lineorder" in sql
        assert "ssb_budget" in sql

    def test_ancestor_plan_pushes_two_gets(self, sales_session):
        statement = sales_session.parse(
            """with SALES by product assess quantity against ancestor type
               using ratio(quantity, benchmark.quantity) labels median"""
        )
        sqls = sales_session.pushed_sql(sales_session.plan(statement, "NP"))
        assert len(sqls) == 2
        assert any("p_type" in sql for sql in sqls)


class TestCsvExport:
    def test_round_trip_via_csv_module(self, sales_session, tmp_path):
        import csv as csv_module

        result = sales_session.assess(
            "with SALES by year assess storeSales labels median"
        )
        path = str(tmp_path / "out.csv")
        assert result.to_csv(path) == path
        with open(path) as handle:
            rows = list(csv_module.reader(handle))
        assert rows[0] == ["year", "storeSales", "benchmark.constant",
                           "comparison", "label"]
        assert len(rows) == 1 + len(result)

    def test_nulls_export_empty(self, sales_session, tmp_path):
        import csv as csv_module

        result = sales_session.assess(
            """with SALES for product = 'milk', country = 'Italy'
               by product, country
               assess* quantity against country = 'Atlantis'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        path = str(tmp_path / "nulls.csv")
        result.to_csv(path)
        with open(path) as handle:
            rows = list(csv_module.reader(handle))
        assert rows[1][-1] == ""  # null label
        assert rows[1][-2] == ""  # NaN comparison


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--cube", "sales", "--rows", "2000",
             "with SALES by year assess storeSales labels median"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "label" in completed.stdout
