"""Statement-pass tests: every ASSESS0xx/1xx code has a positive test
(asserting the code *and* its source span) and negative coverage via clean
statements that must produce zero diagnostics."""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisContext, analyze_text
from repro.core.diagnostics import Severity
from repro.parser.parser import parse_statement


@pytest.fixture(scope="module")
def ctx(sales, ssb):
    """Strict context resolving both demo engines (SALES, SSB + BUDGET)."""
    return AnalysisContext.for_engines([sales, ssb])


@pytest.fixture(scope="module")
def schema_only_ctx(sales):
    """Schemas but no engine: level properties cannot be checked."""
    return AnalysisContext(schemas={"SALES": sales.cube("SALES").schema})


def diags(text, ctx, code):
    _, bag = analyze_text(text, ctx)
    matches = [d for d in bag if d.code == code]
    assert matches, f"expected {code}, got {bag.codes()}"
    return matches


def diag(text, ctx, code):
    return diags(text, ctx, code)[0]


def spanned_text(text, diagnostic):
    assert diagnostic.span is not None, f"{diagnostic.code} carries no span"
    return text[diagnostic.span.start:diagnostic.span.end]


COMPLETE_LABELS = "labels {(-inf, 0.9): bad, [0.9, 1.1]: ok, (1.1, inf): good}"

CLEAN_SIBLING = (
    "with SALES for country = 'Italy' by product, country\n"
    "assess quantity against country = 'France'\n"
    "using ratio(quantity, benchmark.quantity)\n" + COMPLETE_LABELS
)

CLEAN_ZERO = (
    "with SALES by month assess quantity "
    "labels {(-inf, 0]: low, (0, inf): high}"
)

CLEAN_EXTERNAL = (
    "with SSB by month, category assess revenue "
    "against BUDGET.expected_revenue "
    "using difference(revenue, benchmark.expected_revenue) "
    + COMPLETE_LABELS
)


# ----------------------------------------------------------------------
# Negative coverage: clean statements produce zero diagnostics.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text", [CLEAN_SIBLING, CLEAN_ZERO, CLEAN_EXTERNAL], ids=["sibling", "zero", "external"]
)
def test_clean_statement_has_no_diagnostics(text, ctx):
    statement, bag = analyze_text(text, ctx)
    assert bag.codes() == ()
    assert statement is not None  # binding succeeded too


# ----------------------------------------------------------------------
# ASSESS001 / ASSESS002 — parse and bind residuals
# ----------------------------------------------------------------------
def test_syntax_error_is_assess001(ctx):
    statement, bag = analyze_text("with with with", ctx)
    assert statement is None
    assert bag.codes() == ("ASSESS001",)
    assert bag.has_errors


def test_bind_residual_is_assess002(monkeypatch, schema_only_ctx):
    # The passes subsume every binder check, so ASSESS002 is the safety net
    # for binder failures the passes missed; drive it with a stubbed binder.
    import repro.analysis.statement_passes as statement_passes
    from repro.core.errors import ValidationError

    def failing_binder(raw, schemas):
        raise ValidationError("synthetic residual").at(5, raw.text)

    monkeypatch.setattr(statement_passes, "bind_statement", failing_binder)
    statement, bag = analyze_text(CLEAN_ZERO, schema_only_ctx)
    assert statement is None
    assert bag.codes() == ("ASSESS002",)
    d = bag.errors()[0]
    assert "synthetic residual" in d.message
    assert d.span is not None and d.span.start == 5


# ----------------------------------------------------------------------
# ASSESS101 — unknown cube
# ----------------------------------------------------------------------
def test_unknown_cube_strict(ctx):
    text = "with NOPE by month assess quantity labels quartiles"
    d = diag(text, ctx, "ASSESS101")
    assert d.severity is Severity.ERROR
    assert spanned_text(text, d) == "NOPE"


def test_unknown_cube_permissive_is_info(sales):
    permissive = AnalysisContext(
        schemas={"SALES": sales.cube("SALES").schema}, strict=False
    )
    text = "with NOPE by month assess quantity labels quartiles"
    d = diag(text, permissive, "ASSESS101")
    assert d.severity is Severity.INFO
    _, bag = analyze_text(text, permissive)
    assert not bag.has_errors


def test_no_resolver_skips_cube_checks():
    _, bag = analyze_text(
        "with NOPE by month assess quantity labels quartiles",
        AnalysisContext(schemas=None),
    )
    assert "ASSESS101" not in bag.codes()


# ----------------------------------------------------------------------
# ASSESS102 / ASSESS103 — by clause
# ----------------------------------------------------------------------
def test_unknown_by_level(ctx):
    text = "with SALES by mnth assess quantity labels quartiles"
    d = diag(text, ctx, "ASSESS102")
    assert spanned_text(text, d) == "mnth"


def test_two_levels_of_same_hierarchy(ctx):
    text = "with SALES by product, type assess quantity labels quartiles"
    d = diag(text, ctx, "ASSESS103")
    assert spanned_text(text, d) == "type"
    assert "Product" in d.message


# ----------------------------------------------------------------------
# ASSESS104 — unknown measure
# ----------------------------------------------------------------------
def test_unknown_measure(ctx):
    text = "with SALES by month assess bogus labels quartiles"
    d = diag(text, ctx, "ASSESS104")
    assert spanned_text(text, d) == "bogus"
    assert "quantity" in d.hint


# ----------------------------------------------------------------------
# ASSESS105 / ASSESS106 / ASSESS107 — for clause
# ----------------------------------------------------------------------
def test_predicate_on_unknown_level(ctx):
    text = "with SALES for nolevel = 'x' by month assess quantity labels quartiles"
    d = diag(text, ctx, "ASSESS105")
    assert spanned_text(text, d) == "nolevel"


def test_duplicate_predicate_warns(ctx):
    text = (
        "with SALES for country = 'Italy', country = 'Italy' "
        "by product assess quantity labels quartiles"
    )
    d = diag(text, ctx, "ASSESS106")
    assert d.severity is Severity.WARNING
    assert spanned_text(text, d).startswith("country")


def test_contradictory_predicates(ctx):
    text = (
        "with SALES for country = 'Italy', country = 'France' "
        "by product assess quantity labels quartiles"
    )
    d = diag(text, ctx, "ASSESS107")
    assert d.severity is Severity.ERROR
    assert "'Italy'" in d.message and "'France'" in d.message


def test_overlapping_in_predicates_are_compatible(ctx):
    text = (
        "with SALES for country in ('Italy', 'France'), country = 'Italy' "
        "by product assess quantity labels quartiles"
    )
    _, bag = analyze_text(text, ctx)
    assert "ASSESS107" not in bag.codes()


# ----------------------------------------------------------------------
# ASSESS110 / ASSESS111 / ASSESS112 — external benchmarks
# ----------------------------------------------------------------------
def test_unknown_external_cube(ctx):
    text = (
        "with SSB by month assess revenue against NOCUBE.expected "
        "labels quartiles"
    )
    d = diag(text, ctx, "ASSESS110")
    assert "NOCUBE" in spanned_text(text, d)


def test_external_cube_not_joinable(ctx):
    # The demo BUDGET cube lives at (month, category); 'year' is missing.
    text = (
        "with SSB by year assess revenue against BUDGET.expected_revenue "
        "using difference(revenue, benchmark.expected_revenue) labels quartiles"
    )
    d = diag(text, ctx, "ASSESS111")
    assert "'year'" in d.message and "Definition 3.1" in d.message
    assert "BUDGET" in spanned_text(text, d)


def test_external_measure_unknown(ctx):
    text = (
        "with SSB by month, category assess revenue against BUDGET.bogus "
        "using difference(revenue, benchmark.bogus) labels quartiles"
    )
    d = diag(text, ctx, "ASSESS112")
    assert "expected_revenue" in d.hint
    _, bag = analyze_text(text, ctx)
    assert "ASSESS111" not in bag.codes()  # joinable, just the wrong measure


# ----------------------------------------------------------------------
# ASSESS113 — sibling benchmarks
# ----------------------------------------------------------------------
def test_sibling_level_not_in_by_clause(ctx):
    text = (
        "with SALES for country = 'Italy' by product "
        "assess quantity against country = 'France' labels quartiles"
    )
    d = diag(text, ctx, "ASSESS113")
    assert "country" in spanned_text(text, d)


def test_sibling_level_not_sliced(ctx):
    text = (
        "with SALES by product, country "
        "assess quantity against country = 'France' labels quartiles"
    )
    d = diag(text, ctx, "ASSESS113")
    assert "single member" in d.message


def test_sibling_member_equals_target(ctx):
    text = (
        "with SALES for country = 'France' by product, country "
        "assess quantity against country = 'France' labels quartiles"
    )
    d = diag(text, ctx, "ASSESS113")
    assert "must differ" in d.message


# ----------------------------------------------------------------------
# ASSESS114 — past benchmarks
# ----------------------------------------------------------------------
def test_past_without_temporal_slice(ctx):
    text = (
        "with SSB for c_region = 'ASIA' by year, c_region "
        "assess revenue against past 2 labels quartiles"
    )
    d = diag(text, ctx, "ASSESS114")
    assert "slice temporal level 'year'" in d.message


def test_past_needs_temporal_level_in_by(ctx):
    text = (
        "with SSB for c_region = 'ASIA' by c_region "
        "assess revenue against past 2 labels quartiles"
    )
    d = diag(text, ctx, "ASSESS114")
    assert "temporal hierarchy" in d.message


def test_past_k_must_be_positive(ctx):
    text = (
        "with SSB for year = '1997' by year "
        "assess revenue against past 0 labels quartiles"
    )
    d = diag(text, ctx, "ASSESS114")
    assert "k >= 1" in d.message


def test_valid_past_statement_is_clean(ctx):
    text = (
        "with SSB for year = '1997' by year, c_region "
        "assess revenue against past 2 "
        "using difference(revenue, benchmark.revenue) labels quartiles"
    )
    _, bag = analyze_text(text, ctx)
    assert "ASSESS114" not in bag.codes()
    assert not bag.has_errors


# ----------------------------------------------------------------------
# ASSESS115 — ancestor benchmarks
# ----------------------------------------------------------------------
def test_ancestor_needs_finer_level_in_by(ctx):
    text = (
        "with SALES by product assess quantity against ancestor country "
        "labels quartiles"
    )
    d = diag(text, ctx, "ASSESS115")
    assert "finer level" in d.message


def test_ancestor_must_be_coarser(ctx):
    text = (
        "with SALES by country assess quantity against ancestor city "
        "labels quartiles"
    )
    d = diag(text, ctx, "ASSESS115")
    assert "does not roll up" in d.message


def test_ancestor_unknown_level(ctx):
    text = (
        "with SALES by product assess quantity against ancestor galaxy "
        "labels quartiles"
    )
    assert diag(text, ctx, "ASSESS115").severity is Severity.ERROR


def test_valid_ancestor_statement_is_clean(ctx):
    text = (
        "with SALES by product assess quantity against ancestor type "
        "using ratio(quantity, benchmark.quantity) labels quartiles"
    )
    _, bag = analyze_text(text, ctx)
    assert not bag.has_errors


# ----------------------------------------------------------------------
# ASSESS120 / ASSESS121 / ASSESS122 — using-clause functions
# ----------------------------------------------------------------------
def test_unknown_function(ctx):
    text = (
        "with SALES by month assess quantity using nosuchfn(quantity) "
        + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS120")
    assert spanned_text(text, d).startswith("nosuchfn")
    assert "difference" in d.hint


def test_arity_mismatch(ctx):
    text = (
        "with SALES by month assess quantity using difference(quantity) "
        + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS121")
    assert "takes 2 arguments, got 1" in d.message


def test_percoftotal_one_arg_is_exempt(ctx):
    text = (
        "with SALES by month assess quantity using percOfTotal(quantity) "
        "labels quartiles"
    )
    _, bag = analyze_text(text, ctx)
    assert "ASSESS121" not in bag.codes()


def test_division_by_constant_zero(ctx):
    text = (
        "with SALES by month assess quantity using quantity / 0 "
        + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS122")
    assert spanned_text(text, d) == "0"


def test_zero_denominator_in_ratio(ctx):
    text = (
        "with SALES by month assess quantity using ratio(quantity, 0) "
        + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS122")
    assert "ratio" in d.message


def test_nonzero_division_is_clean(ctx):
    text = (
        "with SALES by month assess quantity using quantity / 2 "
        + COMPLETE_LABELS
    )
    _, bag = analyze_text(text, ctx)
    assert "ASSESS122" not in bag.codes()


# ----------------------------------------------------------------------
# ASSESS123 / ASSESS124 / ASSESS125 / ASSESS126 — references
# ----------------------------------------------------------------------
def test_benchmark_ref_not_provided(ctx):
    text = (
        "with SALES for country = 'Italy' by product, country "
        "assess quantity against country = 'France' "
        "using ratio(quantity, benchmark.bogus) " + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS123")
    assert "sibling benchmark" in d.message
    assert "quantity" in d.hint


def test_unknown_reference_with_engine_is_error(ctx):
    text = (
        "with SALES by month assess quantity using ratio(bogus, 2) "
        + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS124")
    assert d.severity is Severity.ERROR
    assert spanned_text(text, d) == "bogus"


def test_unknown_reference_without_engine_is_warning(schema_only_ctx):
    text = (
        "with SALES by month assess quantity using ratio(bogus, 2) "
        + COMPLETE_LABELS
    )
    d = diags(text, schema_only_ctx, "ASSESS124")[0]
    assert d.severity is Severity.WARNING


def test_unused_benchmark_warns(ctx):
    text = (
        "with SALES for country = 'Italy' by product, country "
        "assess quantity against country = 'France' "
        "using ratio(quantity, 2) " + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS125")
    assert d.severity is Severity.WARNING
    assert "sibling" in d.message


def test_constant_benchmark_is_never_unused(ctx):
    text = (
        "with SALES by month assess quantity against 1000 "
        "using identity(quantity) " + COMPLETE_LABELS
    )
    _, bag = analyze_text(text, ctx)
    assert "ASSESS125" not in bag.codes()


def test_unknown_qualifier(ctx):
    text = (
        "with SALES by month assess quantity using ratio(foo.quantity, 2) "
        + COMPLETE_LABELS
    )
    d = diag(text, ctx, "ASSESS126")
    assert "'foo'" in d.message


# ----------------------------------------------------------------------
# ASSESS130..ASSESS134 — labels clause
# ----------------------------------------------------------------------
def test_label_gaps_warn(ctx):
    text = (
        "with SALES by month assess quantity "
        "labels {[0, 1]: a, [2, 3]: b}"
    )
    d = diag(text, ctx, "ASSESS130")
    assert d.severity is Severity.WARNING
    # The message enumerates every gap, including the unbounded flanks.
    assert "(1, 2)" in d.message
    assert "(-inf, 0)" in d.message and "(3, inf)" in d.message


def test_label_overlaps_error_once_per_pair(ctx):
    text = (
        "with SALES by month assess quantity "
        "labels {[0, 5]: a, [3, 8]: b, [4, 9]: c}"
    )
    matches = diags(text, ctx, "ASSESS131")
    assert len(matches) == 3  # (a,b), (a,c), (b,c)
    assert all(d.severity is Severity.ERROR for d in matches)
    # Each overlap is anchored at the later rule's range.
    assert spanned_text(text, matches[0]).startswith("[3, 8]")


def test_empty_interval_is_invalid(ctx):
    text = "with SALES by month assess quantity labels {[5, 2]: bad}"
    d = diag(text, ctx, "ASSESS132")
    assert "low 5.0 > high 2.0" in d.message


def test_degenerate_open_interval_is_invalid(ctx):
    text = "with SALES by month assess quantity labels {[1, 1): x}"
    assert diag(text, ctx, "ASSESS132").severity is Severity.ERROR


def test_closed_infinite_bound_is_degenerate_not_crash(ctx):
    # [inf, inf] is forced open by interval semantics, hence degenerate.
    text = "with SALES by month assess quantity labels {[inf, inf]: x}"
    d = diag(text, ctx, "ASSESS132")
    assert "closed on both ends" in d.message


def test_degenerate_closed_interval_is_valid(ctx):
    text = (
        "with SALES by month assess quantity "
        "labels {(-inf, 0): low, [0, 0]: zero, (0, inf): high}"
    )
    _, bag = analyze_text(text, ctx)
    assert bag.codes() == ()


def test_unknown_labeling_warns(ctx):
    text = "with SALES by month assess quantity labels somethingCustom"
    d = diag(text, ctx, "ASSESS133")
    assert d.severity is Severity.WARNING
    assert "quartiles" in d.hint


def test_known_labelings_suppress_warning(sales):
    context = AnalysisContext(
        schemas={"SALES": sales.cube("SALES").schema},
        known_labelings=("somethingCustom",),
    )
    text = "with SALES by month assess quantity labels somethingCustom"
    _, bag = analyze_text(text, context)
    assert "ASSESS133" not in bag.codes()


def test_non_labeling_function_in_labels(ctx):
    text = "with SALES by month assess quantity labels ratio"
    d = diag(text, ctx, "ASSESS134")
    assert "needs a labeling function" in d.message


# ----------------------------------------------------------------------
# Multi-error accumulation and the parse_statement entry point
# ----------------------------------------------------------------------
def test_all_defects_reported_in_one_run(ctx):
    text = (
        "with SALES for nolevel = 'x' by mnth, product, type "
        "assess bogus against country = 'France' "
        "using nosuchfn(quantity) / 0 "
        "labels {[0, 5]: a, [3, 8]: b}"
    )
    _, bag = analyze_text(text, ctx)
    for code in (
        "ASSESS102", "ASSESS103", "ASSESS104", "ASSESS105",
        "ASSESS113", "ASSESS120", "ASSESS122", "ASSESS131",
    ):
        assert code in bag.codes(), f"missing {code} in {bag.codes()}"


def test_parse_statement_collect_diagnostics(sales):
    resolver = {"SALES": sales.cube("SALES").schema}
    statement, bag = parse_statement(CLEAN_ZERO, resolver, collect_diagnostics=True)
    assert statement is not None and bag.codes() == ()

    statement, bag = parse_statement(
        "with SALES by mnth assess bogus labels quartiles",
        resolver,
        collect_diagnostics=True,
    )
    assert statement is None
    assert {"ASSESS102", "ASSESS104"} <= set(bag.codes())


def test_session_analyze(sales_session):
    bag = sales_session.assess  # session fixture sanity
    bag = sales_session.analyze("with SALES by mnth assess bogus labels quartiles")
    assert {"ASSESS102", "ASSESS104"} <= set(bag.codes())
    assert sales_session.analyze(CLEAN_ZERO).codes() == ()
