"""Unit tests for plan execution: timings, assess*, labeling dispatch."""

import math

import pytest

from repro.algebra import (
    ALL_STEPS,
    PlanExecutor,
    STEP_COMPARE,
    STEP_GET_BENCHMARK,
    STEP_GET_COMBINED,
    STEP_GET_TARGET,
    STEP_JOIN,
    STEP_LABEL,
    STEP_TRANSFORM,
    build_plan,
)
from repro.core import FunctionError


SIBLING = """
with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""
PAST = """
with SALES for month = '1997-07', store = 'SmartMart' by month, store
assess storeSales against past 4
using ratio(storeSales, benchmark.storeSales)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""


class TestTimingBuckets:
    def test_np_buckets(self, sales_session):
        result = sales_session.assess(SIBLING, plan="NP")
        assert STEP_GET_TARGET in result.timings
        assert STEP_GET_BENCHMARK in result.timings
        assert STEP_JOIN in result.timings
        assert STEP_COMPARE in result.timings
        assert STEP_LABEL in result.timings
        assert STEP_GET_COMBINED not in result.timings
        assert all(v >= 0 for v in result.timings.values())

    def test_jop_buckets(self, sales_session):
        result = sales_session.assess(SIBLING, plan="JOP")
        assert STEP_GET_COMBINED in result.timings
        assert STEP_GET_TARGET not in result.timings
        assert STEP_JOIN not in result.timings

    def test_past_np_has_transform(self, sales_session):
        result = sales_session.assess(PAST, plan="NP")
        assert STEP_TRANSFORM in result.timings  # pivot + regression + project

    def test_total_time_sums_buckets(self, sales_session):
        result = sales_session.assess(SIBLING, plan="NP")
        assert result.total_time() == pytest.approx(sum(result.timings.values()))

    def test_all_buckets_are_known_steps(self, sales_session):
        for plan in ("NP", "JOP", "POP"):
            result = sales_session.assess(PAST, plan=plan)
            assert set(result.timings) <= set(ALL_STEPS)


class TestResultContract:
    def test_five_components_per_cell(self, sales_session):
        result = sales_session.assess(SIBLING)
        for cell in result:
            assert len(cell.coordinate) == 2
            assert isinstance(cell.value, float)
            assert isinstance(cell.benchmark, float)
            assert isinstance(cell.comparison, float)
            assert cell.label in ("bad", "ok", "good")

    def test_plan_name_recorded(self, sales_session):
        assert sales_session.assess(SIBLING, plan="POP").plan_name == "POP"

    def test_label_of_lookup(self, sales_session):
        result = sales_session.assess(SIBLING)
        first = result.cells()[0]
        assert result.label_of(first.coordinate) == first.label

    def test_to_table_renders(self, sales_session):
        text = sales_session.assess(SIBLING).to_table(limit=2)
        assert "product" in text and "label" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 rows


class TestAssessStar:
    def test_unmatched_cells_get_null_labels(self, figure1_session):
        # France has no 'Banana'; extend Italy with one so assess* shows nulls
        engine = figure1_session.engine
        # Italy slice has Apple/Pear/Lemon; France benchmark misses nothing.
        # Slice on France against Italy instead, after removing a French row:
        result = figure1_session.assess(
            """with SALES for type = 'Fresh Fruit', country = 'Italy'
               by product, country
               assess* quantity against country = 'Spain'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        # Spain sells no fresh fruit at all: every cell survives with nulls.
        assert len(result) == 3
        for cell in result:
            assert cell.label is None
            assert math.isnan(cell.benchmark)

    def test_inner_assess_drops_unmatched(self, figure1_session):
        result = figure1_session.assess(
            """with SALES for type = 'Fresh Fruit', country = 'Italy'
               by product, country
               assess quantity against country = 'Spain'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        assert len(result) == 0


class TestLabelingDispatch:
    def test_named_labeling_from_registry(self, sales_session):
        result = sales_session.assess(
            "with SALES by month assess storeSales labels quartiles"
        )
        assert set(result.label_counts()) == {"Q1", "Q2", "Q3", "Q4"}

    def test_non_labeling_function_rejected(self, sales_session):
        with pytest.raises(FunctionError):
            sales_session.assess(
                "with SALES by month assess storeSales labels minMaxNorm"
            )

    def test_unknown_labeling_function_rejected(self, sales_session):
        with pytest.raises(FunctionError):
            sales_session.assess(
                "with SALES by month assess storeSales labels fancyLabels"
            )

    def test_predeclared_range_labeling(self, sales_session):
        from repro.core import five_stars_rules

        sales_session.define_labeling("fivestars", five_stars_rules())
        result = sales_session.assess(
            """with SALES by month assess storeSales against 50000
               using signedMinMaxNorm(difference(storeSales, 50000))
               labels fivestars"""
        )
        assert set(result.label_counts()) <= {"*", "**", "***", "****", "*****"}


class TestPredictionDispatch:
    def test_non_prediction_method_rejected(self, sales_session):
        statement = sales_session.parse(PAST)
        statement.benchmark.method = "difference"  # not a prediction function
        plan = build_plan(statement, sales_session.engine, "NP")
        executor = PlanExecutor(sales_session.engine, sales_session.registry)
        with pytest.raises(FunctionError):
            executor.execute(plan, statement)

    def test_alternative_predictors_run(self, sales_session):
        statement = sales_session.parse(PAST)
        for method in ("movingAverage", "naiveLast", "exponentialSmoothing"):
            statement.benchmark.method = method
            plan = build_plan(statement, sales_session.engine, "NP")
            executor = PlanExecutor(sales_session.engine, sales_session.registry)
            result = executor.execute(plan, statement)
            assert len(result) == 1


ANCESTOR = """
with SALES by product, country assess quantity against ancestor type
using ratio(quantity, benchmark.quantity)
labels {[0, 0.2): small, [0.2, 1]: large}
"""


class TestRollupJoinVectorized:
    """The vectorised ancestor join must agree with the row-at-a-time oracle."""

    @pytest.mark.parametrize("outer", [False, True])
    def test_matches_python_oracle(self, sales_session, outer):
        import numpy as np

        from repro.algebra.plan import RollupJoinNode

        statement = sales_session.parse(ANCESTOR)
        plan = build_plan(statement, sales_session.engine, "NP")
        executor = PlanExecutor(sales_session.engine, sales_session.registry)
        nodes = [n for n in plan.nodes() if isinstance(n, RollupJoinNode)]
        assert len(nodes) == 1
        node = nodes[0]
        node.outer = outer
        executor._ensure_hydrated(node)
        timings = {}
        left = executor._run(node.left, timings)
        right = executor._run(node.right, timings)
        fast = executor._rollup_join(node, left, right)
        slow = executor._rollup_join_python(node, left, right)
        assert len(fast) == len(slow)
        assert fast.coordinates() == slow.coordinates()
        assert set(fast.measure_names) == set(slow.measure_names)
        for name in fast.measure_names:
            assert np.array_equal(
                np.asarray(fast.measure(name), dtype=np.float64),
                np.asarray(slow.measure(name), dtype=np.float64),
                equal_nan=True,
            )

    def test_ancestor_statement_end_to_end(self, sales_session):
        result = sales_session.assess(ANCESTOR, plan="NP")
        assert len(result) > 0
        assert set(result.label_counts()) <= {"small", "large"}
