"""Semantic result cache: correctness, derivation, invalidation.

The central property: with the cache enabled, every answer — cold, exact
hit, or derived from a finer cached result — is *bit-identical* to what
cache-off execution produces, across random star schemas, hierarchies,
and query mixes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.cost import Statistics
from repro.cache import fingerprint_query
from repro.cache.derive import _sums_exactly
from repro.core.groupby import GroupBySet
from repro.core.query import CubeQuery, Predicate, PredicateOp
from repro.datagen.flat import star_from_flat
from repro.datagen.random_cube import random_hierarchy
from repro.engine.catalog import Catalog
from repro.engine.executor import EngineExecutor
from repro.engine.query import (
    Aggregate,
    AggregateQuery,
    ColumnPredicate,
    GroupByColumn,
)
from repro.engine.table import Table
from repro.olap.engine import MultidimensionalEngine


# ----------------------------------------------------------------------
# Random star engines (reusing the random-cube hierarchy generator)
# ----------------------------------------------------------------------
def _random_engine(seed: int, n_rows: int = 400):
    """A random 2-hierarchy star engine with integral and fractional measures."""
    rng = np.random.default_rng(seed)
    h0 = random_hierarchy(rng, "H0", depth=3)
    h1 = random_hierarchy(rng, "H1", depth=2)
    hierarchies = [h0, h1]
    columns = {}
    for hierarchy in hierarchies:
        finest = hierarchy.finest_level.name
        members = sorted(hierarchy.members_of(finest))
        chosen = [members[i] for i in rng.integers(0, len(members), n_rows)]
        for level in hierarchy.level_names():
            column = np.empty(n_rows, dtype=object)
            column[:] = [
                hierarchy.rollup_member(member, finest, level) for member in chosen
            ]
            columns[level] = column
    columns["m_sum"] = rng.integers(0, 1000, n_rows).astype(np.float64)
    columns["m_min"] = rng.integers(0, 1000, n_rows).astype(np.float64)
    columns["m_avg"] = rng.uniform(0.0, 100.0, n_rows)
    columns["m_frac"] = np.round(rng.uniform(0.0, 100.0, n_rows), 2)
    engine = MultidimensionalEngine(Catalog())
    star_from_flat(
        engine,
        "RAND",
        Table("flat", columns),
        {h.name: list(h.level_names()) for h in hierarchies},
        {"m_sum": "sum", "m_min": "min", "m_avg": "avg", "m_frac": "sum"},
    )
    return engine, hierarchies


def _random_queries(rng, schema, hierarchies, count: int = 10):
    queries = []
    for _ in range(count):
        levels = [
            h.level_names()[int(rng.integers(0, len(h.levels)))]
            for h in hierarchies
            if rng.random() < 0.8
        ]
        if not levels:
            levels = [hierarchies[0].level_names()[0]]
        predicates = []
        for hierarchy in hierarchies:
            if rng.random() < 0.4:
                level = hierarchy.level_names()[
                    int(rng.integers(0, len(hierarchy.levels)))
                ]
                members = sorted(hierarchy.members_of(level))
                k = int(rng.integers(1, min(3, len(members)) + 1))
                picks = rng.choice(len(members), size=k, replace=False)
                predicates.append(Predicate.isin(level, [members[i] for i in picks]))
        all_measures = ("m_sum", "m_min", "m_avg", "m_frac")
        keep = [m for m in all_measures if rng.random() < 0.7]
        measures = tuple(keep) or ("m_sum",)
        queries.append(
            CubeQuery("RAND", GroupBySet(schema, levels), predicates, measures)
        )
    return queries


def _assert_same_cube(left, right) -> None:
    assert list(left.coords) == list(right.coords)
    assert list(left.measures) == list(right.measures)
    for name in left.coords:
        a, b = left.coords[name], right.coords[name]
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a.tolist(), b.tolist())), name
    for name in left.measures:
        assert np.array_equal(
            left.measures[name], right.measures[name], equal_nan=True
        ), name


# ----------------------------------------------------------------------
# The property: cache-on answers are bit-identical to cache-off
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_cached_answers_bit_identical_across_random_cubes(seed):
    engine, hierarchies = _random_engine(seed)
    reference, _ = _random_engine(seed)
    reference.result_cache.enabled = False
    schema = engine.cube("RAND").schema
    rng = np.random.default_rng(1000 + seed)
    queries = _random_queries(rng, schema, hierarchies)
    # Two passes: the first mixes cold executions with derivations, the
    # second is dominated by exact hits.  Every answer must match the
    # cache-off engine bit for bit.
    for query in queries + queries:
        _assert_same_cube(engine.get(query), reference.get(query))
    stats = engine.result_cache.stats()
    assert stats["hits"] >= len(queries)  # second pass served warm
    assert stats["misses"] + stats["derivations"] >= 1


def test_repeated_get_is_an_exact_hit():
    engine, hierarchies = _random_engine(42)
    schema = engine.cube("RAND").schema
    query = CubeQuery(
        "RAND", GroupBySet(schema, [hierarchies[0].level_names()[0]]), (), ("m_sum",)
    )
    first = engine.get(query)
    second = engine.get(query)
    _assert_same_cube(first, second)
    stats = engine.result_cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1


def test_drill_up_derives_without_touching_the_fact_table(monkeypatch):
    engine, hierarchies = _random_engine(7)
    schema = engine.cube("RAND").schema
    h0 = hierarchies[0]
    fine = CubeQuery(
        "RAND",
        GroupBySet(schema, [h0.level_names()[0], hierarchies[1].level_names()[0]]),
        (),
        ("m_sum", "m_min"),
    )
    engine.get(fine)

    cold_calls = []
    original = EngineExecutor.execute_aggregate

    def spy(self, query):
        cold_calls.append(query)
        return original(self, query)

    monkeypatch.setattr(EngineExecutor, "execute_aggregate", spy)
    coarse = CubeQuery(
        "RAND", GroupBySet(schema, [h0.level_names()[-1]]), (), ("m_sum", "m_min")
    )
    derived = engine.get(coarse)
    assert not cold_calls, "derivation must not re-execute against the fact table"
    assert engine.result_cache.stats()["derivations"] == 1

    monkeypatch.setattr(EngineExecutor, "execute_aggregate", original)
    engine.result_cache.enabled = False
    _assert_same_cube(derived, engine.get(coarse))


def test_derivation_applies_residual_predicates():
    engine, hierarchies = _random_engine(11)
    schema = engine.cube("RAND").schema
    h0 = hierarchies[0]
    fine_level, coarse_level = h0.level_names()[0], h0.level_names()[-1]
    engine.get(CubeQuery("RAND", GroupBySet(schema, [fine_level]), (), ("m_sum",)))
    member = sorted(h0.members_of(coarse_level))[0]
    filtered = CubeQuery(
        "RAND",
        GroupBySet(schema, [coarse_level]),
        (Predicate.eq(coarse_level, member),),
        ("m_sum",),
    )
    derived = engine.get(filtered)
    assert engine.result_cache.stats()["derivations"] == 1
    engine.result_cache.enabled = False
    _assert_same_cube(derived, engine.get(filtered))


def test_fractional_sums_fall_back_to_cold_execution():
    engine, hierarchies = _random_engine(13)
    schema = engine.cube("RAND").schema
    h0 = hierarchies[0]
    engine.get(
        CubeQuery("RAND", GroupBySet(schema, [h0.level_names()[0]]), (), ("m_frac",))
    )
    coarse = CubeQuery(
        "RAND", GroupBySet(schema, [h0.level_names()[-1]]), (), ("m_frac",)
    )
    warm = engine.get(coarse)
    # Re-associating fractional partial sums would drift by ulps, so the
    # exactness gate refuses the derivation and executes cold instead.
    stats = engine.result_cache.stats()
    assert stats["derivations"] == 0
    assert stats["misses"] == 2
    engine.result_cache.enabled = False
    _assert_same_cube(warm, engine.get(coarse))


def test_sums_exactly_gate():
    assert _sums_exactly(np.array([], dtype=np.float64))
    assert _sums_exactly(np.array([1.0, 2.0, 3e9]))
    assert not _sums_exactly(np.array([1.5, 2.0]))
    assert not _sums_exactly(np.array([np.nan, 1.0]))
    assert not _sums_exactly(np.full(4, 2.0**52))


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def _aggregate_query(where=(), group_by=None, aggregates=None):
    return AggregateQuery(
        fact="f",
        joins=(),
        where=tuple(where),
        group_by=tuple(group_by or (GroupByColumn("f", "a", "a"),)),
        aggregates=tuple(aggregates or (Aggregate("m", "sum", "m"),)),
    )


def test_fingerprint_normalizes_predicate_spelling():
    eq = _aggregate_query(
        where=[ColumnPredicate("f", "c", Predicate.eq("l", "x"))]
    )
    single_in = _aggregate_query(
        where=[ColumnPredicate("f", "c", Predicate("l", PredicateOp.IN, ("x",)))]
    )
    assert fingerprint_query(eq) == fingerprint_query(single_in)

    forward = _aggregate_query(
        where=[ColumnPredicate("f", "c", Predicate("l", PredicateOp.IN, ("x", "y")))]
    )
    backward = _aggregate_query(
        where=[ColumnPredicate("f", "c", Predicate("l", PredicateOp.IN, ("y", "x")))]
    )
    assert fingerprint_query(forward) == fingerprint_query(backward)


def test_fingerprint_ignores_predicate_order_but_not_content():
    p1 = ColumnPredicate("f", "c", Predicate.eq("l", "x"))
    p2 = ColumnPredicate("f", "d", Predicate.eq("k", "y"))
    assert fingerprint_query(_aggregate_query(where=[p1, p2])) == fingerprint_query(
        _aggregate_query(where=[p2, p1])
    )
    p3 = ColumnPredicate("f", "d", Predicate.eq("k", "z"))
    assert fingerprint_query(_aggregate_query(where=[p1, p2])) != fingerprint_query(
        _aggregate_query(where=[p1, p3])
    )


def test_permuted_in_spelling_is_served_from_cache():
    engine, hierarchies = _random_engine(17)
    schema = engine.cube("RAND").schema
    h0 = hierarchies[0]
    level = h0.level_names()[0]
    members = sorted(h0.members_of(level))[:2]
    canonical = CubeQuery(
        "RAND",
        GroupBySet(schema, [level]),
        (Predicate.isin(level, members),),
        ("m_sum",),
    )
    permuted = CubeQuery(
        "RAND",
        GroupBySet(schema, [level]),
        (Predicate(level, PredicateOp.IN, tuple(reversed(members))),),
        ("m_sum",),
    )
    first = engine.get(canonical)
    second = engine.get(permuted)
    _assert_same_cube(first, second)
    stats = engine.result_cache.stats()
    assert stats["hits"] + stats["derivations"] >= 1
    assert stats["misses"] == 1


def test_drill_across_results_are_cached_and_invalidated():
    engine, hierarchies = _random_engine(47)
    schema = engine.cube("RAND").schema
    level = hierarchies[0].level_names()[0]
    left = CubeQuery("RAND", GroupBySet(schema, [level]), (), ("m_sum",))
    right = CubeQuery("RAND", GroupBySet(schema, [level]), (), ("m_min",))
    first = engine.drill_across(left, right, [level])
    before = engine.result_cache.stats()["hits"]
    second = engine.drill_across(left, right, [level])
    # The composite entry answers before the sides are even consulted.
    assert engine.result_cache.stats()["hits"] == before + 1
    _assert_same_cube(first, second)

    fact = engine.catalog.table("rand_fact")
    engine.catalog.register(
        Table("rand_fact", {n: fact.column(n) for n in fact.column_names}),
        replace=True,
    )
    assert engine.result_cache.stats()["entries"] == 0


# ----------------------------------------------------------------------
# Invalidation & eviction
# ----------------------------------------------------------------------
def test_catalog_replace_invalidates_cached_results():
    engine, hierarchies = _random_engine(23)
    schema = engine.cube("RAND").schema
    query = CubeQuery(
        "RAND", GroupBySet(schema, [hierarchies[0].level_names()[0]]), (), ("m_sum",)
    )
    stale = engine.get(query)

    fact = engine.catalog.table("rand_fact")
    doubled = Table(
        "rand_fact",
        {
            name: (fact.column(name) * 2.0 if name == "m_sum" else fact.column(name))
            for name in fact.column_names
        },
    )
    engine.catalog.register(doubled, replace=True)
    assert engine.result_cache.stats()["invalidations"] >= 1

    fresh = engine.get(query)
    assert np.array_equal(fresh.measures["m_sum"], stale.measures["m_sum"] * 2.0)


def test_view_drop_invalidates_view_routed_results():
    engine, hierarchies = _random_engine(29)
    schema = engine.cube("RAND").schema
    h0 = hierarchies[0]
    view = engine.materialize("RAND", [h0.level_names()[0]])
    query = CubeQuery(
        "RAND", GroupBySet(schema, [h0.level_names()[0]]), (), ("m_sum",)
    )
    routed = engine.get(query)
    assert engine.build_aggregate_query(query).fact == view.table_name

    before = engine.result_cache.stats()["invalidations"]
    engine.drop_view(view.name)
    assert engine.result_cache.stats()["invalidations"] > before

    unrouted = engine.get(query)
    assert engine.build_aggregate_query(query).fact == "rand_fact"
    _assert_same_cube(routed, unrouted)


def test_cell_budget_evicts_least_recently_used():
    engine, hierarchies = _random_engine(31)
    schema = engine.cube("RAND").schema
    engine.result_cache.cell_budget = 8
    for hierarchy in hierarchies:
        for level in hierarchy.level_names():
            engine.get(CubeQuery("RAND", GroupBySet(schema, [level]), (), ("m_sum",)))
    stats = engine.result_cache.stats()
    assert stats["evictions"] >= 1
    assert stats["cached_cells"] <= 8


def test_oversized_results_are_not_cached():
    engine, hierarchies = _random_engine(37)
    schema = engine.cube("RAND").schema
    engine.result_cache.cell_budget = 1
    query = CubeQuery(
        "RAND", GroupBySet(schema, [hierarchies[0].level_names()[0]]), (), ("m_sum",)
    )
    engine.get(query)
    assert engine.result_cache.stats()["entries"] == 0


# ----------------------------------------------------------------------
# Cost-model probe and session observability
# ----------------------------------------------------------------------
def test_cost_model_sees_warm_gets():
    engine, hierarchies = _random_engine(41)
    schema = engine.cube("RAND").schema
    stats = Statistics(engine)
    query = CubeQuery(
        "RAND", GroupBySet(schema, [hierarchies[0].level_names()[0]]), (), ("m_sum",)
    )
    assert stats.cache_probe(query) is None
    engine.get(query)
    assert stats.cache_probe(query) == "exact"
    coarser = CubeQuery(
        "RAND", GroupBySet(schema, [hierarchies[0].level_names()[-1]]), (), ("m_sum",)
    )
    assert stats.cache_probe(coarser) == "derive"


def test_session_cache_stats_and_clear():
    from repro.api import AssessSession

    engine, hierarchies = _random_engine(43)
    session = AssessSession(engine)
    schema = engine.cube("RAND").schema
    query = CubeQuery(
        "RAND", GroupBySet(schema, [hierarchies[0].level_names()[0]]), (), ("m_sum",)
    )
    engine.get(query)
    engine.get(query)
    stats = session.cache_stats()
    assert stats["hits"] == 1 and stats["entries"] == 1
    session.clear_cache()
    assert session.cache_stats()["entries"] == 0
    assert session.cache_stats()["hits"] == 1  # counters survive a clear


def test_cache_cli_subcommand(capsys):
    from repro.cli import cache_main

    assert cache_main(["--cube", "sales", "--rows", "2000", "--passes", "2"]) == 0
    out = capsys.readouterr().out
    assert "result cache:" in out
    assert "pass 2 (warm)" in out
