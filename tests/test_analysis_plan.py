"""Plan-pass tests: every freshly built feasible plan verifies clean, and a
tampered plan produces exactly the right ASSESS2xx code."""

from __future__ import annotations

import pytest

from repro.algebra.plan import (
    STEP_TRANSFORM,
    AddConstantNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    UsingNode,
)
from repro.algebra.planner import PlanError, build_plan, feasible_plans, validate_plan
from repro.analysis import verify_plan
from repro.experiments.statements import STATEMENTS, prepare_engine
from repro.parser.parser import parse_statement


@pytest.fixture(scope="module")
def engine():
    """A small engine with the experiment cubes (SSB + BUDGET at month, part)."""
    return prepare_engine(lineorder_rows=2000)


@pytest.fixture(scope="module")
def statements(engine):
    resolver = lambda name: engine.cube(name).schema  # noqa: E731
    parsed = {
        key.lower(): parse_statement(text, resolver)
        for key, text in STATEMENTS.items()
    }
    parsed["zero"] = parse_statement(
        "with SSB by year assess revenue labels quartiles", resolver
    )
    return parsed


def fresh(statements, engine, key, plan_name):
    """Build a plan without the planner's own validation."""
    return build_plan(statements[key], engine, plan_name, validate=False)


# ----------------------------------------------------------------------
# Clean plans: every benchmark kind, every feasible plan, zero findings.
# ----------------------------------------------------------------------
def test_all_feasible_plans_verify_clean(statements, engine):
    checked = 0
    for key, statement in statements.items():
        for plan_name in feasible_plans(statement):
            plan = build_plan(statement, engine, plan_name, validate=False)
            bag = verify_plan(plan, statement)
            assert not bag, (
                f"{key}/{plan_name}: {[str(d) for d in bag]}"
            )
            checked += 1
    assert checked >= 8  # zero+constant (NP), external (NP, JOP), sibling/past (×3)


def test_verify_plan_without_statement_runs_structural_passes(statements, engine):
    plan = fresh(statements, engine, "sibling", "NP")
    assert not verify_plan(plan)


# ----------------------------------------------------------------------
# ASSESS201 — Using -> Label tail shape
# ----------------------------------------------------------------------
def reparent(plan, root):
    return Plan(
        plan.name, root, plan.measure, plan.benchmark_column,
        plan.comparison_column, plan.label_column,
    )


def test_missing_label_root(statements, engine):
    plan = fresh(statements, engine, "constant", "NP")
    broken = reparent(plan, plan.root.child)  # drop the Label node
    assert "ASSESS201" in verify_plan(broken).codes()


def test_label_over_non_using(statements, engine):
    plan = fresh(statements, engine, "constant", "NP")
    assert isinstance(plan.root, LabelNode)
    assert isinstance(plan.root.child, UsingNode)
    plan.root.child = plan.root.child.child  # splice the Using node out
    assert "ASSESS201" in verify_plan(plan).codes()


# ----------------------------------------------------------------------
# ASSESS202 — column closure
# ----------------------------------------------------------------------
def test_label_consuming_missing_column(statements, engine):
    plan = fresh(statements, engine, "sibling", "NP")
    plan.root.input_column = "nonexistent"
    bag = verify_plan(plan, statements["sibling"])
    matches = [d for d in bag if d.code == "ASSESS202"]
    assert matches and "nonexistent" in matches[0].message


def test_using_consuming_missing_column(statements, engine):
    plan = fresh(statements, engine, "external", "JOP")
    join = next(n for n in plan.nodes() if isinstance(n, JoinNode))
    join.alias = "wrong_alias"  # benchmark.* columns vanish downstream
    assert "ASSESS202" in verify_plan(plan).codes()


# ----------------------------------------------------------------------
# ASSESS203 — join partiality
# ----------------------------------------------------------------------
def sibling_join(plan):
    return next(n for n in plan.nodes() if isinstance(n, JoinNode))


def test_natural_join_for_sibling_benchmark(statements, engine):
    plan = fresh(statements, engine, "sibling", "NP")
    sibling_join(plan).join_levels = None
    bag = verify_plan(plan, statements["sibling"])
    matches = [d for d in bag if d.code == "ASSESS203"]
    assert matches and "partial join" in matches[0].message


def test_join_on_wrong_subset(statements, engine):
    statement = statements["sibling"]
    plan = fresh(statements, engine, "sibling", "NP")
    sibling_join(plan).join_levels = tuple(statement.group_by.levels)
    assert "ASSESS203" in verify_plan(plan, statement).codes()


def test_join_outside_group_by(statements, engine):
    plan = fresh(statements, engine, "sibling", "NP")
    join = sibling_join(plan)
    join.join_levels = join.join_levels + ("galaxy",)
    bag = verify_plan(plan, statements["sibling"])
    matches = [d for d in bag if d.code == "ASSESS203"]
    assert matches and "galaxy" in matches[0].message


# ----------------------------------------------------------------------
# ASSESS204 — step attribution
# ----------------------------------------------------------------------
def test_unknown_step_bucket(statements, engine):
    plan = fresh(statements, engine, "constant", "NP")
    plan.root.step = "bogus_bucket"
    bag = verify_plan(plan)
    matches = [d for d in bag if d.code == "ASSESS204"]
    assert matches and "bogus_bucket" in matches[0].message


def test_wrong_step_bucket(statements, engine):
    plan = fresh(statements, engine, "constant", "NP")
    plan.root.step = STEP_TRANSFORM  # a Label node must be charged to 'label'
    bag = verify_plan(plan)
    matches = [d for d in bag if d.code == "ASSESS204"]
    assert matches and "'label'" in matches[0].message


# ----------------------------------------------------------------------
# ASSESS205 — pushed operators over non-gets
# ----------------------------------------------------------------------
def test_pushed_join_over_non_get(statements, engine):
    plan = fresh(statements, engine, "external", "JOP")
    join = next(n for n in plan.nodes() if isinstance(n, JoinNode) and n.pushed)
    join.left = AddConstantNode(join.left, 1.0, "one")
    bag = verify_plan(plan)
    matches = [d for d in bag if d.code == "ASSESS205"]
    assert matches and "left child" in matches[0].message


def test_pushed_pivot_over_non_get(statements, engine):
    plan = fresh(statements, engine, "sibling", "POP")
    pivot = next(n for n in plan.nodes() if isinstance(n, PivotNode) and n.pushed)
    pivot.child = AddConstantNode(pivot.child, 1.0, "one")
    assert "ASSESS205" in verify_plan(plan).codes()


# ----------------------------------------------------------------------
# ASSESS206 — pivot members vs the combined get's predicate
# ----------------------------------------------------------------------
def test_pivot_member_not_fetched(statements, engine):
    plan = fresh(statements, engine, "sibling", "POP")
    pivot = next(n for n in plan.nodes() if isinstance(n, PivotNode))
    pivot.member_renames["Nowhere"] = {"revenue": "benchmark.revenue"}
    bag = verify_plan(plan)
    matches = [d for d in bag if d.code == "ASSESS206"]
    assert matches and "'Nowhere'" in matches[0].message


def test_pivot_without_members(statements, engine):
    plan = fresh(statements, engine, "sibling", "POP")
    pivot = next(n for n in plan.nodes() if isinstance(n, PivotNode))
    pivot.member_renames = {}
    bag = verify_plan(plan)
    assert any(
        d.code == "ASSESS206" and "renames no members" in d.message for d in bag
    )


# ----------------------------------------------------------------------
# ASSESS207 — feasibility matrix
# ----------------------------------------------------------------------
def test_infeasible_plan_name(statements, engine):
    plan = fresh(statements, engine, "constant", "NP")
    plan.name = "POP"  # a constant benchmark admits only NP
    bag = verify_plan(plan, statements["constant"])
    matches = [d for d in bag if d.code == "ASSESS207"]
    assert matches and "constant" in matches[0].message


def test_feasible_names_pass(statements, engine):
    for plan_name in ("NP", "JOP", "POP"):
        plan = fresh(statements, engine, "sibling", plan_name)
        bag = verify_plan(plan, statements["sibling"])
        assert "ASSESS207" not in bag.codes()


# ----------------------------------------------------------------------
# Planner wiring: validate_plan raises PlanError listing every finding
# ----------------------------------------------------------------------
def test_validate_plan_raises_with_all_codes(statements, engine):
    plan = fresh(statements, engine, "sibling", "NP")
    plan.root.input_column = "nonexistent"
    sibling_join(plan).join_levels = None
    with pytest.raises(PlanError) as excinfo:
        validate_plan(plan, statements["sibling"])
    message = str(excinfo.value)
    assert "ASSESS202" in message and "ASSESS203" in message


def test_build_plan_validates_by_default(statements, engine):
    # The default build path runs verification and stays clean.
    plan = build_plan(statements["sibling"], engine, "POP")
    assert not verify_plan(plan, statements["sibling"])
