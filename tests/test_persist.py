"""Unit tests for catalog persistence (.npz round trip)."""

import numpy as np
import pytest

from repro.core import CubeQuery, EngineError, GroupBySet
from repro.datagen import build_sales_catalog
from repro.engine import Catalog, Table
from repro.engine.persist import load_catalog, save_catalog
from repro.olap import MultidimensionalEngine


class TestRoundTrip:
    def test_tables_and_columns_preserved(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=500, seed=3)
        path = str(tmp_path / "sales.npz")
        save_catalog(catalog, path)
        restored = load_catalog(path)
        assert restored.table_names() == catalog.table_names()
        for table in catalog:
            loaded = restored.table(table.name)
            assert loaded.column_names == table.column_names
            for name in table.column_names:
                original, roundtripped = table.column(name), loaded.column(name)
                if original.dtype == object:
                    assert list(original) == list(roundtripped)
                else:
                    assert np.array_equal(original, roundtripped)
                    assert original.dtype == roundtripped.dtype

    def test_queries_agree_after_reload(self, tmp_path):
        catalog, schema, star = build_sales_catalog(n_rows=2_000, seed=4)
        path = str(tmp_path / "sales.npz")
        save_catalog(catalog, path)

        original_engine = MultidimensionalEngine(catalog)
        original_engine.register_cube("SALES", schema, star)
        restored_engine = MultidimensionalEngine(load_catalog(path))
        # bindings are metadata, reusable against the restored tables
        _, schema2, star2 = build_sales_catalog(n_rows=1, seed=4)
        restored_engine.register_cube("SALES", schema2, star2)

        query_levels = ["month", "country"]
        a = original_engine.get(
            CubeQuery("SALES", GroupBySet(schema, query_levels), (), ("quantity",))
        )
        b = restored_engine.get(
            CubeQuery("SALES", GroupBySet(schema2, query_levels), (), ("quantity",))
        )
        assert dict(a.cells()) == dict(b.cells())

    def test_extension_added_when_missing(self, tmp_path):
        catalog = Catalog()
        catalog.register(Table("t", {"a": np.array([1, 2, 3])}))
        path = str(tmp_path / "plain")
        save_catalog(catalog, path)
        restored = load_catalog(path)  # finds plain.npz
        assert restored.table("t").column("a").tolist() == [1, 2, 3]

    def test_non_string_objects_rejected(self, tmp_path):
        catalog = Catalog()
        column = np.empty(1, dtype=object)
        column[0] = (1, 2)  # a tuple member cannot persist
        catalog.register(Table("t", {"a": column}))
        with pytest.raises(EngineError):
            save_catalog(catalog, str(tmp_path / "bad.npz"))

    def test_not_a_catalog_archive(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, x=np.arange(3))
        with pytest.raises(EngineError):
            load_catalog(path)
