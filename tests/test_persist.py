"""Unit tests for catalog persistence (.npz round trip)."""

import numpy as np
import pytest

from repro.core import CubeQuery, EngineError, GroupBySet
from repro.datagen import build_sales_catalog
from repro.engine import Catalog, Table
from repro.engine.persist import load_catalog, save_catalog, storage_report
from repro.olap import MultidimensionalEngine


class TestRoundTrip:
    def test_tables_and_columns_preserved(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=500, seed=3)
        path = str(tmp_path / "sales.npz")
        save_catalog(catalog, path)
        restored = load_catalog(path)
        assert restored.table_names() == catalog.table_names()
        for table in catalog:
            loaded = restored.table(table.name)
            assert loaded.column_names == table.column_names
            for name in table.column_names:
                original, roundtripped = table.column(name), loaded.column(name)
                if original.dtype == object:
                    assert list(original) == list(roundtripped)
                else:
                    assert np.array_equal(original, roundtripped)
                    assert original.dtype == roundtripped.dtype

    def test_queries_agree_after_reload(self, tmp_path):
        catalog, schema, star = build_sales_catalog(n_rows=2_000, seed=4)
        path = str(tmp_path / "sales.npz")
        save_catalog(catalog, path)

        original_engine = MultidimensionalEngine(catalog)
        original_engine.register_cube("SALES", schema, star)
        restored_engine = MultidimensionalEngine(load_catalog(path))
        # bindings are metadata, reusable against the restored tables
        _, schema2, star2 = build_sales_catalog(n_rows=1, seed=4)
        restored_engine.register_cube("SALES", schema2, star2)

        query_levels = ["month", "country"]
        a = original_engine.get(
            CubeQuery("SALES", GroupBySet(schema, query_levels), (), ("quantity",))
        )
        b = restored_engine.get(
            CubeQuery("SALES", GroupBySet(schema2, query_levels), (), ("quantity",))
        )
        assert dict(a.cells()) == dict(b.cells())

    def test_extension_added_when_missing(self, tmp_path):
        catalog = Catalog()
        catalog.register(Table("t", {"a": np.array([1, 2, 3])}))
        path = str(tmp_path / "plain")
        save_catalog(catalog, path, format="v1")
        restored = load_catalog(path)  # finds plain.npz
        assert restored.table("t").column("a").tolist() == [1, 2, 3]

    def test_non_string_objects_rejected(self, tmp_path):
        catalog = Catalog()
        column = np.empty(1, dtype=object)
        column[0] = (1, 2)  # a tuple member cannot persist
        catalog.register(Table("t", {"a": column}))
        with pytest.raises(EngineError):
            save_catalog(catalog, str(tmp_path / "bad.npz"))

    def test_not_a_catalog_archive(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, x=np.arange(3))
        with pytest.raises(EngineError):
            load_catalog(path)


class TestV2Store:
    """The v2 column-store format: directory, encodings, zone maps, mmap."""

    def test_round_trip_preserves_values_and_dtypes(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=500, seed=3)
        path = str(tmp_path / "store")
        save_catalog(catalog, path)  # auto → v2 (no .npz suffix)
        for mmap in (True, False):
            restored = load_catalog(path, mmap=mmap)
            assert restored.table_names() == catalog.table_names()
            for table in catalog:
                loaded = restored.table(table.name)
                assert loaded.column_names == table.column_names
                for name in table.column_names:
                    original = table.column(name)
                    roundtripped = loaded.column(name)
                    assert original.dtype == roundtripped.dtype
                    if original.dtype == object:
                        assert list(original) == list(roundtripped)
                    else:
                        assert original.tobytes() == roundtripped.tobytes()

    def test_v1_archives_still_load(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=300, seed=5)
        path = str(tmp_path / "legacy.npz")
        save_catalog(catalog, path)  # .npz suffix → v1 format
        restored = load_catalog(path)
        for table in catalog:
            loaded = restored.table(table.name)
            for name in table.column_names:
                assert list(table.column(name)) == list(loaded.column(name))

    def test_queries_agree_after_mmap_reload(self, tmp_path):
        catalog, schema, star = build_sales_catalog(n_rows=2_000, seed=4)
        path = str(tmp_path / "store")
        save_catalog(catalog, path)

        original_engine = MultidimensionalEngine(catalog)
        original_engine.register_cube("SALES", schema, star)
        restored_engine = MultidimensionalEngine(load_catalog(path, mmap=True))
        _, schema2, star2 = build_sales_catalog(n_rows=1, seed=4)
        restored_engine.register_cube("SALES", schema2, star2)

        query_levels = ["month", "country"]
        a = original_engine.get(
            CubeQuery("SALES", GroupBySet(schema, query_levels), (), ("quantity",))
        )
        b = restored_engine.get(
            CubeQuery("SALES", GroupBySet(schema2, query_levels), (), ("quantity",))
        )
        assert dict(a.cells()) == dict(b.cells())

    def test_clustering_sorts_and_attaches_zone_maps(self, tmp_path):
        rng = np.random.default_rng(11)
        catalog = Catalog()
        catalog.register(Table("f", {
            "key": rng.integers(0, 50, 10_000).astype(np.int64),
            "val": rng.integers(0, 9, 10_000).astype(np.float64),
        }))
        path = str(tmp_path / "store")
        save_catalog(catalog, path, cluster={"f": "key"}, zone_rows=1024)
        restored = load_catalog(path)
        loaded = restored.table("f")
        assert loaded.has_zone_maps
        assert loaded.zone_rows == 1024
        keys = loaded.column("key")
        assert np.all(np.diff(keys) >= 0)  # clustered
        zone_map = loaded.zone_map("key")
        assert zone_map.n_zones == 10  # ceil(10000 / 1024)
        # zone bounds really bracket the stored rows
        for zone in range(zone_map.n_zones):
            lo, hi = zone * 1024, min((zone + 1) * 1024, 10_000)
            assert zone_map.mins[zone] == keys[lo:hi].min()
            assert zone_map.maxs[zone] == keys[lo:hi].max()
        # clustering must not reorder rows relative to each other:
        # the multiset of (key, val) pairs is unchanged
        original = sorted(zip(catalog.table("f").column("key").tolist(),
                              catalog.table("f").column("val").tolist()))
        stored = sorted(zip(keys.tolist(), loaded.column("val").tolist()))
        assert original == stored

    def test_storage_report_from_manifest(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=1_000, seed=6)
        path = str(tmp_path / "store")
        save_catalog(catalog, path)
        report = storage_report(path)
        assert report["version"] == 2
        assert {t["table"] for t in report["tables"]} == set(catalog.table_names())
        for table in report["tables"]:
            for column in table["columns"]:
                assert column["encoding"] in ("plain", "dict", "rle", "for")
                assert column["stored_bytes"] > 0
                assert column["zones"] >= 1

    def test_uncompressed_save_stays_plain(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=500, seed=8)
        path = str(tmp_path / "store")
        save_catalog(catalog, path, compress=False)
        report = storage_report(path)
        for table in report["tables"]:
            for column in table["columns"]:
                assert column["encoding"] == "plain"

    def test_v2_rejects_non_string_objects(self, tmp_path):
        catalog = Catalog()
        column = np.empty(1, dtype=object)
        column[0] = (1, 2)
        catalog.register(Table("t", {"a": column}))
        with pytest.raises(EngineError):
            save_catalog(catalog, str(tmp_path / "store"))

    def test_directory_without_manifest_rejected(self, tmp_path):
        path = tmp_path / "not_a_store"
        path.mkdir()
        with pytest.raises(EngineError):
            load_catalog(str(path))
        with pytest.raises(EngineError):
            storage_report(str(path))

    def test_unknown_format_rejected(self, tmp_path):
        catalog, _, _ = build_sales_catalog(n_rows=100, seed=9)
        with pytest.raises(EngineError):
            save_catalog(catalog, str(tmp_path / "x"), format="v3")
