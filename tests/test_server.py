"""Contract suite for the multi-tenant assess server.

Every endpoint's 200 body and every error envelope is checked against
the schema-v1 contract — structurally via the validators in
``tools/check_server_schema.py`` (the same code the CI smoke runs) and
behaviorally via golden field assertions.  One live server per module
(session reuse keeps the battery fast); tests only read, so sharing is
safe.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.server import (
    ServerConfig,
    ServerConfigError,
    TenantConfig,
    load_config,
)
from repro.server.wire import SCHEMA_VERSION

from .server_utils import (
    SALES_STATEMENT,
    SSB_STATEMENT,
    get_json,
    http_get,
    http_post,
    post_json,
    running_server,
)

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "tools")
)
from check_server_schema import (  # noqa: E402
    validate_batch_document,
    validate_error_document,
    validate_explain_document,
    validate_health_document,
    validate_metrics_text,
    validate_query_document,
    validate_stats_document,
)


@pytest.fixture(scope="module")
def server():
    tenants = [
        TenantConfig("acme", cube="sales", rows=2_000),
        TenantConfig("globex", cube="ssb", rows=4_000),
    ]
    with running_server(tenants=tenants) as live:
        yield live


# ----------------------------------------------------------------------
# 200 bodies
# ----------------------------------------------------------------------
def test_query_contract(server):
    status, document, _ = post_json(
        f"{server.url}/v1/query",
        {"tenant": "acme", "statement": SALES_STATEMENT},
    )
    assert status == 200
    assert validate_query_document(document) == []
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["tenant"] == "acme"
    assert document["levels"] == ["month"]
    assert document["rows"] == len(document["cells"]) > 0
    cell = document["cells"][0]
    assert set(cell) == {"coordinate", "value", "benchmark", "comparison", "label"}
    assert set(cell["coordinate"]) == {"month"}
    assert sum(document["label_counts"].values()) == document["rows"]


def test_query_explicit_plan(server):
    status, document, _ = post_json(
        f"{server.url}/v1/query",
        {"tenant": "acme", "statement": SALES_STATEMENT, "plan": "NP"},
    )
    assert status == 200
    assert document["plan"] == "NP"


def test_batch_contract(server):
    status, document, _ = post_json(
        f"{server.url}/v1/batch",
        {"tenant": "globex",
         "statements": [SSB_STATEMENT, SSB_STATEMENT]},
    )
    assert status == 200
    assert validate_batch_document(document) == []
    assert len(document["results"]) == 2
    assert len(document["seconds"]) == 2
    # Identical statements in one batch share work: same cells, labels,
    # and plan (timings are per-execution measurements and may differ).
    first, second = document["results"]
    assert {k: v for k, v in first.items() if k != "timings"} \
        == {k: v for k, v in second.items() if k != "timings"}
    assert "engine_scans" in document["sharing"]


def test_explain_contract(server):
    status, document, _ = post_json(
        f"{server.url}/v1/explain",
        {"tenant": "acme", "statement": SALES_STATEMENT, "plan": "NP"},
    )
    assert status == 200
    assert validate_explain_document(document) == []
    assert document["plan"] == "NP"
    assert "NP" in document["plans"]


def test_health_contract(server):
    status, document = get_json(f"{server.url}/v1/health")
    assert status == 200
    assert validate_health_document(document) == []
    assert document["status"] == "ok"
    assert document["tenants"] == ["acme", "globex"]


def test_metrics_contract(server):
    # Warm the metrics with one query first.
    post_json(f"{server.url}/v1/query",
              {"tenant": "acme", "statement": SALES_STATEMENT})
    status, body, headers = http_get(f"{server.url}/v1/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = body.decode("utf-8")
    assert validate_metrics_text(text) == []
    # Per-tenant namespaces are present and distinct.
    assert "repro_tenant_acme_" in text
    assert "repro_tenant_globex_" in text


def test_tenant_stats_contract(server):
    post_json(f"{server.url}/v1/query",
              {"tenant": "acme", "statement": SALES_STATEMENT})
    status, document = get_json(f"{server.url}/v1/tenants/acme/stats")
    assert status == 200
    assert validate_stats_document(document) == []
    assert document["tenant"] == "acme"
    assert document["cube"] == "sales"
    assert document["pool"]["size"] == 2
    assert document["admission"]["admitted"] >= 1
    assert document["admission"]["completed"] >= 1


# ----------------------------------------------------------------------
# Error envelopes
# ----------------------------------------------------------------------
def _error(body, status):
    document = json.loads(body)
    assert validate_error_document(document, status=status) == []
    return document["error"]


def test_malformed_json_envelope(server):
    status, body, _ = http_post(f"{server.url}/v1/query", raw=b"{not json")
    assert status == 400
    assert _error(body, status)["code"] == "bad_json"


def test_missing_body_envelope(server):
    status, body, _ = http_post(f"{server.url}/v1/query", raw=b"")
    assert status == 400
    assert _error(body, status)["code"] == "bad_request"


def test_unknown_tenant_envelope(server):
    status, body, _ = http_post(
        f"{server.url}/v1/query",
        payload={"tenant": "ghost", "statement": SALES_STATEMENT},
    )
    assert status == 404
    error = _error(body, status)
    assert error["code"] == "unknown_tenant"
    assert "ghost" in error["message"]


def test_lint_failure_envelope_carries_assess_codes(server):
    status, body, _ = http_post(
        f"{server.url}/v1/query",
        payload={"tenant": "acme",
                 "statement": "with NOPE by month assess storeSales labels quartiles"},
    )
    assert status == 422
    error = _error(body, status)
    assert error["code"] == "lint_failed"
    codes = {d["code"] for d in error["diagnostics"]}
    assert codes and all(code.startswith("ASSESS") for code in codes)
    assert any(code in error["message"] for code in codes)


def test_lint_failure_in_batch_names_statement(server):
    status, body, _ = http_post(
        f"{server.url}/v1/batch",
        payload={"tenant": "acme",
                 "statements": [
                     SALES_STATEMENT,
                     "with NOPE by month assess storeSales labels quartiles",
                 ]},
    )
    assert status == 422
    error = _error(body, status)
    assert error["code"] == "lint_failed"
    assert "statement 1" in error["message"]


def test_bad_plan_envelope(server):
    status, body, _ = http_post(
        f"{server.url}/v1/query",
        payload={"tenant": "acme", "statement": SALES_STATEMENT,
                 "plan": "WAT"},
    )
    assert status == 400
    assert _error(body, status)["code"] == "bad_request"


def test_bad_deadline_envelope(server):
    status, body, _ = http_post(
        f"{server.url}/v1/query",
        payload={"tenant": "acme", "statement": SALES_STATEMENT,
                 "deadline_s": -1},
    )
    assert status == 400
    assert _error(body, status)["code"] == "bad_request"


def test_wrong_method_envelope(server):
    status, body, _ = http_get(f"{server.url}/v1/query")
    assert status == 405
    assert _error(body, status)["code"] == "method_not_allowed"
    status, body, _ = http_post(f"{server.url}/v1/health", raw=b"{}")
    assert status == 405
    assert _error(body, status)["code"] == "method_not_allowed"


def test_unknown_path_envelope(server):
    status, body, _ = http_get(f"{server.url}/v1/nope")
    assert status == 404
    assert _error(body, status)["code"] == "not_found"


def test_unknown_tenant_stats_envelope(server):
    status, body, _ = http_get(f"{server.url}/v1/tenants/ghost/stats")
    assert status == 404
    assert _error(body, status)["code"] == "unknown_tenant"


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_load_config_json_roundtrip(tmp_path):
    document = {
        "host": "127.0.0.1",
        "port": 0,
        "admission": {"max_queue": 3, "deadline_s": 7.5},
        "tenants": {
            "a": {"cube": "sales", "rows": 1000, "pool_size": 1},
            "b": {"cube": "ssb", "rows": 2000, "cache_cells": 50_000},
        },
    }
    path = tmp_path / "server.json"
    path.write_text(json.dumps(document))
    config = load_config(path)
    assert sorted(config.tenants) == ["a", "b"]
    assert config.admission.max_queue == 3
    assert config.admission.deadline_s == 7.5
    assert config.tenants["b"].cache_cells == 50_000


def test_load_config_toml(tmp_path):
    tomllib = pytest.importorskip("tomllib")
    assert tomllib is not None
    path = tmp_path / "server.toml"
    path.write_text(
        'host = "127.0.0.1"\nport = 0\n'
        "[admission]\nmax_queue = 2\n"
        '[tenants.acme]\ncube = "sales"\nrows = 1000\n'
    )
    config = load_config(path)
    assert config.admission.max_queue == 2
    assert config.tenants["acme"].rows == 1000


@pytest.mark.parametrize("document, fragment", [
    ({}, "tenants"),
    ({"tenants": {}}, "tenants"),
    ({"tenants": {"a": {"cube": "nope"}}}, "cube"),
    ({"tenants": {"a": {"cube": "sales", "pool_size": 0}}}, "pool_size"),
    ({"tenants": {"a": {"cube": "sales", "wat": 1}}}, "unknown"),
    ({"tenants": {"a": {"cube": "sales"}}, "admission": {"max_queue": -1}},
     "max_queue"),
    ({"tenants": {"a": {"cube": "sales"}}, "port": 99999}, "port"),
    ({"tenants": {"bad id": {"cube": "sales"}}}, "bad id"),
])
def test_config_rejects(document, fragment):
    with pytest.raises(ServerConfigError) as excinfo:
        ServerConfig.from_dict(document)
    assert fragment in str(excinfo.value)


def test_duplicate_tenant_rejected():
    with pytest.raises(ServerConfigError, match="duplicate"):
        ServerConfig(tenants=[
            TenantConfig("a", cube="sales"),
            TenantConfig("a", cube="ssb"),
        ])


def test_check_mode_never_serves(capsys):
    from repro.server import serve_main

    code = serve_main([
        "--cube", "sales", "--rows", "1000", "--tenants", "a,b",
        "--port", "0", "--check",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "tenant a" in out and "tenant b" in out
    assert "/v1/query" in out


def test_serve_main_rejects_bad_config(tmp_path, capsys):
    from repro.server import serve_main

    path = tmp_path / "bad.json"
    path.write_text("{\"tenants\": {}}")
    assert serve_main(["--config", str(path), "--check"]) == 2
    assert "tenants" in capsys.readouterr().err


def test_server_requires_deadline_cap(server):
    # A request deadline beyond the admission cap is clamped, not honored.
    status, document, _ = post_json(
        f"{server.url}/v1/query",
        {"tenant": "acme", "statement": SALES_STATEMENT,
         "deadline_s": 10_000},
    )
    assert status == 200
    assert document["rows"] > 0


def test_requests_counted_in_health(server):
    _, before = get_json(f"{server.url}/v1/health")
    post_json(f"{server.url}/v1/query",
              {"tenant": "acme", "statement": SALES_STATEMENT})
    _, after = get_json(f"{server.url}/v1/health")
    assert after["requests_total"] >= before["requests_total"] + 2
