"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_session, main, run_statement


class TestBuildSession:
    def test_sales_cube(self):
        session = build_session("sales", rows=2_000)
        assert "SALES" in session.engine.cube_names()

    def test_ssb_cube(self):
        session = build_session("ssb", rows=5_000)
        assert {"SSB", "BUDGET"} <= set(session.engine.cube_names())

    def test_unknown_cube(self):
        with pytest.raises(ValueError):
            build_session("mondrian", rows=None)


class TestOneShot:
    STATEMENT = "with SALES by month assess storeSales labels quartiles"

    def test_statement_prints_table(self, capsys):
        code = main(["--cube", "sales", "--rows", "3000", self.STATEMENT])
        captured = capsys.readouterr()
        assert code == 0
        assert "label" in captured.out
        assert "plan" in captured.out

    def test_explain_flag(self, capsys):
        code = main(
            ["--cube", "sales", "--rows", "3000", "--explain", self.STATEMENT]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Plan NP" in captured.out
        assert "select" in captured.out

    def test_plan_flag(self, capsys):
        statement = (
            "with SALES for country = 'Italy' by product, country "
            "assess quantity against country = 'France' labels quartiles"
        )
        code = main(["--cube", "sales", "--rows", "3000", "--plan", "JOP", statement])
        captured = capsys.readouterr()
        assert code == 0
        assert "plan JOP" in captured.out

    def test_limit_flag(self, capsys):
        code = main(["--cube", "sales", "--rows", "3000", "--limit", "2",
                     self.STATEMENT])
        captured = capsys.readouterr()
        assert code == 0
        assert "more cells" in captured.out

    def test_bad_statement_returns_nonzero(self, capsys):
        code = main(["--cube", "sales", "--rows", "3000", "with NOPE by x"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error" in captured.err


class TestRunStatement:
    def test_error_path(self, sales_session, capsys):
        code = run_statement(
            sales_session, "with SALES by month assess storeSales labels nope",
            plan="best", explain=False, limit=5,
        )
        assert code == 1

    def test_success_path(self, sales_session, capsys):
        code = run_statement(
            sales_session, "with SALES by year assess storeSales labels median",
            plan="best", explain=False, limit=5,
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "2 cells" in captured.out


class TestRepl:
    def test_repl_executes_then_quits(self, monkeypatch, capsys):
        lines = iter([
            "with SALES by year assess storeSales labels median;",
            "quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main(["--cube", "sales", "--rows", "3000"])
        captured = capsys.readouterr()
        assert code == 0
        assert "median" in captured.out or "label" in captured.out

    def test_repl_multiline_statement(self, monkeypatch, capsys):
        lines = iter([
            "with SALES by year",
            "assess storeSales labels median;",
            "exit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main(["--cube", "sales", "--rows", "3000"])
        captured = capsys.readouterr()
        assert code == 0
        assert "label" in captured.out

    def test_repl_eof_exits(self, monkeypatch):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["--cube", "sales", "--rows", "3000"]) == 0
