"""Observability: tracer spans, metrics registry, EXPLAIN ANALYZE.

The central property mirrors the cache and batch suites': tracing is an
*observer* — with the tracer installed, every answer is bit-identical to
untraced execution, across random star schemas, warm-cache replays, and
fused batches.  The rest of the suite pins the span-tree shape per
algebra operator, metrics propagation/reset semantics, the
estimated-vs-actual annotations of ``explain_analyze``, and the trace
export schema.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AssessSession
from repro.batch import results_identical
from repro.core.errors import ExecutionError
from repro.datagen import sales_engine
from repro.obs import (
    METRICS,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    active,
    install,
    tracing,
)
from repro.obs.analyze import trace_diagnostics
from repro.obs.export import (
    TraceFormatError,
    summarize_spans,
    trace_to_chrome,
    trace_to_json,
    validate_trace,
)

from tests.test_batch import _random_statements
from tests.test_cache import _random_engine

SALES_STATEMENT = """
    with SALES for year = '1997' by month, product assess quantity
    against 1000 using ratio(quantity, 1000)
    labels {[0, 0.9): low, [0.9, 1.1]: expected, (1.1, inf): high}
"""


def _fresh_sales_session() -> AssessSession:
    return AssessSession(sales_engine(n_rows=2_000, seed=42))


def _ssb_runner_session(rows: int = 4_000) -> AssessSession:
    from repro.experiments.statements import prepare_engine

    return AssessSession(prepare_engine(rows))


def _span_names(tracer: Tracer):
    names = []
    for root in tracer.roots:
        for span in root.walk():
            names.append(span.name)
    return names


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_inc_get_snapshot(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.inc("a", 2)
        assert metrics.get("a") == 3
        assert metrics.get("missing") == 0
        assert metrics.snapshot()["counters"] == {"a": 3}

    def test_observe_histogram(self):
        metrics = MetricsRegistry()
        metrics.observe("t", 2.0)
        metrics.observe("t", 4.0)
        bucket = metrics.histogram("t")
        assert bucket["count"] == 2
        assert bucket["total"] == pytest.approx(6.0)
        assert bucket["min"] == pytest.approx(2.0)
        assert bucket["max"] == pytest.approx(4.0)

    def test_parent_propagation_with_prefix(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent, prefix="cache.")
        child.inc("hits", 2)
        child.observe("seconds", 0.5)
        assert child.get("hits") == 2
        assert parent.get("cache.hits") == 2
        assert parent.histogram("cache.seconds")["count"] == 1

    def test_reset_is_local(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.inc("n", 5)
        child.reset()
        assert child.get("n") == 0
        assert parent.get("n") == 5  # reset does not cascade upward

    def test_engine_metrics_roll_up_to_global(self):
        session = _fresh_sales_session()
        before = METRICS.get("engine.scans")
        session.assess(SALES_STATEMENT)
        assert session.engine.metrics.get("engine.scans") >= 1
        assert METRICS.get("engine.scans") >= before + 1


# ----------------------------------------------------------------------
# Tracer basics
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_tracer_is_default_and_recordless(self):
        assert active() is NULL_TRACER
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", x=1) as span:
            span.set(y=2)  # must be a no-op, not an error

    def test_tracing_installs_and_restores(self):
        with tracing() as tracer:
            assert active() is tracer
        assert active() is NULL_TRACER

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert active() is NULL_TRACER

    def test_span_nesting_and_self_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.self_time <= outer.duration
        assert outer.duration >= outer.children[0].duration

    def test_event_is_zero_duration_child(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("marker", detail="x")
        (outer,) = tracer.roots
        (marker,) = outer.children
        assert marker.duration == 0.0
        assert marker.attrs["detail"] == "x"

    def test_span_durations_feed_metrics(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        with tracer.span("op.get"):
            pass
        assert metrics.histogram("op.get.seconds")["count"] == 1


# ----------------------------------------------------------------------
# Span-tree shape per execution layer
# ----------------------------------------------------------------------
class TestSpanShapes:
    def test_sales_np_operator_chain(self):
        session = _fresh_sales_session()
        with tracing() as tracer:
            session.assess(SALES_STATEMENT, plan="NP")
        (root,) = tracer.roots
        chain = []
        span = root
        while True:
            chain.append(span.name)
            ops = [c for c in span.children if c.name.startswith("op.")]
            if not ops:
                break
            span = ops[0]
        assert chain == [
            "op.labeling", "op.h-transform", "op.add-constant", "op.get",
        ]

    def test_operator_spans_carry_row_counts(self):
        session = _fresh_sales_session()
        with tracing() as tracer:
            result = session.assess(SALES_STATEMENT, plan="NP")
        (root,) = tracer.roots
        for span in root.walk():
            if span.name.startswith("op."):
                assert span.attrs["rows_out"] >= 0
                assert span.attrs["cells_out"] >= span.attrs["rows_out"]
                assert "step" in span.attrs
        assert root.attrs["rows_out"] == len(result)

    def test_engine_scan_children(self):
        session = _fresh_sales_session()
        with tracing() as tracer:
            session.assess(SALES_STATEMENT, plan="NP")
        names = _span_names(tracer)
        assert "engine.scan" in names
        assert "engine.semijoin" in names
        assert "engine.groupby" in names
        assert "cache.lookup" in names

    def test_cache_hit_and_derivation_spans(self):
        session = _fresh_sales_session()
        with tracing() as tracer:
            session.assess(SALES_STATEMENT)  # cold: miss
            session.assess(SALES_STATEMENT)  # exact hit
            # coarser group-by: derived by roll-up from the cached result
            session.assess(
                """with SALES for year = '1997' by year, product
                   assess quantity against 1000 using ratio(quantity, 1000)
                   labels {[0, 0.9): low, [0.9, 1.1]: ok, (1.1, inf): high}"""
            )
        lookups = [
            span for root in tracer.roots for span in root.walk()
            if span.name == "cache.lookup"
        ]
        outcomes = [span.attrs["outcome"] for span in lookups]
        assert outcomes == ["miss", "hit", "derive"]
        for span in lookups:
            assert "fingerprint" in span.attrs
        derivations = [
            span for root in tracer.roots for span in root.walk()
            if span.name == "cache.rollup-derivation"
        ]
        assert len(derivations) == 1
        assert "source_fingerprint" in derivations[0].attrs

    def test_join_and_pivot_plan_spans(self):
        from repro.experiments.statements import statement_text

        session = _ssb_runner_session()
        with tracing() as tracer:
            session.assess(statement_text("External"), plan="JOP")
            session.assess(statement_text("Sibling"), plan="POP")
            session.assess(statement_text("Past"), plan="NP")
        names = _span_names(tracer)
        assert "op.join" in names
        assert "engine.join" in names
        assert "op.pivot" in names
        assert "engine.pivot" in names
        assert "op.cell-transform" in names  # Past's Predict operator
        sides = [
            span.attrs["side"]
            for root in tracer.roots
            for span in root.walk()
            if span.name == "engine.side"
        ]
        assert {"left", "right", "base"} <= set(sides)

    def test_batch_span_nesting(self):
        from repro.experiments.statements import INTENTIONS, statement_text

        session = _ssb_runner_session()
        statements = [statement_text(name) for name in INTENTIONS]
        with tracing() as tracer:
            batch = session.execute_many(statements)
        (root,) = tracer.roots
        assert root.name == "batch"
        assert root.attrs["statements"] == len(statements)
        children = [c.name for c in root.children]
        assert children == ["statement"] * len(statements)
        assert [c.attrs["index"] for c in root.children] == [0, 1, 2, 3]
        names = _span_names(tracer)
        if batch.report.fused_groups:
            assert "batch.fused-group" in names
        if batch.report.shared_hits:
            assert "batch.cse-hit" in names


# ----------------------------------------------------------------------
# The observer property: traced ≡ untraced, bit-identical
# ----------------------------------------------------------------------
class TestTracedUntracedIdentity:
    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_random_sessions_identical(self, seed):
        rng = np.random.default_rng(seed)
        engine, hierarchies = _random_engine(seed)
        reference_engine, _ = _random_engine(seed)
        traced_session = AssessSession(engine)
        reference_session = AssessSession(reference_engine)
        statements = _random_statements(rng, hierarchies, count=6)
        # Two passes: the second exercises warm-cache (hit/derive) paths
        # under tracing too.
        for _ in range(2):
            for text in statements:
                with tracing():
                    ours = traced_session.assess(text)
                theirs = reference_session.assess(text)
                assert results_identical(ours, theirs)

    @pytest.mark.parametrize("seed", [11, 23])
    def test_traced_batch_identical(self, seed):
        rng = np.random.default_rng(seed)
        engine, hierarchies = _random_engine(seed)
        reference_engine, _ = _random_engine(seed)
        batch_session = AssessSession(engine)
        reference_session = AssessSession(reference_engine)
        statements = _random_statements(rng, hierarchies, count=8)
        with tracing():
            batch = batch_session.execute_many(statements)
        for ours, text in zip(batch.results, statements):
            theirs = reference_session.assess(text)
            assert results_identical(ours, theirs)

    def test_traced_fused_workload_identical(self):
        from repro.experiments.statements import INTENTIONS, statement_text

        statements = [statement_text(name) for name in INTENTIONS]
        traced = _ssb_runner_session()
        untraced = _ssb_runner_session()
        with tracing():
            ours = traced.execute_many(statements)
        theirs = untraced.execute_many(statements)
        for left, right in zip(ours.results, theirs.results):
            assert results_identical(left, right)


# ----------------------------------------------------------------------
# cache_stats compatibility and batch counters
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_stats_served_from_metrics(self):
        session = _fresh_sales_session()
        session.assess(SALES_STATEMENT)
        session.assess(SALES_STATEMENT)
        stats = session.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert session.engine.metrics.get("cache.hits") == 1

    def test_batch_counters_in_stats(self):
        from repro.experiments.statements import INTENTIONS, statement_text

        session = _ssb_runner_session()
        batch = session.execute_many(
            [statement_text(name) for name in INTENTIONS]
        )
        stats = session.cache_stats()
        assert stats["batch_statements"] == 4
        assert stats["batch_cse_hits"] == batch.report.shared_hits
        assert stats["batch_fused_groups"] == batch.report.fused_groups


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_every_node_annotated_all_intentions_and_plans(self):
        from repro.experiments.statements import INTENTIONS, statement_text

        session = _ssb_runner_session()
        for intention in INTENTIONS:
            text = statement_text(intention)
            for plan_name in session.feasible_plans(text):
                report = session.explain_analyze(text, plan=plan_name)
                (annotations,) = report.annotations
                assert annotations, f"{intention}/{plan_name}: no nodes"
                for annotation in annotations:
                    assert annotation.est_rows is not None
                    assert annotation.est_cost is not None
                    if annotation.executed:
                        assert annotation.actual_rows is not None, (
                            f"{intention}/{plan_name}: node without actuals"
                        )

    def test_batch_mode_annotates_every_statement(self):
        from repro.experiments.statements import INTENTIONS, statement_text

        session = _ssb_runner_session()
        statements = [statement_text(name) for name in INTENTIONS]
        report = session.explain_analyze(statements)
        assert len(report.annotations) == len(statements)
        assert report.batch_report is not None
        for annotations in report.annotations:
            executed = [a for a in annotations if a.executed]
            assert executed
            for annotation in executed:
                assert annotation.actual_rows is not None

    def test_render_and_estimates(self):
        session = _fresh_sales_session()
        report = session.explain_analyze(SALES_STATEMENT)
        text = report.render()
        assert "estimated cost" in text
        assert "est rows≈" in text
        assert "ms" in text
        assert len(report.result) > 0

    def test_provenance_reflects_cache(self):
        session = _fresh_sales_session()
        session.assess(SALES_STATEMENT)  # warm the cache
        report = session.explain_analyze(SALES_STATEMENT)
        (annotations,) = report.annotations
        provenances = {a.provenance for a in annotations if a.provenance}
        assert "cache-hit" in provenances

    def test_explain_includes_estimates(self):
        session = _fresh_sales_session()
        text = session.explain(SALES_STATEMENT)
        assert "est rows≈" in text
        assert "-- pushed query 1" in text

    def test_unregistered_cube_raises_assess401(self):
        session = _fresh_sales_session()
        bad = SALES_STATEMENT.replace("SALES", "NOPE")
        bag = trace_diagnostics(session, [bad])
        assert [d.code for d in bag.diagnostics] == ["ASSESS401"]
        assert bag.has_errors
        with pytest.raises(ExecutionError, match="ASSESS401"):
            session.explain_analyze(bad)

    def test_registered_cube_passes_preflight(self):
        session = _fresh_sales_session()
        bag = trace_diagnostics(session, [SALES_STATEMENT])
        assert not bag.diagnostics


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
class TestExport:
    def _traced(self):
        session = _fresh_sales_session()
        with tracing() as tracer:
            session.assess(SALES_STATEMENT)
        return tracer

    def test_json_roundtrip_validates(self):
        import json

        tracer = self._traced()
        document = trace_to_json(tracer)
        validate_trace(json.loads(json.dumps(document)))
        assert document["version"] == 1
        assert document["spans"][0]["name"] == "op.labeling"

    def test_explain_analyze_to_json_validates(self):
        session = _fresh_sales_session()
        report = session.explain_analyze(SALES_STATEMENT)
        document = report.to_json()
        validate_trace(document["trace"])
        (statement,) = document["statements"]
        assert statement["plan"]
        assert statement["nodes"]

    def test_chrome_events(self):
        events = trace_to_chrome(self._traced())
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_validate_rejects_malformed(self):
        with pytest.raises(TraceFormatError):
            validate_trace({"version": 2, "spans": []})
        with pytest.raises(TraceFormatError):
            validate_trace({"version": 1, "spans": [{"name": ""}]})
        with pytest.raises(TraceFormatError):
            validate_trace(
                {"version": 1,
                 "spans": [{"name": "x", "start_us": -1.0,
                            "duration_us": 0.0, "attrs": {}, "children": []}]}
            )

    def test_summarize_spans(self):
        summary = summarize_spans(self._traced())
        assert summary["op.get"]["count"] == 1
        assert summary["op.get"]["total_ms"] >= summary["op.get"]["self_ms"]
