"""Differential soundness tests for the workload analyzer.

Every "safe" verdict the analyzer emits is a falsifiable claim about the
runtime, and these tests falsify them against actual execution:

* predicted-warm statement  => zero fact scans when the workload is run
  in order through a fresh session (``engine.scans`` delta is 0), and
* predicted fusable-exact   => the batch really executes the group as one
  fused scan with zero exactness fallbacks, bit-identical to sequential,
* predicted parallel-safe   => forcing the morsel-parallel path causes no
  serial fallback (``engine.parallel.fallbacks`` delta is 0).

The counters come from the metrics registry; the checks run over both
bundled example workloads and over seeded random multi-statement
workloads on the SALES cube (roll-up chains over exact and inexact
measures).  The analyzer must never claim "safe" and be wrong; claiming
nothing (unknown) is always allowed.
"""

import math
import random
from pathlib import Path

import pytest

from repro.analysis.lint import extract_statements
from repro.api import AssessSession
from repro.datagen.sales import sales_engine
from repro.experiments.statements import prepare_engine

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = [
    REPO_ROOT / "examples" / "ssb_batch_workload.assess",
    REPO_ROOT / "examples" / "ssb_trace_session.assess",
]


def rows_equal(rows_a, rows_b):
    """Bit-identity over result rows, treating NaN as equal to NaN."""
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if set(row_a) != set(row_b):
            return False
        for key, value_a in row_a.items():
            value_b = row_b[key]
            if (
                isinstance(value_a, float)
                and isinstance(value_b, float)
                and math.isnan(value_a)
                and math.isnan(value_b)
            ):
                continue
            if value_a != value_b:
                return False
    return True


def check_soundness(make_engine, text):
    """Run the three differentials for one workload; return prediction counts."""
    statements = extract_statements(text)

    report = AssessSession(make_engine()).analyze_workload(text)
    warm = set(report.warm_statements())
    parallel_safe = {
        info.index for info in report.statements if info.parallel_safe is True
    }
    exact_fusions = [f for f in report.fusions if f.exact]

    # Differential 1: sequential fresh session.  A warm statement must not
    # touch the fact table (exact hit or derivation from an earlier store).
    engine_seq = make_engine()
    session_seq = AssessSession(engine_seq)
    sequential = []
    for index, statement in enumerate(statements):
        before = engine_seq.metrics.get("engine.scans")
        sequential.append(session_seq.assess(statement))
        delta = engine_seq.metrics.get("engine.scans") - before
        if index in warm:
            assert delta == 0, (
                f"statement {index} predicted warm but scanned {delta}x"
            )
    if warm:
        stats = session_seq.cache_stats()
        assert stats["hits"] + stats["derivations"] >= len(warm)

    # Differential 2: execute_many.  Exact fusion predictions must fuse
    # without fallback, and the batch must stay bit-identical.
    engine_batch = make_engine()
    batch = AssessSession(engine_batch).execute_many(statements)
    fused_scans = engine_batch.metrics.get("engine.fused_scans")
    fallbacks = engine_batch.metrics.get("engine.fused_fallbacks")
    if report.fusions and all(f.exact for f in report.fusions):
        assert fallbacks == 0, f"exact-only prediction but {fallbacks} fallbacks"
        assert fused_scans == len(report.fusions)
    for index, (got, want) in enumerate(zip(batch.results, sequential)):
        assert rows_equal(got.cube.to_rows(), want.cube.to_rows()), (
            f"statement {index}: batch result differs from sequential"
        )

    # Differential 3: force the parallel path and watch for fallbacks.
    engine_par = make_engine()
    session_par = AssessSession(engine_par, parallelism=2)
    engine_par.executor.parallel.min_rows = 0
    for index, statement in enumerate(statements):
        before = engine_par.metrics.get("engine.parallel.fallbacks")
        result = session_par.assess(statement)
        delta = engine_par.metrics.get("engine.parallel.fallbacks") - before
        if index in parallel_safe:
            assert delta == 0, (
                f"statement {index} predicted parallel-safe "
                f"but fell back {delta}x"
            )
        assert rows_equal(result.cube.to_rows(), sequential[index].cube.to_rows())

    return {
        "warm": len(warm),
        "edges": len(report.derivations),
        "exact_fusions": len(exact_fusions),
        "parallel_safe": len(parallel_safe),
    }


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_workloads_sound(path):
    counts = check_soundness(
        lambda: prepare_engine(lineorder_rows=2000), path.read_text()
    )
    # The acceptance examples must yield non-vacuous predictions.
    assert counts["warm"] >= 1
    assert counts["edges"] >= 1
    assert counts["parallel_safe"] >= 1


# ---------------------------------------------------------------------------
# Property test: random multi-statement workloads on SALES
# ---------------------------------------------------------------------------
GROUP_BYS = [
    "month, category",
    "month",
    "year",
    "category",
    "year, category",
    "month, type",
    "type",
    "year, type",
    "month, country",
    "country",
]
PREDICATES = ["for year = '1996' ", "for year = '1997' ", ""]
MEASURES = ["quantity", "storeSales"]  # exact / inexact
LABELS = "labels {[0, 1): low, [1, inf): high}"


def random_workload(rng):
    """Roll-up-chain-biased workload: shared predicate, mixed granularity."""
    predicate = rng.choice(PREDICATES)
    dominant = rng.choice(MEASURES)
    statements = []
    for _ in range(rng.randint(4, 7)):
        group_by = rng.choice(GROUP_BYS)
        measure = dominant if rng.random() < 0.8 else rng.choice(MEASURES)
        statements.append(
            f"with SALES {predicate}by {group_by} assess {measure} "
            f"against 100 using ratio({measure}, 100) {LABELS}"
        )
    return ";\n".join(statements)


@pytest.mark.parametrize("seed", range(8))
def test_random_sales_workloads_sound(seed):
    text = random_workload(random.Random(seed))
    check_soundness(lambda: sales_engine(n_rows=2000, seed=11), text)


def test_random_workloads_not_vacuous():
    """Across the seeds, the analyzer must actually predict something."""
    totals = {"warm": 0, "edges": 0, "exact_fusions": 0, "parallel_safe": 0}
    for seed in range(8):
        text = random_workload(random.Random(seed))
        report = AssessSession(sales_engine(n_rows=2000, seed=11)).analyze_workload(
            text
        )
        totals["warm"] += len(report.warm_statements())
        totals["edges"] += len(report.derivations)
        totals["exact_fusions"] += sum(1 for f in report.fusions if f.exact)
        totals["parallel_safe"] += sum(
            1 for info in report.statements if info.parallel_safe is True
        )
    assert totals["warm"] >= 1
    assert totals["edges"] >= 1
    assert totals["exact_fusions"] >= 1
    assert totals["parallel_safe"] >= 1
