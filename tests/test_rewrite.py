"""Unit tests for the P1–P3 rewrite properties (Section 5.1).

P1 is checked as a semantic property on cubes; P2/P3 both structurally (the
rewritten trees have the right shape) and semantically (all plans of a
statement produce identical assessment results).
"""

import numpy as np
import pytest

from repro.algebra import (
    PlanExecutor,
    build_all_plans,
    build_naive_plan,
    p1_commutes,
    push_join_to_sql,
    replace_join_with_pivot,
)
from repro.core import (
    Cube,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Level,
    Measure,
    PlanError,
)


@pytest.fixture()
def small_cube():
    schema = CubeSchema(
        "S", [Hierarchy("P", [Level("product")])],
        [Measure("quantity"), Measure("storeSales")],
    )
    gb = GroupBySet(schema, ["product"])
    return Cube(
        schema, gb,
        {"product": ["a", "b", "c", "d"]},
        {"quantity": [4.0, 8.0, 15.0, 16.0], "storeSales": [1.0, 2.0, 3.0, 4.0]},
    )


class TestP1:
    def test_independent_transforms_commute(self, small_cube):
        def add_double(cube):
            return cube.with_measure("double", cube.measure("quantity") * 2)

        def add_half(cube):
            return cube.with_measure("half", cube.measure("storeSales") / 2)

        assert p1_commutes(small_cube, add_double, add_half)

    def test_holistic_and_cell_transforms_commute(self, small_cube):
        from repro.functions import min_max_norm

        def holistic(cube):
            return cube.with_measure("norm", min_max_norm(cube.measure("quantity")))

        def cellwise(cube):
            return cube.with_measure("diff", cube.measure("quantity") - 10.0)

        assert p1_commutes(small_cube, holistic, cellwise)

    def test_dependent_transforms_do_not_commute(self, small_cube):
        """When nf ∈ M of the other transform, P1's precondition fails."""

        def first(cube):
            return cube.with_measure("x", cube.measure("quantity") + 1)

        def second(cube):
            if "x" in cube.measures:
                return cube.with_measure("y", cube.measure("x") * 2)
            return cube.with_measure("y", np.zeros(len(cube)))

        assert not p1_commutes(small_cube, first, second)


SIBLING = """
with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""
PAST = """
with SALES for month = '1997-07', store = 'SmartMart' by month, store
assess storeSales against past 4
using ratio(storeSales, benchmark.storeSales)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""
PAST_WIDE = """
with SALES for month = '1997-07' by month, store
assess storeSales against past 3
using ratio(storeSales, benchmark.storeSales)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""
EXTERNAL = """
with SSB by month, category
assess revenue against BUDGET.expected_revenue
using normalizedDifference(revenue, benchmark.expected_revenue)
labels {[-inf, -0.1): under, [-0.1, 0.1]: onTrack, (0.1, inf): over}
"""
PAST_SPARSE = """
with SSB for month = '1998-06' by month, customer
assess revenue against past 4
using ratio(revenue, benchmark.revenue)
labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
"""


def results_as_comparable(result):
    return {
        cell.coordinate: (
            round(cell.value, 6),
            round(cell.benchmark, 6),
            round(cell.comparison, 9),
            cell.label,
        )
        for cell in result
    }


class TestRewriteStructure:
    def test_p2_requires_a_join(self, sales_session):
        statement = sales_session.parse(
            "with SALES by month assess storeSales labels quartiles"
        )
        plan = build_naive_plan(statement, sales_session.engine)
        with pytest.raises(PlanError):
            push_join_to_sql(plan)

    def test_p3_requires_same_source(self, ssb_session):
        statement = ssb_session.parse(EXTERNAL)
        jop = push_join_to_sql(build_naive_plan(statement, ssb_session.engine))
        with pytest.raises(PlanError):
            replace_join_with_pivot(jop)

    def test_p3_merges_predicates(self, sales_session):
        statement = sales_session.parse(SIBLING)
        jop = push_join_to_sql(build_naive_plan(statement, sales_session.engine))
        pop = replace_join_with_pivot(jop)
        from repro.algebra import GetNode

        get = [n for n in pop.nodes() if isinstance(n, GetNode)][0]
        assert get.query.predicate_on("country").member_set() == frozenset(
            {"Italy", "France"}
        )
        # the unrelated predicate survives unchanged
        assert get.query.predicate_on("type").member_set() == frozenset(
            {"Fresh Fruit"}
        )

    def test_rewrites_do_not_mutate_input(self, sales_session):
        statement = sales_session.parse(SIBLING)
        np_plan = build_naive_plan(statement, sales_session.engine)
        before = np_plan.explain()
        push_join_to_sql(np_plan)
        assert np_plan.explain() == before


@pytest.mark.parametrize("statement_text,engine_fixture", [
    (SIBLING, "sales"),
    (PAST, "sales"),
    (PAST_WIDE, "sales"),
    (EXTERNAL, "ssb"),
    (PAST_SPARSE, "ssb"),  # sparse cube: cells missing from some past months
])
class TestPlanEquivalence:
    """All feasible plans of a statement must produce identical results."""

    def test_all_plans_agree(self, statement_text, engine_fixture, request):
        engine = request.getfixturevalue(engine_fixture)
        from repro.api import AssessSession

        session = AssessSession(engine)
        statement = session.parse(statement_text)
        executor = PlanExecutor(engine, session.registry)
        plans = build_all_plans(statement, engine)
        results = {
            name: results_as_comparable(executor.execute(plan, statement))
            for name, plan in plans.items()
        }
        reference = results.pop("NP")
        assert len(reference) > 0
        for name, outcome in results.items():
            assert outcome == reference, f"plan {name} diverges from NP"
