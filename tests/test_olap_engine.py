"""Unit tests for the OLAP layer (cube queries → engine queries → cubes)."""

import numpy as np
import pytest

from repro.core import CubeQuery, EngineError, GroupBySet, Predicate, SchemaError
from repro.datagen import brute_force_rollup
from repro.olap import MultidimensionalEngine, hydrate_hierarchies


class TestRegistration:
    def test_lookup_and_names(self, sales):
        assert sales.has_cube("SALES")
        assert not sales.has_cube("NOPE")
        assert "SALES" in sales.cube_names()
        with pytest.raises(EngineError):
            sales.cube("NOPE")

    def test_duplicate_registration_rejected(self, sales):
        registered = sales.cube("SALES")
        with pytest.raises(EngineError):
            sales.register_cube("SALES", registered.schema, registered.star)


class TestGet:
    def test_get_aggregates_correctly_vs_oracle(self, sales):
        """The engine's get must equal a cell-by-cell roll-up of a finer get."""
        schema = sales.cube("SALES").schema
        fine = sales.get(
            CubeQuery("SALES", GroupBySet(schema, ["month", "type"]), (),
                      ("quantity",))
        )
        coarse = sales.get(
            CubeQuery("SALES", GroupBySet(schema, ["year", "category"]), (),
                      ("quantity",))
        )
        oracle = brute_force_rollup(
            fine, GroupBySet(schema, ["year", "category"]), "quantity"
        )
        assert len(coarse) == len(oracle)
        for coordinate, values in coarse.cells():
            assert values["quantity"] == pytest.approx(oracle[coordinate])

    def test_predicates_filter(self, sales):
        schema = sales.cube("SALES").schema
        result = sales.get(
            CubeQuery(
                "SALES",
                GroupBySet(schema, ["country"]),
                (Predicate.eq("country", "Italy"),),
                ("quantity",),
            )
        )
        assert len(result) == 1
        assert result.coordinates() == [("Italy",)]

    def test_multiple_measures(self, sales):
        schema = sales.cube("SALES").schema
        result = sales.get(
            CubeQuery("SALES", GroupBySet(schema, ["year"]), (),
                      ("quantity", "storeSales"))
        )
        assert result.measure_names == ("quantity", "storeSales")

    def test_empty_measures_fetches_all(self, sales):
        schema = sales.cube("SALES").schema
        result = sales.get(CubeQuery("SALES", GroupBySet(schema, ["year"]), (), ()))
        assert set(result.measure_names) == {"quantity", "storeSales", "storeCost"}


class TestDrillAcrossAndPivot:
    def sibling_queries(self, sales):
        schema = sales.cube("SALES").schema
        gb = GroupBySet(schema, ["product", "country"])
        base = (Predicate.eq("type", "Fresh Fruit"),)
        target = CubeQuery("SALES", gb, base + (Predicate.eq("country", "Italy"),),
                           ("quantity",))
        bench = CubeQuery("SALES", gb, base + (Predicate.eq("country", "France"),),
                          ("quantity",))
        return target, bench

    def test_drill_across_equals_memory_join(self, sales):
        target, bench = self.sibling_queries(sales)
        pushed = sales.drill_across(target, bench, ["product"])
        in_memory = sales.get(target).partial_join(sales.get(bench), ["product"])
        assert len(pushed) == len(in_memory)
        pushed_cells = dict(pushed.cells())
        for coordinate, values in in_memory.cells():
            assert pushed_cells[coordinate]["benchmark.quantity"] == pytest.approx(
                values["benchmark.quantity"]
            )

    def test_pivot_get_equals_drill_across(self, sales):
        target, bench = self.sibling_queries(sales)
        merged = target.replace_predicate(
            Predicate.eq("country", "Italy"),
            Predicate.isin("country", ["Italy", "France"]),
        )
        pivoted = sales.pivot_get(
            merged, "country", "Italy",
            {"France": {"quantity": "benchmark.quantity"}},
        )
        joined = sales.drill_across(target, bench, ["product"])
        assert len(pivoted) == len(joined)
        joined_cells = dict(joined.cells())
        for coordinate, values in pivoted.cells():
            assert joined_cells[coordinate]["benchmark.quantity"] == pytest.approx(
                values["benchmark.quantity"]
            )

    def test_multi_drill_across_column_order_is_temporal(self, sales):
        schema = sales.cube("SALES").schema
        gb = GroupBySet(schema, ["month", "store"])
        target = CubeQuery(
            "SALES", gb,
            (Predicate.eq("month", "1997-05"), Predicate.eq("store", "SmartMart")),
            ("storeSales",),
        )
        bench = CubeQuery(
            "SALES", gb,
            (Predicate.isin("month", ["1997-03", "1997-04"]),
             Predicate.eq("store", "SmartMart")),
            ("storeSales",),
        )
        joined = sales.drill_across(target, bench, ["store"], multi=True)
        assert "benchmark.storeSales_1" in joined.measure_names
        assert "benchmark.storeSales_2" in joined.measure_names
        march = sales.get(
            CubeQuery("SALES", gb,
                      (Predicate.eq("month", "1997-03"),
                       Predicate.eq("store", "SmartMart")),
                      ("storeSales",))
        )
        cell = next(iter(joined.cells()))[1]
        march_value = next(iter(march.cells()))[1]["storeSales"]
        assert cell["benchmark.storeSales_1"] == pytest.approx(march_value)


class TestDomainHelpers:
    def test_ordered_members(self, sales):
        months = sales.ordered_members("SALES", "month")
        assert months[0] == "1996-01"
        assert months == sorted(months)

    def test_predecessors(self, sales):
        past = sales.predecessors("SALES", "month", "1997-07", 4)
        assert past == ["1997-03", "1997-04", "1997-05", "1997-06"]

    def test_predecessors_clipped_at_history_start(self, sales):
        past = sales.predecessors("SALES", "month", "1996-02", 5)
        assert past == ["1996-01"]

    def test_predecessors_unknown_member(self, sales):
        with pytest.raises(SchemaError):
            sales.predecessors("SALES", "month", "2050-01", 2)

    def test_degenerate_level_members(self, ssb):
        months = ssb.ordered_members("BUDGET", "month")
        assert months == sorted(months)
        assert all(m.startswith("199") for m in months)


class TestHydration:
    def test_part_of_maps_loaded(self, sales):
        schema = sales.cube("SALES").schema
        product = schema.hierarchy("Product")
        assert product.parent_of("product", "Apple") == "Fresh Fruit"
        assert product.rollup_member("milk", "product", "category") == "Drinks"

    def test_hydration_consistency_with_star_data(self, sales):
        schema = sales.cube("SALES").schema
        store = schema.hierarchy("Store")
        assert store.rollup_member("SmartMart", "store", "country") == "Italy"

    def test_rehydration_is_idempotent(self, sales):
        registered = sales.cube("SALES")
        hydrate_hierarchies(registered.schema, registered.star, sales.catalog)
        assert (
            registered.schema.hierarchy("Product").parent_of("product", "Apple")
            == "Fresh Fruit"
        )


class TestSqlRendering:
    def test_sql_for_get(self, sales):
        schema = sales.cube("SALES").schema
        sql = sales.sql_for_get(
            CubeQuery("SALES", GroupBySet(schema, ["month"]), (), ("storeSales",))
        )
        assert "group by" in sql and "sales_fact" in sql

    def test_sql_for_pivot_mentions_pivot(self, sales):
        schema = sales.cube("SALES").schema
        merged = CubeQuery(
            "SALES", GroupBySet(schema, ["product", "country"]),
            (Predicate.isin("country", ["Italy", "France"]),), ("quantity",),
        )
        sql = sales.sql_for_pivot(
            merged, "country", "Italy", {"France": {"quantity": "bc"}}
        )
        assert "pivot (" in sql
