"""Unit tests for the columnar table storage and key indexes."""

import numpy as np
import pytest

from repro.core import EngineError
from repro.engine import Catalog, Table, table_from_rows


class TestTable:
    def test_basic_construction(self):
        table = Table("t", {"a": np.array([1, 2, 3]), "b": np.array([1.0, 2.0, 3.0])})
        assert len(table) == 3
        assert table.column_names == ("a", "b")
        assert table.column("a").tolist() == [1, 2, 3]

    def test_ragged_columns_rejected(self):
        with pytest.raises(EngineError):
            Table("t", {"a": np.array([1]), "b": np.array([1, 2])})

    def test_empty_columns_rejected(self):
        with pytest.raises(EngineError):
            Table("t", {})

    def test_unknown_column(self):
        table = Table("t", {"a": np.array([1])})
        assert table.has_column("a")
        assert not table.has_column("b")
        with pytest.raises(EngineError):
            table.column("b")

    def test_head(self):
        table = Table("t", {"a": np.array([1, 2, 3])})
        assert table.head(2) == [{"a": 1}, {"a": 2}]


class TestTableFromRows:
    def test_type_inference(self):
        table = table_from_rows(
            "t",
            [
                {"i": 1, "f": 1.5, "s": "x"},
                {"i": 2, "f": 2.5, "s": "y"},
            ],
        )
        assert table.column("i").dtype == np.int64
        assert table.column("f").dtype == np.float64
        assert table.column("s").dtype == object

    def test_ragged_rows_rejected(self):
        with pytest.raises(EngineError):
            table_from_rows("t", [{"a": 1}, {"b": 2}])

    def test_empty_rejected(self):
        with pytest.raises(EngineError):
            table_from_rows("t", [])


class TestKeyIndex:
    def test_dense_key_detected(self):
        table = Table("t", {"key": np.arange(5, dtype=np.int64)})
        index = table.key_index("key")
        assert index.is_dense
        assert index.positions_of(np.array([3, 0, 4])).tolist() == [3, 0, 4]

    def test_dense_with_base_offset(self):
        table = Table("t", {"key": np.arange(10, 15, dtype=np.int64)})
        index = table.key_index("key")
        assert index.is_dense
        assert index.positions_of(np.array([12, 10])).tolist() == [2, 0]

    def test_dense_out_of_range_rejected(self):
        table = Table("t", {"key": np.arange(3, dtype=np.int64)})
        with pytest.raises(EngineError):
            table.key_index("key").positions_of(np.array([5]))

    def test_hash_index_for_strings(self):
        table = Table("t", {"key": np.array(["x", "y", "z"], dtype=object)})
        index = table.key_index("key")
        assert not index.is_dense
        assert index.positions_of(np.array(["z", "x"], dtype=object)).tolist() == [2, 0]

    def test_hash_index_unknown_key(self):
        table = Table("t", {"key": np.array(["x"], dtype=object)})
        with pytest.raises(EngineError):
            table.key_index("key").positions_of(np.array(["q"], dtype=object))

    def test_duplicate_keys_rejected(self):
        table = Table("t", {"key": np.array(["x", "x"], dtype=object)})
        with pytest.raises(EngineError):
            table.key_index("key")

    def test_index_cached(self):
        table = Table("t", {"key": np.arange(3, dtype=np.int64)})
        assert table.key_index("key") is table.key_index("key")


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        table = Table("t", {"a": np.array([1])})
        catalog.register(table)
        assert catalog.table("t") is table
        assert catalog.has_table("t")
        assert catalog.table_names() == ("t",)
        assert len(catalog) == 1

    def test_duplicate_registration(self):
        catalog = Catalog()
        catalog.register(Table("t", {"a": np.array([1])}))
        with pytest.raises(EngineError):
            catalog.register(Table("t", {"a": np.array([2])}))
        catalog.register(Table("t", {"a": np.array([2])}), replace=True)
        assert catalog.table("t").column("a").tolist() == [2]

    def test_drop(self):
        catalog = Catalog()
        catalog.register(Table("t", {"a": np.array([1])}))
        catalog.drop("t")
        assert not catalog.has_table("t")
        with pytest.raises(EngineError):
            catalog.drop("t")

    def test_unknown_table(self):
        with pytest.raises(EngineError):
            Catalog().table("missing")
