"""Unit tests for descriptive level properties (§8 extension).

"Consider cube schemas including descriptive properties of levels (e.g.,
the population of a country).  Introducing properties will enable users to
express more complex statements, e.g., to compare per capita sales of
different countries."
"""

import pytest

from repro.core import EngineError, ValidationError
from repro.datagen.sales import COUNTRY_POPULATION
from repro.engine import DimensionBinding, StarSchema

PER_CAPITA = """
with SALES for country = 'Italy' by product, country
assess quantity against country = 'France'
using ratio(quantity / population, benchmark.quantity / benchmark.population)
labels {[0, 0.9): lagging, [0.9, 1.1]: similar, (1.1, inf): leading}
"""


class TestStarBindings:
    def test_property_lookup(self, sales):
        level, lookup = sales.property_lookup("SALES", "population")
        assert level == "country"
        assert lookup == COUNTRY_POPULATION

    def test_has_property(self, sales):
        assert sales.has_property("SALES", "population")
        assert not sales.has_property("SALES", "gdp")

    def test_unknown_property_raises(self, sales):
        star = sales.cube("SALES").star
        with pytest.raises(EngineError):
            star.property_binding("gdp")

    def test_property_on_unbound_level_rejected(self):
        with pytest.raises(EngineError):
            StarSchema(
                name="X",
                fact_table="f",
                dimensions=[
                    DimensionBinding(
                        "H", "d", "k", "k", {"a": "col_a"},
                        properties={"p": ("b", "col_p")},  # level b unbound
                    )
                ],
                measure_columns={"m": "m"},
            )


class TestPerCapitaStatements:
    @pytest.mark.parametrize("plan", ["NP", "JOP", "POP"])
    def test_per_capita_sibling_across_plans(self, sales_session, plan):
        result = sales_session.assess(PER_CAPITA, plan=plan)
        assert len(result) > 0
        cube = result.cube
        assert "population" in cube.measure_names
        assert "benchmark.population" in cube.measure_names
        # target cells are Italian, benchmark population is France's
        assert set(cube.measure("population")) == {float(COUNTRY_POPULATION["Italy"])}
        assert set(cube.measure("benchmark.population")) == {
            float(COUNTRY_POPULATION["France"])
        }

    def test_per_capita_scales_plain_ratio(self, sales_session):
        per_capita = sales_session.assess(PER_CAPITA)
        plain = sales_session.assess(
            PER_CAPITA.replace(" / population", "").replace(
                " / benchmark.population", ""
            )
        )
        factor = COUNTRY_POPULATION["France"] / COUNTRY_POPULATION["Italy"]
        plain_cells = {c.coordinate: c.comparison for c in plain}
        for cell in per_capita:
            assert cell.comparison == pytest.approx(
                plain_cells[cell.coordinate] * factor
            )

    def test_unqualified_property_against_constant(self, sales_session):
        result = sales_session.assess(
            """with SALES by country assess quantity against 1
               using ratio(quantity, population) labels terciles"""
        )
        # per-country quantity per inhabitant, one cell per country
        assert len(result) == 3

    def test_unknown_name_rejected(self, sales_session):
        with pytest.raises(ValidationError, match="neither a measure"):
            sales_session.assess(
                """with SALES by country assess quantity
                   using ratio(quantity, gdp) labels terciles"""
            )

    def test_property_level_must_be_grouped(self, sales_session):
        with pytest.raises(ValidationError, match="by clause"):
            sales_session.assess(
                """with SALES by month assess quantity
                   using ratio(quantity, population) labels terciles"""
            )

    def test_explain_shows_attach_nodes(self, sales_session):
        text = sales_session.explain(PER_CAPITA, plan="POP")
        assert "AttachProperty population of country" in text
        assert "at 'France'" in text
