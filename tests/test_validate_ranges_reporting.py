"""validate_ranges must enumerate *every* defect: all overlapping pairs and
all uncovered gaps, not just the first."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.core.labels import (
    Interval,
    LabelRule,
    find_gaps,
    find_overlaps,
    validate_ranges,
)


def rule(low, high, label, low_closed=True, high_closed=True):
    return LabelRule(Interval(low, high, low_closed, high_closed), label)


# ----------------------------------------------------------------------
# find_overlaps — every pair, in range order
# ----------------------------------------------------------------------
class TestFindOverlaps:
    def test_no_overlaps(self):
        assert find_overlaps([rule(0, 1, "a", high_closed=False), rule(1, 2, "b")]) == []

    def test_all_pairs_reported(self):
        rules = [rule(0, 5, "a"), rule(3, 8, "b"), rule(4, 9, "c")]
        pairs = [(p.label, c.label) for p, c in find_overlaps(rules)]
        assert pairs == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_order_independent_of_input(self):
        rules = [rule(4, 9, "c"), rule(0, 5, "a"), rule(3, 8, "b")]
        pairs = [(p.label, c.label) for p, c in find_overlaps(rules)]
        assert pairs == [("a", "b"), ("a", "c"), ("b", "c")]

    def test_containment_counts_as_overlap(self):
        pairs = find_overlaps([rule(0, 10, "outer"), rule(2, 3, "inner")])
        assert len(pairs) == 1


# ----------------------------------------------------------------------
# find_gaps — every maximal uncovered region
# ----------------------------------------------------------------------
class TestFindGaps:
    def test_complete_cover_has_no_gaps(self):
        rules = [
            rule(float("-inf"), 0, "lo", low_closed=False, high_closed=False),
            rule(0, float("inf"), "hi", high_closed=False),
        ]
        assert find_gaps(rules) == []

    def test_gaps_enumerated(self):
        gaps = find_gaps([rule(0, 1, "a"), rule(2, 3, "b")])
        rendered = [gap.render() for gap in gaps]
        assert rendered == ["(-inf, 0)", "(1, 2)", "(3, inf)"]

    def test_point_gap_between_open_neighbours(self):
        rules = [
            rule(0, 1, "a", high_closed=False),
            rule(1, 2, "b", low_closed=False),
        ]
        gaps = find_gaps(rules, 0, 2)
        assert [gap.render() for gap in gaps] == ["[1, 1]"]

    def test_bounded_domain(self):
        gaps = find_gaps([rule(2, 3, "a")], 0, 10)
        assert [gap.render() for gap in gaps] == ["[0, 2)", "(3, 10]"]

    def test_empty_rule_set_is_one_big_gap(self):
        gaps = find_gaps([], 0, 1)
        assert [gap.render() for gap in gaps] == ["[0, 1]"]


# ----------------------------------------------------------------------
# validate_ranges — messages carry the complete defect set
# ----------------------------------------------------------------------
class TestValidateRanges:
    def test_accepts_valid_partition(self):
        validate_ranges(
            [
                rule(float("-inf"), 0, "lo", high_closed=False),
                rule(0, float("inf"), "hi"),
            ]
        )

    def test_rejects_empty_rule_set(self):
        with pytest.raises(ValidationError, match="at least one range"):
            validate_ranges([])

    def test_message_enumerates_every_overlapping_pair(self):
        rules = [rule(0, 5, "a"), rule(3, 8, "b"), rule(4, 9, "c")]
        with pytest.raises(ValidationError) as excinfo:
            validate_ranges(rules)
        message = str(excinfo.value)
        assert "[0, 5] and [3, 8]" in message
        assert "[0, 5] and [4, 9]" in message
        assert "[3, 8] and [4, 9]" in message

    def test_message_enumerates_every_gap(self):
        with pytest.raises(ValidationError) as excinfo:
            validate_ranges(
                [rule(0, 1, "a"), rule(2, 3, "b")],
                domain_low=-1,
                domain_high=4,
                require_complete=True,
            )
        message = str(excinfo.value)
        assert "[-1, 0)" in message
        assert "(1, 2)" in message
        assert "(3, 4]" in message

    def test_gaps_allowed_without_require_complete(self):
        validate_ranges([rule(0, 1, "a"), rule(2, 3, "b")])
