"""Unit tests for the experiment harness (runner + reporting)."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    FEASIBLE_PLANS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
    statement_text,
)
from repro.experiments.statements import INTENTIONS


@pytest.fixture(scope="module")
def runner():
    # A deliberately tiny two-rung ladder so the full pipeline stays fast.
    return ExperimentRunner(ladder={"SSB1": 8_000, "SSB10": 24_000})


class TestStatements:
    def test_four_intentions(self):
        assert INTENTIONS == ("Constant", "External", "Sibling", "Past")

    @pytest.mark.parametrize("intention", INTENTIONS)
    def test_reference_statements_parse(self, runner, intention):
        statement = runner.statement(intention, "SSB1")
        assert statement.benchmark.kind.lower().startswith(intention.lower()[:4])

    def test_statement_text_is_clean(self):
        text = statement_text("Sibling")
        assert text.startswith("with SSB")
        assert "  " not in text.splitlines()[0]

    def test_feasibility_matches_paper(self, runner):
        for intention in INTENTIONS:
            assert runner.plans_for(intention) == FEASIBLE_PLANS[intention]


class TestRunner:
    def test_sessions_cached(self, runner):
        assert runner.session("SSB1") is runner.session("SSB1")

    def test_run_once_returns_result(self, runner):
        result = runner.run_once("Sibling", "SSB1", "POP")
        assert len(result) > 0
        assert result.plan_name == "POP"

    def test_run_timed_shape(self, runner):
        out = runner.run_timed("Past", "SSB1", "NP", repetitions=2)
        assert out["seconds"] > 0
        assert out["cells"] > 0
        assert "transform" in out["breakdown"]

    def test_target_cardinalities_ordering(self, runner):
        cards = {i: runner.target_cardinality(i, "SSB1") for i in INTENTIONS}
        assert cards["Past"] < cards["Sibling"] < cards["Constant"]

    def test_cardinality_grows_with_scale(self, runner):
        for intention in INTENTIONS:
            small = runner.target_cardinality(intention, "SSB1")
            large = runner.target_cardinality(intention, "SSB10")
            assert large > small

    def test_all_plans_agree_on_reference_statements(self, runner):
        for intention in INTENTIONS:
            outcomes = {}
            for plan in runner.plans_for(intention):
                result = runner.run_once(intention, "SSB1", plan)
                outcomes[plan] = {
                    cell.coordinate: (round(cell.comparison, 9), cell.label)
                    for cell in result
                }
            reference = outcomes.pop("NP")
            for plan, cells in outcomes.items():
                assert cells == reference, f"{intention}/{plan} diverges"

    def test_table1_structure(self, runner):
        table = runner.table1()
        assert set(table) == set(INTENTIONS)
        for row in table.values():
            assert row["total"] == row["sql"] + row["python"]

    def test_fig4_covers_all_plans(self, runner):
        data = runner.fig4(repetitions=1)
        assert set(data) == {"NP", "JOP", "POP"}
        for per_scale in data.values():
            assert set(per_scale) == {"SSB1", "SSB10"}


class TestPaperReference:
    def test_tables_cover_all_intentions(self):
        for table in (PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3):
            assert set(table) == set(INTENTIONS)

    def test_paper_table3_best_never_worse_than_np(self):
        for per_scale in PAPER_TABLE3.values():
            for best, np_time in per_scale.values():
                assert best <= np_time


class TestReports:
    def test_render_table1(self, runner):
        text = render_table1(runner.table1())
        assert "Table 1" in text
        assert "HOLDS" in text

    def test_render_table2(self, runner):
        text = render_table2(runner.table2(), runner.ladder)
        assert "Table 2" in text
        assert "grows" in text

    def test_render_fig3_and_table3(self, runner):
        data = runner.fig3(repetitions=1)
        fig3_text = render_fig3(data, runner.ladder)
        assert "Figure 3" in fig3_text
        assert "plan ordering" in fig3_text
        table3_text = render_table3(runner.table3(data), runner.ladder)
        assert "Table 3" in table3_text
        assert "(0.60)" in table3_text  # paper column present

    def test_render_fig4(self, runner):
        text = render_fig4(runner.fig4(repetitions=1), runner.ladder)
        assert "Figure 4" in text
        assert "compare+label" in text
