"""Unit tests for the cell-wise comparison library (Section 3.2)."""

import numpy as np
import pytest

from repro.functions import (
    absolute_difference,
    difference,
    normalized_difference,
    percentage,
    ratio,
    signed_log_ratio,
)


@pytest.fixture()
def a():
    return np.array([100.0, 90.0, 30.0])


@pytest.fixture()
def b():
    return np.array([150.0, 110.0, 20.0])


class TestDifference:
    def test_basic(self, a, b):
        assert difference(a, b).tolist() == [-50.0, -20.0, 10.0]

    def test_nan_propagates(self):
        out = difference(np.array([1.0, np.nan]), np.array([0.5, 1.0]))
        assert out[0] == 0.5
        assert np.isnan(out[1])

    def test_accepts_lists(self):
        assert difference([3, 1], [1, 1]).tolist() == [2.0, 0.0]


class TestAbsoluteDifference:
    def test_non_negative(self, a, b):
        assert absolute_difference(a, b).tolist() == [50.0, 20.0, 10.0]


class TestNormalizedDifference:
    def test_basic(self, a, b):
        out = normalized_difference(a, b)
        assert out[0] == pytest.approx(-1 / 3)
        assert out[2] == pytest.approx(0.5)

    def test_zero_benchmark_no_raise(self):
        out = normalized_difference(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
        assert np.isinf(out[0])
        assert np.isnan(out[1])


class TestRatio:
    def test_basic(self, a, b):
        out = ratio(a, b)
        assert out[2] == pytest.approx(1.5)

    def test_division_by_zero(self):
        out = ratio(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out[0])


class TestPercentage:
    def test_is_100x_ratio(self, a, b):
        assert percentage(a, b).tolist() == (100.0 * ratio(a, b)).tolist()


class TestSignedLogRatio:
    def test_symmetry(self):
        up = signed_log_ratio(np.array([2.0]), np.array([1.0]))[0]
        down = signed_log_ratio(np.array([1.0]), np.array([2.0]))[0]
        assert up == pytest.approx(-down)

    def test_equal_is_zero(self):
        assert signed_log_ratio(np.array([5.0]), np.array([5.0]))[0] == 0.0

    def test_non_positive_is_nan(self):
        out = signed_log_ratio(np.array([-1.0, 0.0]), np.array([1.0, 1.0]))
        assert np.isnan(out).all()
