"""Concurrent serving: isolation, bit-identity, and counter accounting.

The load shape the ISSUE pins: **16 client threads across 2 tenants**
against one live server, mixed statements, zero errors.  On top of
that the suite proves three properties:

* **bit-identity** — every served response carries exactly the cells a
  direct (single-user) :class:`~repro.api.AssessSession` over the same
  cube produces, serialized through the same wire functions and
  compared as parsed JSON trees;
* **no cross-tenant leakage** — tenant A hammering one statement warms
  only A's cache; B's cache counters never move;
* **counters sum** — per tenant, ``admitted == completed`` equals the
  requests that tenant served, with zero errors and zero rejections.
"""

from __future__ import annotations

import threading
from typing import Dict, List

import pytest

from repro.api import AssessSession
from repro.datagen import sales_engine
from repro.experiments.statements import prepare_engine, statement_text
from repro.server import TenantConfig
from repro.server.wire import serialize_result

from .server_utils import (
    SALES_STATEMENT,
    SALES_STATEMENT_2,
    get_json,
    post_json,
    running_server,
)

CLIENTS = 16
REQUESTS_PER_CLIENT = 4

SALES_ROWS, SALES_SEED = 2_000, 42
SSB_ROWS, SSB_SEED = 4_000, 7

SALES_STATEMENTS = [SALES_STATEMENT, SALES_STATEMENT_2]
SSB_STATEMENTS = [statement_text("Constant"), statement_text("Sibling")]


def _comparable(document: Dict[str, object]) -> Dict[str, object]:
    """A served/direct document minus per-execution measurements."""
    return {
        key: value
        for key, value in document.items()
        if key not in ("timings", "elapsed_s", "schema_version",
                       "tenant", "plan")
    }


@pytest.fixture(scope="module")
def expected():
    """Direct-session documents for every statement, per tenant."""
    sessions = {
        "acme": AssessSession(sales_engine(n_rows=SALES_ROWS, seed=SALES_SEED)),
        "globex": AssessSession(prepare_engine(SSB_ROWS, seed=SSB_SEED)),
    }
    documents: Dict[str, Dict[str, Dict[str, object]]] = {}
    for tenant_id, statements in (
        ("acme", SALES_STATEMENTS), ("globex", SSB_STATEMENTS),
    ):
        documents[tenant_id] = {
            statement: serialize_result(
                sessions[tenant_id].assess(statement)
            )
            for statement in statements
        }
    return documents


@pytest.fixture(scope="module")
def server():
    tenants = [
        TenantConfig("acme", cube="sales", rows=SALES_ROWS, seed=SALES_SEED),
        TenantConfig("globex", cube="ssb", rows=SSB_ROWS, seed=SSB_SEED),
    ]
    # Queue deep enough that 16 clients over 2×2 sessions never 429.
    with running_server(tenants=tenants, max_queue=64,
                        deadline_s=120.0) as live:
        yield live


def _stats(server, tenant_id: str) -> Dict[str, object]:
    status, document = get_json(f"{server.url}/v1/tenants/{tenant_id}/stats")
    assert status == 200
    return document


def test_sixteen_clients_two_tenants(server, expected):
    responses: List[Dict[str, object]] = []
    failures: List[str] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        tenant_id = "acme" if index % 2 == 0 else "globex"
        statements = (
            SALES_STATEMENTS if tenant_id == "acme" else SSB_STATEMENTS
        )
        for turn in range(REQUESTS_PER_CLIENT):
            statement = statements[(index + turn) % len(statements)]
            try:
                status, document, _ = post_json(
                    f"{server.url}/v1/query",
                    {"tenant": tenant_id, "statement": statement},
                    timeout=120.0,
                )
            except Exception as error:  # noqa: BLE001 - recorded, asserted
                with lock:
                    failures.append(f"client {index}: {error}")
                return
            with lock:
                if status != 200:
                    failures.append(
                        f"client {index}: status {status}: {document}"
                    )
                else:
                    responses.append(
                        {"tenant": tenant_id, "statement": statement,
                         "document": document}
                    )

    before = {tid: _stats(server, tid)["admission"]
              for tid in ("acme", "globex")}
    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not failures, failures
    assert len(responses) == CLIENTS * REQUESTS_PER_CLIENT

    # Bit-identity: every served document carries exactly the direct
    # session's cells (same serializer, compared as JSON trees).
    for response in responses:
        served = _comparable(response["document"])
        direct = _comparable(
            expected[response["tenant"]][response["statement"]]
        )
        assert served == direct, (
            f"served response diverged for tenant {response['tenant']!r}: "
            f"{response['statement']!r}"
        )

    # Counters sum: per tenant, every request this test sent was
    # admitted and completed; nothing errored, nothing was rejected.
    sent = {
        "acme": sum(1 for r in responses if r["tenant"] == "acme"),
        "globex": sum(1 for r in responses if r["tenant"] == "globex"),
    }
    assert sent["acme"] == sent["globex"] == CLIENTS // 2 * REQUESTS_PER_CLIENT
    for tenant_id in ("acme", "globex"):
        admission = _stats(server, tenant_id)["admission"]
        delta = {
            key: admission[key] - before[tenant_id][key]
            for key in ("admitted", "completed", "errors",
                        "rejected_queue_full", "rejected_deadline")
        }
        assert delta["admitted"] == sent[tenant_id]
        assert delta["completed"] == sent[tenant_id]
        assert delta["errors"] == 0
        assert delta["rejected_queue_full"] == 0
        assert delta["rejected_deadline"] == 0


def test_no_cross_tenant_cache_leakage(server):
    # Snapshot globex's cache, hammer acme with one warm statement,
    # then assert globex's cache counters never moved.
    globex_before = _stats(server, "globex")["cache"]
    acme_before = _stats(server, "acme")["cache"]

    hammer = 12
    threads = []

    def warm() -> None:
        status, _, _ = post_json(
            f"{server.url}/v1/query",
            {"tenant": "acme", "statement": SALES_STATEMENT},
            timeout=120.0,
        )
        assert status == 200

    for _ in range(hammer):
        thread = threading.Thread(target=warm)
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join(timeout=300)

    globex_after = _stats(server, "globex")["cache"]
    acme_after = _stats(server, "acme")["cache"]
    assert globex_after == globex_before, "tenant isolation violated"
    # acme's own cache did the work: hits moved there (the statement
    # was already warm from the load test, so every probe hits).
    assert acme_after["hits"] >= acme_before["hits"] + hammer


def test_served_metrics_stay_per_tenant(server):
    from .server_utils import http_get

    status, body, _ = http_get(f"{server.url}/v1/metrics")
    assert status == 200
    text = body.decode("utf-8")
    acme = [line for line in text.splitlines()
            if line.startswith("repro_tenant_acme_")]
    globex = [line for line in text.splitlines()
              if line.startswith("repro_tenant_globex_")]
    assert acme and globex
    # Same counter families exist under both namespaces, values tracked
    # independently (each tenant saw a different workload above).
    names = lambda lines, prefix: {  # noqa: E731 - tiny local helper
        line.split(" ")[0][len(prefix):] for line in lines
    }
    assert names(acme, "repro_tenant_acme_") \
        & names(globex, "repro_tenant_globex_")
