"""Unit tests for the group-by factorization kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernels import encode_column, factorize_numpy, factorize_python


class TestEncodeColumn:
    def test_codes_follow_sorted_order(self):
        codes, cardinality = encode_column(np.array(["b", "a", "b"], dtype=object))
        assert cardinality == 2
        assert codes.tolist() == [1, 0, 1]

    def test_numeric_column(self):
        codes, cardinality = encode_column(np.array([30, 10, 20, 10]))
        assert cardinality == 3
        assert codes.tolist() == [2, 0, 1, 0]


class TestFactorizeShapes:
    def test_no_columns_single_group(self):
        ids, count, first = factorize_numpy([], 5)
        assert count == 1
        assert ids.tolist() == [0] * 5
        assert first.tolist() == [0]

    def test_no_columns_no_rows(self):
        ids, count, first = factorize_numpy([], 0)
        assert count == 0
        assert len(ids) == 0 and len(first) == 0

    def test_python_kernel_no_columns(self):
        ids, count, first = factorize_python([], 3)
        assert count == 1 and ids.tolist() == [0, 0, 0]

    def test_two_columns_cross_product(self):
        a = np.array(["x", "x", "y", "y"], dtype=object)
        b = np.array([1, 2, 1, 2])
        ids, count, first = factorize_numpy([a, b], 4)
        assert count == 4
        assert sorted(ids.tolist()) == [0, 1, 2, 3]

    def test_first_rows_are_representatives(self):
        a = np.array(["x", "y", "x"], dtype=object)
        ids, count, first = factorize_numpy([a], 3)
        assert count == 2
        # each first row's member matches its group's member
        for group in range(count):
            representative = a[first[group]]
            members = {a[i] for i in range(3) if ids[i] == group}
            assert members == {representative}


class TestKernelAgreement:
    @given(
        seed=st.integers(0, 5_000),
        n_rows=st.integers(0, 200),
        n_cols=st.integers(1, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_numpy_and_python_kernels_agree(self, seed, n_rows, n_cols):
        rng = np.random.default_rng(seed)
        columns = []
        for _ in range(n_cols):
            if rng.random() < 0.5:
                values = rng.integers(0, 5, n_rows).astype(np.int64)
            else:
                members = np.array(["a", "bb", "ccc", "dd"], dtype=object)
                values = members[rng.integers(0, 4, n_rows)]
            columns.append(values)
        ids_np, count_np, first_np = factorize_numpy(columns, n_rows)
        ids_py, count_py, first_py = factorize_python(columns, n_rows)
        assert count_np == count_py
        assert np.array_equal(ids_np, ids_py)
        keys_np = [tuple(col[r] for col in columns) for r in first_np]
        keys_py = [tuple(col[r] for col in columns) for r in first_py]
        assert keys_np == keys_py
