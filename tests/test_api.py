"""Unit tests for the AssessSession public API."""

import numpy as np
import pytest

from repro.api import AssessSession
from repro.core import AssessStatement, FunctionError, PlanError


SIBLING = """
with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""


class TestSessionBasics:
    def test_parse_returns_statement(self, sales_session):
        statement = sales_session.parse(SIBLING)
        assert isinstance(statement, AssessStatement)

    def test_assess_accepts_text_or_statement(self, sales_session):
        by_text = sales_session.assess(SIBLING)
        by_statement = sales_session.assess(sales_session.parse(SIBLING))
        assert len(by_text) == len(by_statement)
        assert by_text.label_counts() == by_statement.label_counts()

    def test_plan_names(self, sales_session):
        assert sales_session.plan(SIBLING, "NP").name == "NP"
        assert sales_session.plan(SIBLING, "best").name == "POP"
        assert set(sales_session.plans(SIBLING)) == {"NP", "JOP", "POP"}

    def test_feasible_plans(self, sales_session):
        assert sales_session.feasible_plans(SIBLING) == ("NP", "JOP", "POP")

    def test_infeasible_plan_raises(self, sales_session):
        with pytest.raises(PlanError):
            sales_session.assess(
                "with SALES by month assess storeSales labels quartiles",
                plan="POP",
            )

    def test_execute_prebuilt_plan(self, sales_session):
        statement = sales_session.parse(SIBLING)
        plan = sales_session.plan(statement, "JOP")
        result = sales_session.execute_plan(plan, statement)
        assert result.plan_name == "JOP"


class TestExplain:
    def test_explain_contains_tree_and_sql(self, sales_session):
        text = sales_session.explain(SIBLING, plan="POP")
        assert "Plan POP" in text
        assert "-- pushed query 1" in text
        assert "pivot (" in text

    def test_np_explain_has_two_queries(self, sales_session):
        text = sales_session.explain(SIBLING, plan="NP")
        assert "-- pushed query 2" in text

    def test_pushed_sql_counts(self, sales_session):
        statement = sales_session.parse(SIBLING)
        assert len(sales_session.pushed_sql(sales_session.plan(statement, "NP"))) == 2
        assert len(sales_session.pushed_sql(sales_session.plan(statement, "JOP"))) == 1
        assert len(sales_session.pushed_sql(sales_session.plan(statement, "POP"))) == 1


class TestUserFunctions:
    def test_register_cell_function(self, sales_session):
        sales_session.register_function(
            "halfGap", "cell", lambda a, b: (a - b) / 2.0, arity=2
        )
        result = sales_session.assess(
            """with SALES by month assess storeSales against 1000
               using halfGap(storeSales, 1000) labels quartiles"""
        )
        assert len(result) == 24

    def test_registrations_are_session_local(self, sales):
        first = AssessSession(sales)
        second = AssessSession(sales)
        first.register_function("onlyHere", "cell", lambda a: a, arity=1)
        assert first.registry.has("onlyHere")
        assert not second.registry.has("onlyHere")

    def test_duplicate_registration_rejected(self, sales_session):
        sales_session.register_function("dup", "cell", lambda a: a, arity=1)
        with pytest.raises(FunctionError):
            sales_session.register_function("dup", "cell", lambda a: a, arity=1)

    def test_define_labeling_roundtrip(self, sales_session):
        from repro.core import Interval, LabelRule

        sales_session.define_labeling(
            "passFail",
            [
                LabelRule(Interval(float("-inf"), 0, False, False), "fail"),
                LabelRule(Interval(0, float("inf"), True, False), "pass"),
            ],
        )
        result = sales_session.assess(
            """with SALES by month assess storeSales against 50000
               using difference(storeSales, 50000) labels passFail"""
        )
        assert set(result.label_counts()) <= {"pass", "fail"}


class TestResultPresentation:
    def test_label_counts(self, sales_session):
        counts = sales_session.assess(SIBLING).label_counts()
        assert sum(counts.values()) == 4

    def test_cells_sorted(self, sales_session):
        cells = sales_session.assess(SIBLING).cells()
        coordinates = [c.coordinate for c in cells]
        assert coordinates == sorted(coordinates)
