"""Tests for statement extraction, the lint API, and the ``lint`` CLI
subcommand (exit codes, multi-error reporting, backward compatibility)."""

from __future__ import annotations

import textwrap

from repro import cli
from repro.analysis import (
    AnalysisContext,
    extract_statements,
    lint_paths,
    lint_statements,
    render_report,
    statements_from_python,
)

MULTI_ERROR = (
    "with FOO by x assess m using nosuchfn(m) / 0 "
    "labels {[0, 5]: a, [3, 8]: b}"
)
CLEAN = "with FOO by x assess m labels {(-inf, 0]: low, (0, inf): high}"
GAPPY = "with FOO by x assess m labels {[0, 1]: a}"


# ----------------------------------------------------------------------
# extract_statements
# ----------------------------------------------------------------------
def test_extract_splits_on_semicolons_and_with_lines():
    text = textwrap.dedent(
        """\
        # a hash comment
        with A by x assess m labels quartiles;
        -- a sql comment
        with B by y assess m labels quartiles
        with C by z assess m
          labels quartiles
        """
    )
    statements = extract_statements(text)
    assert len(statements) == 3
    assert [s.split()[1] for s in statements] == ["A", "B", "C"]
    # Continuation lines stay attached to their statement.
    assert "labels quartiles" in statements[2]


def test_extract_keeps_leading_junk_attached():
    statements = extract_statements("garbage here\nwith A by x assess m labels q")
    assert len(statements) == 1
    assert statements[0].startswith("garbage")


def test_extract_empty_text():
    assert extract_statements("  \n# only a comment\n") == []


# ----------------------------------------------------------------------
# statements_from_python
# ----------------------------------------------------------------------
def test_python_extraction_finds_complete_statements():
    source = textwrap.dedent(
        '''\
        QUERY = """
            with SALES by month
            assess quantity labels quartiles
        """
        OTHER = "just a string"
        PARTIAL = "with SALES by month assess quantity"  # no labels: skipped
        '''
    )
    found = statements_from_python(source)
    assert len(found) == 1
    assert found[0].startswith("with SALES")


# ----------------------------------------------------------------------
# lint API
# ----------------------------------------------------------------------
def test_lint_statements_report():
    context = AnalysisContext(schemas=None)
    results = lint_statements([MULTI_ERROR, CLEAN], context, "inline")
    assert len(results) == 2
    bad, good = results
    assert bad.has_errors and not good.bag
    # Every defect of the bad statement is reported in one run.
    assert {"ASSESS120", "ASSESS122", "ASSESS131"} <= set(bad.bag.codes())


def test_lint_paths_recurses_and_renders(tmp_path):
    (tmp_path / "a.assess").write_text(MULTI_ERROR + ";\n" + GAPPY + "\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "b.txt").write_text(CLEAN + "\n")
    (sub / "ignored.cfg").write_text("with NOT a statement file\n")

    from repro.analysis import LintReport

    report = lint_paths([tmp_path], AnalysisContext(schemas=None))
    assert isinstance(report, LintReport)
    assert report.statements == 3
    assert report.has_errors
    rendered = render_report(report)
    assert "ASSESS120" in rendered and "ASSESS130" in rendered
    assert rendered.splitlines()[-1].startswith("3 statements checked:")


# ----------------------------------------------------------------------
# CLI subcommand
# ----------------------------------------------------------------------
def test_lint_cli_exits_nonzero_and_prints_all_codes(tmp_path, capsys):
    path = tmp_path / "bad.assess"
    path.write_text(MULTI_ERROR + ";\n" + GAPPY + "\n")
    exit_code = cli.main(["lint", "--cube", "none", str(path)])
    out = capsys.readouterr().out
    assert exit_code == 1
    # All errors of the multi-error statement appear in one run...
    for code in ("ASSESS120", "ASSESS122", "ASSESS131"):
        assert code in out
    # ...as does the second statement's warning, plus the summary.
    assert "ASSESS130" in out
    assert "2 statements checked" in out


def test_lint_cli_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "good.assess"
    path.write_text(CLEAN + "\n")
    exit_code = cli.main(["lint", "--cube", "none", str(path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "0 errors" in out


def test_lint_cli_warnings_alone_exit_zero(tmp_path, capsys):
    path = tmp_path / "gappy.assess"
    path.write_text(GAPPY + "\n")
    exit_code = cli.main(["lint", "--cube", "none", str(path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "ASSESS130" in out and "1 warning" in out


def test_lint_cli_verbose_lists_clean_statements(tmp_path, capsys):
    path = tmp_path / "good.assess"
    path.write_text(CLEAN + "\n")
    cli.main(["lint", "--cube", "none", "--verbose", str(path)])
    out = capsys.readouterr().out
    assert "good.assess" in out


def test_lint_cli_resolves_against_demo_cube(tmp_path, capsys):
    # With a real cube loaded, schema defects are reported too.
    path = tmp_path / "sales.assess"
    path.write_text("with SALES by mnth assess bogus labels quartiles\n")
    exit_code = cli.main(["lint", "--cube", "sales", "--rows", "500", str(path)])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "ASSESS102" in out and "ASSESS104" in out


def test_lint_cli_missing_path_is_a_clean_error(capsys):
    exit_code = cli.main(["lint", "--cube", "none", "/no/such/file.assess"])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert captured.err.startswith("error:")


def test_run_cli_backward_compatible(capsys):
    # The original one-shot entry point is untouched by the subcommand.
    exit_code = cli.main(
        ["--cube", "sales", "--rows", "500",
         "with SALES by year assess quantity labels quartiles"]
    )
    assert exit_code == 0
    assert "cells" in capsys.readouterr().out
