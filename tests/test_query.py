"""Unit tests for predicates and cube queries (Definition 2.6)."""

import numpy as np
import pytest

from repro.core import CubeQuery, GroupBySet, Predicate, PredicateOp, SchemaError
from repro.datagen import sales_schema


@pytest.fixture(scope="module")
def schema():
    return sales_schema()


class TestPredicate:
    def test_eq(self):
        p = Predicate.eq("country", "Italy")
        assert p.matches("Italy")
        assert not p.matches("France")
        assert p.member_set() == frozenset({"Italy"})

    def test_isin_deduplicates_and_sorts(self):
        p = Predicate.isin("country", ["Italy", "France", "Italy"])
        assert p.member_set() == frozenset({"Italy", "France"})
        assert p.matches("France")
        assert not p.matches("Spain")

    def test_between_inclusive(self):
        p = Predicate.between("month", "1997-03", "1997-06")
        assert p.matches("1997-03")
        assert p.matches("1997-06")
        assert p.matches("1997-05")
        assert not p.matches("1997-07")
        assert p.member_set() is None

    def test_mask_eq(self):
        p = Predicate.eq("country", "Italy")
        column = np.array(["Italy", "France", "Italy"], dtype=object)
        assert p.mask(column).tolist() == [True, False, True]

    def test_mask_in(self):
        p = Predicate.isin("country", ["Italy", "Spain"])
        column = np.array(["Italy", "France", "Spain"], dtype=object)
        assert p.mask(column).tolist() == [True, False, True]

    def test_mask_between(self):
        p = Predicate.between("month", "1997-03", "1997-06")
        column = np.array(["1997-02", "1997-03", "1997-08"], dtype=object)
        assert p.mask(column).tolist() == [False, True, False]

    def test_equality_is_value_based(self):
        assert Predicate.eq("a", 1) == Predicate.eq("a", 1)
        assert Predicate.isin("a", [2, 1]) == Predicate.isin("a", [1, 2])
        assert Predicate.eq("a", 1) != Predicate.eq("b", 1)
        assert hash(Predicate.eq("a", 1)) == hash(Predicate.eq("a", 1))

    def test_repr_forms(self):
        assert "Italy" in repr(Predicate.eq("country", "Italy"))
        assert "between" in repr(Predicate.between("m", 1, 2))
        assert "in" in repr(Predicate.isin("m", [1]))


class TestCubeQuery:
    def test_construction_validates_levels_and_measures(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        query = CubeQuery(
            "SALES", gb, (Predicate.eq("type", "Fresh Fruit"),), ("quantity",)
        )
        assert query.schema is schema
        with pytest.raises(SchemaError):
            CubeQuery("SALES", gb, (Predicate.eq("brand", "x"),), ("quantity",))
        with pytest.raises(SchemaError):
            CubeQuery("SALES", gb, (), ("profit",))

    def test_predicate_on(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        p = Predicate.eq("country", "Italy")
        query = CubeQuery("SALES", gb, (p,), ("quantity",))
        assert query.predicate_on("country") == p
        assert query.predicate_on("year") is None

    def test_replace_predicate(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        italy = Predicate.eq("country", "Italy")
        france = Predicate.eq("country", "France")
        query = CubeQuery("SALES", gb, (italy,), ("quantity",))
        swapped = query.replace_predicate(italy, france)
        assert swapped.predicate_on("country") == france
        assert query.predicate_on("country") == italy  # original untouched

    def test_without_predicate(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        italy = Predicate.eq("country", "Italy")
        query = CubeQuery("SALES", gb, (italy,), ("quantity",))
        assert query.without_predicate(italy).predicates == ()

    def test_equality_ignores_predicate_order(self, schema):
        gb = GroupBySet(schema, ["product", "country"])
        p1 = Predicate.eq("country", "Italy")
        p2 = Predicate.eq("type", "Fresh Fruit")
        a = CubeQuery("SALES", gb, (p1, p2), ("quantity",))
        b = CubeQuery("SALES", gb, (p2, p1), ("quantity",))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_measures(self, schema):
        gb = GroupBySet(schema, ["product"])
        a = CubeQuery("SALES", gb, (), ("quantity",))
        b = CubeQuery("SALES", gb, (), ("storeSales",))
        assert a != b
