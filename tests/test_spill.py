"""Property suite for the bounded-memory spill tier (and its storage rails).

The contract under test is the PR's headline claim: a memory budget may
only change *where* grouping state lives (RAM vs temp-file runs), never
the answer.  Every differential here compares a budget-forced-low arm
against the unlimited in-RAM arm and requires **bit-identical** results —
including warm-cache replays and all four benchmark intentions.

The second half covers the storage satellites the spill ladder rides on:
frame-of-reference encoding for sorted integer columns, the shared
string dictionary of the v2 store, zone-map geometry validation (counted
fallback, never silent mis-pruning), and the partitioned store's
differential against an in-RAM catalog.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.api import AssessSession
from repro.batch import results_identical
from repro.core.query import Predicate
from repro.datagen.ssb import build_ssb_catalog, ssb_engine_from_catalog
from repro.engine.catalog import Catalog
from repro.engine.columns import (
    ZoneMap,
    build_zone_map,
    encode_array,
    encode_for,
    plan_zone_pruning,
)
from repro.engine.persist import load_catalog, save_catalog
from repro.engine.query import ColumnPredicate
from repro.engine.spill import (
    MAX_SPILL_PARTITIONS,
    MIN_SPILL_PARTITIONS,
    SpillAggregator,
    choose_partitions,
    env_memory_budget,
    grouping_state_bytes,
)
from repro.engine.table import Table
from repro.engine import PartitionedStoreWriter
from repro.experiments.statements import INTENTIONS, prepare_engine, statement_text
from repro.parallel.merge import merge_morsels
from repro.parallel.morsel import MorselResult

from tests.test_differential import (
    QUANTITY_VARIANTS,
    _assert_same_cube,
    _random_queries,
    _random_star,
)

SSB_ROWS = 3000
TINY_BUDGET = 8_192


# ----------------------------------------------------------------------
# SpillAggregator unit properties
# ----------------------------------------------------------------------
def _random_morsels(rng, key_space: int, n_morsels: int, ops):
    """Random sorted-key partial results, the shape ``run_morsel`` emits."""
    morsels = []
    for _ in range(n_morsels):
        n = int(rng.integers(1, 200))
        keys = np.unique(rng.integers(0, key_space, n).astype(np.int64))
        partials = []
        for op in ops:
            if op == "count":
                partials.append(rng.integers(1, 5, len(keys)).astype(np.float64))
            else:
                partials.append(rng.integers(-50, 50, len(keys)).astype(np.float64))
        morsels.append((keys, partials))
    return morsels


@pytest.mark.parametrize("seed", range(4))
def test_spill_aggregator_matches_direct_merge(seed, tmp_path):
    """Range-partitioned external merge == one direct in-RAM merge."""
    rng = np.random.default_rng(1234 + seed)
    ops = ["sum", "min", "count"]
    key_space = int(rng.integers(50, 5000))
    morsels = _random_morsels(rng, key_space, n_morsels=12, ops=ops)

    expected = merge_morsels(
        [MorselResult(0, keys, partials, 0, 0, 0.0) for keys, partials in morsels],
        ops,
    )
    with SpillAggregator(
        key_space, ops, budget_bytes=256, n_partitions=8,
        spill_dir=str(tmp_path),
    ) as spiller:
        for keys, partials in morsels:
            spiller.add(keys, partials)
        assert spiller.spills > 0  # the budget genuinely forced runs out
        assert spiller.temp_dir is not None
        got_keys, got_partials = spiller.merge_all()

    assert got_keys.tobytes() == expected[0].tobytes()
    for got, want in zip(got_partials, expected[1]):
        assert got.tobytes() == want.tobytes()
    # Context exit removed the run directory.
    assert not any(tmp_path.iterdir())


def test_spill_aggregator_cleanup_on_midmerge_failure(tmp_path, monkeypatch):
    """Injected merge failure still removes every temp file."""
    rng = np.random.default_rng(7)
    ops = ["sum"]
    morsels = _random_morsels(rng, 1000, n_morsels=8, ops=ops)

    def boom(*args, **kwargs):
        raise RuntimeError("injected mid-merge failure")

    aggregator = SpillAggregator(
        1000, ops, budget_bytes=64, n_partitions=4, spill_dir=str(tmp_path)
    )
    with pytest.raises(RuntimeError, match="injected"):
        with aggregator:
            for keys, partials in morsels:
                aggregator.add(keys, partials)
            assert aggregator.spills > 0 and aggregator.temp_dir is not None
            # Fail only the final merge: the flush-side merges above ran.
            monkeypatch.setattr("repro.engine.spill.merge_morsels", boom)
            aggregator.merge_all()
    assert aggregator.temp_dir is None
    assert not any(tmp_path.iterdir())


def test_spill_aggregator_empty_and_single_bucket():
    with SpillAggregator(10, ["sum"], budget_bytes=1000) as spiller:
        keys, partials = spiller.merge_all()
    assert len(keys) == 0 and len(partials) == 1 and len(partials[0]) == 0


def test_env_memory_budget(monkeypatch):
    for name in ("REPRO_MEMORY_BYTES", "REPRO_SPILL_BYTES"):
        monkeypatch.delenv(name, raising=False)
    assert env_memory_budget() is None
    monkeypatch.setenv("REPRO_MEMORY_BYTES", "1000")
    assert env_memory_budget() == 1000
    monkeypatch.setenv("REPRO_SPILL_BYTES", "600")
    assert env_memory_budget() == 600  # smaller of the two wins
    monkeypatch.setenv("REPRO_MEMORY_BYTES", "not-a-number")
    assert env_memory_budget() == 600
    monkeypatch.setenv("REPRO_SPILL_BYTES", "-5")
    monkeypatch.delenv("REPRO_MEMORY_BYTES")
    assert env_memory_budget() is None


def test_partition_sizing():
    assert choose_partitions(0, 1000) == MIN_SPILL_PARTITIONS
    assert choose_partitions(10**12, 1) == MAX_SPILL_PARTITIONS
    # 4x headroom: estimate 10 budgets -> at least 40 buckets.
    assert choose_partitions(10_000, 1_000) >= 40
    assert grouping_state_bytes(100, 3, 2) == 100 * (8 + 8 * 3)


# ----------------------------------------------------------------------
# Random cubes: budget-forced-low arm vs unlimited arm, bit-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_random_cubes_spill_bit_identical(seed, monkeypatch):
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "256")  # several morsels per scan
    _, serial_engine, hierarchies = _random_star(seed)
    serial_engine.result_cache.enabled = False
    schema = serial_engine.cube("RAND").schema

    _, spill_engine, _ = _random_star(seed)
    spill_engine.result_cache.enabled = False
    spill_engine.set_memory_budget(2_000)

    _, warm_engine, _ = _random_star(seed)
    warm_engine.set_memory_budget(2_000)
    assert warm_engine.result_cache.enabled

    rng = np.random.default_rng(9000 + seed)
    queries = _random_queries(rng, schema, hierarchies)
    # One guaranteed fine-grained query: grouping by the finest level of
    # every hierarchy yields enough groups that the tiny budget provably
    # forces runs to disk (random coarse queries may fit in the buffers).
    from repro.core.groupby import GroupBySet
    from repro.core.query import CubeQuery

    queries.append(CubeQuery(
        "RAND",
        GroupBySet(schema, [h.finest_level.name for h in hierarchies]),
        [],
        ("m_sum", "m_min", "m_avg"),
    ))
    for query in queries:
        reference = serial_engine.get(query)
        _assert_same_cube(spill_engine.get(query), reference)
        # Warm replay: first call populates through the spill tier, the
        # repeat must serve the identical cached cells.
        warm_engine.get(query)
        _assert_same_cube(warm_engine.get(query), reference)

    # The budget arm genuinely took the bounded-memory route (gate-passing
    # measures appear in every query mix) and genuinely hit the disk.
    assert spill_engine.metrics.get("engine.spill.queries") >= 1
    assert spill_engine.metrics.get("engine.spill.spills") >= 1
    assert spill_engine.metrics.get("engine.spill.bytes_spilled") > 0


# ----------------------------------------------------------------------
# The four benchmark intentions under a budget below the working set
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def spill_arms():
    serial = AssessSession(prepare_engine(SSB_ROWS))
    serial.engine.result_cache.enabled = False
    budget = AssessSession(prepare_engine(SSB_ROWS), memory_budget=TINY_BUDGET)
    budget.engine.result_cache.enabled = False
    warm = AssessSession(prepare_engine(SSB_ROWS), memory_budget=TINY_BUDGET)
    return serial, budget, warm


@pytest.mark.parametrize("intention", INTENTIONS)
@pytest.mark.parametrize("variant", ("reference", "quantity"))
def test_benchmark_types_spill_bit_identical(spill_arms, intention, variant):
    serial, budget, warm = spill_arms
    text = (
        statement_text(intention)
        if variant == "reference"
        else QUANTITY_VARIANTS[intention]
    )
    reference = serial.assess(text)
    assert results_identical(budget.assess(text), reference), intention
    first = warm.assess(text)
    again = warm.assess(text)  # warm-cache replay of a spilled result
    assert results_identical(first, reference), intention
    assert results_identical(again, reference), intention


def test_spill_arms_actually_spilled(spill_arms):
    """After the intentions ran, the budget arms must show both routes:
    integral (quantity) measures through the spill tier, fractional
    (revenue) measures declined by the exactness gate — a fallback-only
    arm would make the differential vacuous."""
    _, budget, warm = spill_arms
    for arm in (budget, warm):
        assert arm.engine.metrics.get("engine.spill.queries") >= 1
        assert arm.engine.metrics.get("engine.spill.fallbacks") >= 1
    assert warm.engine.result_cache.stats()["hits"] >= 1


def test_env_spill_bytes_routes_queries(monkeypatch):
    """REPRO_SPILL_BYTES alone must arm the tier at construction time."""
    monkeypatch.setenv("REPRO_SPILL_BYTES", str(TINY_BUDGET))
    session = AssessSession(prepare_engine(SSB_ROWS))
    session.engine.result_cache.enabled = False
    assert session.memory_budget == TINY_BUDGET
    reference = AssessSession(prepare_engine(SSB_ROWS)).assess(
        QUANTITY_VARIANTS["Constant"]
    )
    assert results_identical(session.assess(QUANTITY_VARIANTS["Constant"]),
                             reference)
    assert session.engine.metrics.get("engine.spill.queries") >= 1


def test_executor_cleans_temp_files(tmp_path, monkeypatch):
    """End-to-end: run directories vanish on success and on failure."""
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
    session = AssessSession(prepare_engine(SSB_ROWS), memory_budget=2_000)
    session.engine.result_cache.enabled = False
    session.assess(QUANTITY_VARIANTS["Constant"])
    assert session.engine.metrics.get("engine.spill.spills") >= 1
    assert not any(tmp_path.iterdir())  # success path cleaned up

    def boom(self):
        assert self.temp_dir is not None  # the pass really spilled first
        raise RuntimeError("injected mid-merge failure")

    monkeypatch.setattr(SpillAggregator, "merge_all", boom)
    with pytest.raises(RuntimeError, match="injected"):
        session.assess(QUANTITY_VARIANTS["Sibling"])
    assert not any(tmp_path.iterdir())  # failure path cleaned up too


# ----------------------------------------------------------------------
# Satellite: frame-of-reference encoding for sorted integer columns
# ----------------------------------------------------------------------
def test_for_encoding_roundtrip():
    values = np.arange(10_000, dtype=np.int64) + 7
    column = encode_array(values)
    assert column.encoding == "for"
    assert column.stored_bytes < values.nbytes
    assert np.array_equal(column.decode(), values)
    assert np.array_equal(column.window(998, 4321), values[998:4321])
    assert np.array_equal(
        column.gather([(0, 5), (9_990, 10_000)]),
        np.concatenate([values[0:5], values[9_990:10_000]]),
    )
    assert column.gather([]).size == 0


def test_for_encoding_blocks():
    # Several blocks, ragged tail; offsets reset per block.
    values = np.sort(np.random.default_rng(3).integers(0, 10**9, 1000))
    column = encode_for(values, block_rows=64)
    assert column is not None and len(column.references) == -(-1000 // 64)
    assert np.array_equal(column.decode(), values)
    assert np.array_equal(column.window(60, 70), values[60:70])  # block seam


def test_for_encoding_declines_unsuitable_columns():
    rng = np.random.default_rng(11)
    unsorted = rng.permutation(np.arange(10_000, dtype=np.int64))
    assert encode_for(unsorted) is None
    # Block span >= 2**32: narrow offsets cannot represent it.
    wide = np.array([0, 1 << 33], dtype=np.int64)
    assert encode_for(wide) is None
    floats = np.arange(100, dtype=np.float64)
    assert encode_for(floats) is None


def test_for_encoding_persists_roundtrip(tmp_path):
    values = np.arange(100_000, dtype=np.int64)
    catalog = Catalog()
    catalog.register(Table("keys", {"k": values, "tag": values % 5}))
    path = save_catalog(catalog, str(tmp_path / "store"), format="v2")
    loaded = load_catalog(path)
    table = loaded.table("keys")
    assert table.encoding_of("k") == "for"
    assert np.array_equal(table.column("k"), values)
    manifest = json.load(open(os.path.join(path, "catalog.json")))
    specs = {c["name"]: c for c in manifest["tables"][0]["columns"]}
    assert specs["k"]["encoding"] == "for"
    assert specs["k"]["stored_bytes"] < specs["k"]["plain_bytes"]


# ----------------------------------------------------------------------
# Satellite: shared string dictionaries across one store
# ----------------------------------------------------------------------
def test_shared_dictionary_written_once(tmp_path):
    cities = np.array(
        ["Rome", "Lyon", "Kyoto", "Quito"] * 500, dtype=object
    )
    catalog = Catalog()
    catalog.register(Table("left", {"city": cities.copy()}))
    catalog.register(Table("right", {"city": cities.copy(), "n": np.arange(2000)}))
    path = save_catalog(catalog, str(tmp_path / "store"), format="v2")

    manifest = json.load(open(os.path.join(path, "catalog.json")))
    dict_values = [
        spec["arrays"]["values"]
        for table in manifest["tables"]
        for spec in table["columns"]
        if spec["encoding"] == "dict"
    ]
    assert len(dict_values) == 2
    # Byte-identical dictionaries share one file on disk.
    assert dict_values[0] == dict_values[1]

    loaded = load_catalog(path)
    assert loaded.table("left").column("city").tolist() == cities.tolist()
    assert loaded.table("right").column("city").tolist() == cities.tolist()


# ----------------------------------------------------------------------
# Satellite: zone-map geometry validation (counted fallback, no mis-prune)
# ----------------------------------------------------------------------
def _fact_with_map(n_rows: int, zone_rows: int) -> Table:
    fact = Table("fact", {"v": np.arange(n_rows, dtype=np.int64)})
    fact.ensure_zone_maps(zone_rows)
    return fact


def test_zone_rechunk_matches_direct_build():
    values = np.random.default_rng(5).integers(0, 100, 1000)
    fine = build_zone_map(values, 100)
    coarse = fine.rechunk(200)
    direct = build_zone_map(values, 200)
    assert coarse is not None
    assert coarse.zone_rows == 200 and coarse.n_zones == direct.n_zones
    assert np.array_equal(coarse.mins, direct.mins)
    assert np.array_equal(coarse.maxs, direct.maxs)
    assert np.array_equal(coarse.null_counts, direct.null_counts)
    # Summed distinct bounds stay sound (>= the true distinct counts).
    assert np.all(coarse.distinct_bounds >= direct.distinct_bounds)


def test_zone_rechunk_rejects_non_divisible_geometry():
    values = np.arange(1000)
    zone_map = build_zone_map(values, 100)
    assert zone_map.rechunk(150) is None
    assert zone_map.rechunk(0) is None
    assert zone_map.rechunk(100) is zone_map


def test_stale_zone_map_is_dropped_and_counted():
    """A map built for a different row count must not prune anything."""
    fact = _fact_with_map(1000, 100)
    stale = build_zone_map(np.arange(400, dtype=np.int64), 100)
    fact.attach_zone_map("v", stale)  # stale: n_rows=400, fact has 1000
    pruner = plan_zone_pruning(
        Catalog(), fact, "fact",
        [ColumnPredicate("fact", "v", Predicate.eq("v", 5))], [],
    )
    assert pruner is not None
    assert pruner.misaligned == 1
    assert pruner.survival_fraction() == 1.0  # counted fallback, full scan


def test_misaligned_zone_rechunk_is_dropped_and_counted():
    """Two maps whose zone sizes do not divide: the finer one drops."""
    fact = Table("fact", {
        "a": np.arange(900, dtype=np.int64),
        "b": np.arange(900, dtype=np.int64),
    })
    # Bypass attach_zone_map's same-geometry guard deliberately: this is
    # exactly the mixed-geometry state a stale store produces.
    fact._zone_maps["a"] = build_zone_map(fact.column("a"), 100)
    fact._zone_maps["b"] = build_zone_map(fact.column("b"), 150)
    pruner = plan_zone_pruning(
        Catalog(), fact, "fact",
        [
            ColumnPredicate("fact", "a", Predicate.eq("a", 5)),
            ColumnPredicate("fact", "b", Predicate.eq("b", 5)),
        ],
        [],
    )
    assert pruner is not None
    assert pruner.misaligned == 1  # the 100-row map cannot rechunk to 150
    # The surviving 150-row map still prunes soundly: row 5 lives in zone 0.
    assert pruner.zones_pruned == pruner.zones_checked - 1


def test_executor_counts_misaligned_maps():
    """A stale FK zone map degrades to a full scan, counted — the answer
    must match an engine with no zone maps at all."""
    catalog, schema, star = build_ssb_catalog(1000, seed=7)
    engine = ssb_engine_from_catalog(catalog)
    fact = engine.catalog.table(star.fact_table)
    fact.ensure_zone_maps(128)
    stale = build_zone_map(np.arange(64, dtype=np.int64), 128)
    fact.attach_zone_map("lo_suppkey", stale)

    reference_engine = ssb_engine_from_catalog(build_ssb_catalog(1000, seed=7)[0])
    text = """with SSB for s_region = 'ASIA' by month, s_region
        assess quantity against 50 using ratio(quantity, 50)
        labels {[0, 1): low, [1, inf]: high}"""
    reference = AssessSession(reference_engine).assess(text)
    got = AssessSession(engine).assess(text)
    assert results_identical(got, reference)
    assert engine.metrics.get("engine.storage.zone_misaligned") >= 1


# ----------------------------------------------------------------------
# Satellite: partitioned v2 store differential
# ----------------------------------------------------------------------
def test_partitioned_store_differential(tmp_path):
    catalog, schema, star = build_ssb_catalog(4096, seed=7)
    fact = catalog.table(star.fact_table)

    writer = PartitionedStoreWriter(str(tmp_path / "store"), zone_rows=256)
    for table in catalog:
        if table.name != star.fact_table:
            writer.add_table(table)
    writer.begin_partitioned(star.fact_table)
    for lo in range(0, len(fact), 1024):
        hi = min(lo + 1024, len(fact))
        writer.append_partition(Table(star.fact_table, {
            name: fact.column(name)[lo:hi] for name in fact.column_names
        }))
    path = writer.finish()

    loaded = load_catalog(path)
    stored_fact = loaded.table(star.fact_table)
    assert stored_fact.storage(fact.column_names[0]).encoding == "partitioned"
    assert stored_fact.has_zone_maps  # per-partition maps stitched globally

    reference = AssessSession(ssb_engine_from_catalog(catalog))
    spilled = AssessSession(
        ssb_engine_from_catalog(loaded), memory_budget=TINY_BUDGET
    )
    for intention in INTENTIONS:
        if intention == "External":
            continue  # the BUDGET cube is not part of this bare catalog
        text = QUANTITY_VARIANTS[intention]
        assert results_identical(spilled.assess(text),
                                 reference.assess(text)), intention
    assert spilled.engine.metrics.get("engine.spill.queries") >= 1
