"""Edge-case tests across layers: empty selections, degenerate cubes,
unusual-but-legal statements, and result presentation."""

import math

import numpy as np
import pytest

from repro.core import (
    Cube,
    CubeQuery,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Level,
    Measure,
    Predicate,
)


class TestEmptySelections:
    def test_get_with_impossible_predicate(self, sales):
        schema = sales.cube("SALES").schema
        result = sales.get(
            CubeQuery(
                "SALES",
                GroupBySet(schema, ["month"]),
                (Predicate.eq("country", "Atlantis"),),
                ("quantity",),
            )
        )
        assert len(result) == 0

    def test_assess_on_empty_target(self, sales_session):
        result = sales_session.assess(
            """with SALES for country = 'Atlantis' by month, country
               assess quantity against 10
               using ratio(quantity, 10)
               labels {[0, 1): low, [1, inf): high}"""
        )
        assert len(result) == 0
        assert result.label_counts() == {}

    def test_empty_sibling_benchmark_inner(self, sales_session):
        """A sibling slice with no data leaves an empty inner result."""
        result = sales_session.assess(
            """with SALES for product = 'milk', country = 'Italy'
               by product, country
               assess quantity against country = 'Atlantis'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        assert len(result) == 0

    def test_empty_sibling_benchmark_outer(self, sales_session):
        result = sales_session.assess(
            """with SALES for product = 'milk', country = 'Italy'
               by product, country
               assess* quantity against country = 'Atlantis'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        assert len(result) == 1
        assert result.cells()[0].label is None


class TestSingleCellCubes:
    def test_complete_aggregation_group_by(self, sales_session):
        """An empty by clause is not allowed by the grammar, but a fully
        constrained statement reduces to one cell."""
        result = sales_session.assess(
            """with SALES for year = '1997' by year
               assess storeSales against 10000
               using ratio(storeSales, 10000)
               labels {[0, 1): low, [1, inf): high}"""
        )
        assert len(result) == 1

    def test_holistic_functions_on_single_cell(self, sales_session):
        result = sales_session.assess(
            """with SALES for year = '1997' by year
               assess storeSales against 10000
               using minMaxNorm(difference(storeSales, 10000))
               labels {[0, 0.5): low, [0.5, 1]: high}"""
        )
        # a constant column min-max-normalises to 0
        assert result.cells()[0].comparison == 0.0


class TestUnusualStatements:
    def test_same_statement_different_aliases_of_levels(self, sales_session):
        """by clause order does not change results (canonical ordering)."""
        a = sales_session.assess(
            "with SALES by country, year assess quantity labels median"
        )
        b = sales_session.assess(
            "with SALES by year, country assess quantity labels median"
        )
        assert {c.coordinate for c in a} == {c.coordinate for c in b}

    def test_predicate_on_level_not_in_group_by(self, sales_session):
        result = sales_session.assess(
            """with SALES for category = 'Fruit' by month
               assess quantity labels quartiles"""
        )
        assert len(result) == 24

    def test_numeric_literal_arithmetic_only_using(self, sales_session):
        result = sales_session.assess(
            """with SALES by year assess quantity
               using quantity / 1000 labels median"""
        )
        for cell in result:
            assert cell.comparison == pytest.approx(cell.value / 1000)

    def test_deeply_nested_using(self, sales_session):
        result = sales_session.assess(
            """with SALES by month assess storeSales against 1000
               using minMaxNorm(absoluteDifference(
                   ratio(storeSales, 1000), identity(storeSales) / storeSales))
               labels quartiles"""
        )
        assert len(result) == 24

    def test_between_predicate_end_to_end(self, sales_session):
        result = sales_session.assess(
            """with SALES for month between '1997-01' and '1997-03' by month
               assess storeSales labels terciles"""
        )
        assert len(result) == 3

    def test_past_window_larger_than_history(self, sales_session):
        result = sales_session.assess(
            """with SALES for month = '1996-03', store = 'SmartMart'
               by month, store
               assess storeSales against past 12
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}"""
        )
        assert len(result) == 1  # only two past months exist; still works


class TestResultPresentation:
    def test_to_table_with_null_labels(self, sales_session):
        result = sales_session.assess(
            """with SALES for product = 'milk', country = 'Italy'
               by product, country
               assess* quantity against country = 'Atlantis'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        text = result.to_table()
        assert "null" in text
        assert "None" in text  # the label column

    def test_to_table_limit_zero_like(self, sales_session):
        result = sales_session.assess(
            "with SALES by year assess quantity labels median"
        )
        text = result.to_table(limit=1)
        assert len(text.splitlines()) == 3

    def test_assessed_cell_equality_with_nan(self, sales_session):
        result = sales_session.assess(
            """with SALES for product = 'milk', country = 'Italy'
               by product, country
               assess* quantity against country = 'Atlantis'
               using difference(quantity, benchmark.quantity)
               labels {[-inf, 0): below, [0, inf): above}"""
        )
        cells = result.cells()
        assert cells[0] == cells[0]
        assert math.isnan(cells[0].benchmark)


class TestMeasureColumnDtypes:
    def test_integer_measure_input_coerced_to_float(self):
        schema = CubeSchema(
            "S", [Hierarchy("H", [Level("a")])], [Measure("m")]
        )
        gb = GroupBySet(schema, ["a"])
        cube = Cube(schema, gb, {"a": ["x"]}, {"m": np.array([5])})
        assert cube.measure("m").dtype == np.float64

    def test_label_column_stays_object(self, sales_session):
        result = sales_session.assess(
            "with SALES by year assess quantity labels median"
        )
        assert result.cube.measure("label").dtype == object
