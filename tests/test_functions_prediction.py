"""Unit tests for time-series predictors (past benchmarks, Section 3.1)."""

import numpy as np
import pytest

from repro.functions import (
    exponential_smoothing,
    linear_regression,
    moving_average,
    naive_last,
)


class TestLinearRegression:
    def test_exact_on_linear_series(self):
        # 10, 20, 30, 40 → next is 50
        history = np.array([[10.0, 20.0, 30.0, 40.0]])
        assert linear_regression(history)[0] == pytest.approx(50.0)

    def test_declining_series(self):
        history = np.array([[40.0, 30.0, 20.0, 10.0]])
        assert linear_regression(history)[0] == pytest.approx(0.0)

    def test_flat_series(self):
        history = np.array([[7.0, 7.0, 7.0]])
        assert linear_regression(history)[0] == pytest.approx(7.0)

    def test_vectorised_over_rows(self):
        history = np.array([[1.0, 2.0], [10.0, 10.0], [4.0, 2.0]])
        out = linear_regression(history)
        assert out.tolist() == pytest.approx([3.0, 10.0, 0.0])

    def test_nan_gaps_use_available_points(self):
        # points at t=0 and t=2 on the line y = t + 1 → predict y(3) = 4
        history = np.array([[1.0, np.nan, 3.0]])
        assert linear_regression(history)[0] == pytest.approx(4.0)

    def test_single_point_falls_back_to_mean(self):
        history = np.array([[np.nan, 5.0, np.nan]])
        assert linear_regression(history)[0] == pytest.approx(5.0)

    def test_all_nan_row_predicts_nan(self):
        history = np.array([[np.nan, np.nan]])
        assert np.isnan(linear_regression(history)[0])

    def test_one_dimensional_input_promoted(self):
        assert linear_regression(np.array([3.0, 4.0])).shape == (2,)


class TestMovingAverage:
    def test_mean_of_history(self):
        history = np.array([[10.0, 20.0, 30.0]])
        assert moving_average(history)[0] == pytest.approx(20.0)

    def test_ignores_nan(self):
        history = np.array([[10.0, np.nan, 30.0]])
        assert moving_average(history)[0] == pytest.approx(20.0)


class TestExponentialSmoothing:
    def test_alpha_weighting(self):
        history = np.array([[0.0, 10.0]])
        # s0 = 0, s1 = 0.5*10 + 0.5*0 = 5
        assert exponential_smoothing(history, alpha=0.5)[0] == pytest.approx(5.0)

    def test_nan_keeps_previous_state(self):
        history = np.array([[4.0, np.nan, np.nan]])
        assert exponential_smoothing(history)[0] == pytest.approx(4.0)

    def test_leading_nan(self):
        history = np.array([[np.nan, 6.0]])
        assert exponential_smoothing(history)[0] == pytest.approx(6.0)


class TestNaiveLast:
    def test_takes_latest(self):
        history = np.array([[1.0, 2.0, 3.0]])
        assert naive_last(history)[0] == 3.0

    def test_skips_trailing_nan(self):
        history = np.array([[1.0, 2.0, np.nan]])
        assert naive_last(history)[0] == 2.0

    def test_all_nan(self):
        assert np.isnan(naive_last(np.array([[np.nan, np.nan]]))[0])


class TestSeasonalNaive:
    def test_uses_value_one_season_ago(self):
        from repro.functions import seasonal_naive

        history = np.arange(1.0, 13.0)[None, :]  # 12 months: 1..12
        assert seasonal_naive(history, season=12)[0] == 1.0

    def test_short_history_falls_back_to_last(self):
        from repro.functions import seasonal_naive

        history = np.array([[3.0, 7.0]])
        assert seasonal_naive(history, season=12)[0] == 7.0

    def test_nan_at_lag_falls_back(self):
        from repro.functions import seasonal_naive

        history = np.concatenate([[np.nan], np.arange(2.0, 13.0)])[None, :]
        assert seasonal_naive(history, season=12)[0] == 12.0


class TestHoltLinear:
    def test_tracks_linear_trend(self):
        from repro.functions import holt_linear

        history = np.array([[10.0, 20.0, 30.0, 40.0]])
        prediction = holt_linear(history)[0]
        assert 40.0 < prediction <= 50.5  # continues upward

    def test_flat_series_stays_flat(self):
        from repro.functions import holt_linear

        history = np.array([[5.0, 5.0, 5.0, 5.0]])
        assert holt_linear(history)[0] == pytest.approx(5.0)

    def test_single_point_falls_back(self):
        from repro.functions import holt_linear

        history = np.array([[np.nan, 8.0, np.nan]])
        assert holt_linear(history)[0] == pytest.approx(8.0)

    def test_all_nan(self):
        from repro.functions import holt_linear

        assert np.isnan(holt_linear(np.array([[np.nan, np.nan]]))[0])


class TestNewPredictorsEndToEnd:
    @pytest.mark.parametrize("method", ["seasonalNaive", "holtLinear"])
    def test_usable_in_past_statements(self, sales_session, method):
        statement = sales_session.parse(
            """with SALES for month = '1997-07', store = 'SmartMart'
               by month, store assess storeSales against past 6
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}"""
        )
        statement.benchmark.method = method
        result = sales_session.assess(statement)
        assert len(result) == 1
        assert result.cells()[0].benchmark > 0
