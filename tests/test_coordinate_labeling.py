"""Unit tests for coordinate-dependent labeling (§8 expressiveness item)."""

import numpy as np
import pytest

from repro.core import (
    CoordinateLabeling,
    ExecutionError,
    RangeLabeling,
    ValidationError,
)


def strict():
    return RangeLabeling.from_cutpoints([0.95, 1.05], ["miss", "hit", "exceed"])


def lenient():
    return RangeLabeling.from_cutpoints([0.8, 1.2], ["miss", "hit", "exceed"])


class TestFromCutpoints:
    def test_partition_shape(self):
        labeling = strict()
        assert labeling.labels == ("miss", "hit", "exceed")
        assert labeling.apply_scalar(0.9) == "miss"
        assert labeling.apply_scalar(1.0) == "hit"
        assert labeling.apply_scalar(1.05) == "exceed"  # [b, inf) closed low

    def test_every_value_labeled(self):
        labeling = strict()
        for value in (-1e9, 0.95, 1.0, 1.049999, 2.0, 1e9):
            assert labeling.apply_scalar(value) is not None

    def test_wrong_label_count_rejected(self):
        with pytest.raises(ValidationError):
            RangeLabeling.from_cutpoints([0.0], ["only-one"])


class TestCoordinateLabelingUnit:
    def test_case_selection(self):
        labeling = CoordinateLabeling(
            "country", {"Italy": strict()}, default=lenient()
        )
        values = np.array([0.9, 0.9])
        members = ["Italy", "France"]
        labels = labeling.apply(values, members)
        assert labels.tolist() == ["miss", "hit"]  # Italy strict, France lenient

    def test_missing_case_without_default_gets_null(self):
        labeling = CoordinateLabeling("country", {"Italy": strict()})
        labels = labeling.apply(np.array([1.0]), ["Spain"])
        assert labels[0] is None

    def test_needs_cases_or_default(self):
        with pytest.raises(ValidationError):
            CoordinateLabeling("country", {})

    def test_cases_must_be_range_labelings(self):
        with pytest.raises(ValidationError):
            CoordinateLabeling("country", {"Italy": "strict"})

    def test_vocabulary_merged(self):
        labeling = CoordinateLabeling(
            "country",
            {"Italy": RangeLabeling.from_cutpoints([0], ["low", "high"])},
            default=RangeLabeling.from_cutpoints([0], ["below", "above"]),
        )
        assert set(labeling.labels) == {"low", "high", "below", "above"}

    def test_render(self):
        text = CoordinateLabeling("country", {"Italy": strict()}).render()
        assert "case country = 'Italy'" in text


class TestEndToEnd:
    STATEMENT = """
        with SALES by year, country
        assess storeSales against 30000
        using ratio(storeSales, 30000)
        labels perCountryGoals
    """

    def session_with_spec(self, sales_session):
        sales_session.define_labeling_spec(
            "perCountryGoals",
            CoordinateLabeling(
                "country",
                {"Italy": strict()},  # Italy judged strictly
                default=lenient(),
            ),
        )
        return sales_session

    def test_named_spec_substituted_and_applied(self, sales_session):
        session = self.session_with_spec(sales_session)
        result = session.assess(self.STATEMENT)
        assert len(result) == 6  # 2 years × 3 countries
        by_country = {}
        for cell in result:
            by_country.setdefault(cell.coordinate[1], []).append(cell)
        # same comparison value can label differently across countries
        assert all(cell.label in ("miss", "hit", "exceed") for cell in result)

    def test_stricter_case_actually_stricter(self, sales_session):
        session = self.session_with_spec(sales_session)
        result = session.assess(self.STATEMENT)
        for cell in result:
            country = cell.coordinate[1]
            expected = (strict() if country == "Italy" else lenient()).apply_scalar(
                cell.comparison
            )
            assert cell.label == expected

    def test_level_must_be_in_group_by(self, sales_session):
        session = self.session_with_spec(sales_session)
        with pytest.raises(ExecutionError, match="group-by"):
            session.assess(
                """with SALES by year assess storeSales against 30000
                   using ratio(storeSales, 30000) labels perCountryGoals"""
            )

    def test_unknown_named_spec_still_checks_registry(self, sales_session):
        from repro.core import FunctionError

        with pytest.raises(FunctionError):
            sales_session.assess(
                "with SALES by year assess storeSales labels noSuchSpec"
            )


def test_apply_matches_per_cell_oracle():
    """Grouped vectorised apply equals the per-row scalar oracle."""
    import numpy as np

    from repro.core.labels import CoordinateLabeling, RangeLabeling, five_stars_rules

    strict = RangeLabeling(five_stars_rules())
    lenient = RangeLabeling.from_cutpoints([0.0], ["neg", "pos"])
    rng = np.random.default_rng(11)
    members = list(rng.choice(["Italy", "France", "Japan"], 200)) + [None]
    values = np.append(rng.uniform(-1.5, 1.5, 200), np.nan)
    for spec in (
        CoordinateLabeling("country", {"Italy": strict}, default=lenient),
        CoordinateLabeling("country", {"Italy": strict, "France": lenient}),
    ):
        assert spec.apply(values, members).tolist() == spec.apply_python(values, members).tolist()
