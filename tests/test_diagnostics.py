"""Tests for the structured-diagnostics core types (`repro.core.diagnostics`)."""

from __future__ import annotations

from repro.core.diagnostics import (
    Diagnostic,
    DiagnosticBag,
    Severity,
    Span,
    line_and_column,
)


# ----------------------------------------------------------------------
# line_and_column
# ----------------------------------------------------------------------
class TestLineAndColumn:
    def test_first_character(self):
        assert line_and_column("hello", 0) == (1, 1)

    def test_middle_of_first_line(self):
        assert line_and_column("hello", 3) == (1, 4)

    def test_after_newline(self):
        assert line_and_column("ab\ncd", 3) == (2, 1)
        assert line_and_column("ab\ncd", 4) == (2, 2)

    def test_multiple_newlines(self):
        text = "one\ntwo\nthree"
        assert line_and_column(text, text.index("three")) == (3, 1)

    def test_offset_clamped_to_length(self):
        assert line_and_column("ab", 99) == (1, 3)

    def test_negative_offset(self):
        assert line_and_column("ab", -1) == (1, 1)


# ----------------------------------------------------------------------
# Span
# ----------------------------------------------------------------------
class TestSpan:
    def test_from_text_computes_line_column(self):
        text = "with SALES\nby month"
        span = Span.from_text(text, text.index("month"), text.index("month") + 5)
        assert (span.line, span.column) == (2, 4)
        assert text[span.start:span.end] == "month"

    def test_from_text_defaults_to_one_char(self):
        span = Span.from_text("abc", 1)
        assert (span.start, span.end) == (1, 2)

    def test_end_never_precedes_start(self):
        span = Span(5, 3)
        assert span.end == 5

    def test_merge_covers_both(self):
        a = Span.from_text("abcdefgh", 1, 3)
        b = Span.from_text("abcdefgh", 5, 7)
        merged = a.merge(b)
        assert (merged.start, merged.end) == (1, 7)
        assert (merged.line, merged.column) == (a.line, a.column)
        # Commutative on extent, keeps the earlier operand's anchor.
        swapped = b.merge(a)
        assert (swapped.start, swapped.end) == (1, 7)
        assert (swapped.line, swapped.column) == (a.line, a.column)

    def test_label(self):
        assert Span(0, 1, 3, 7).label() == "3:7"

    def test_equality(self):
        assert Span(1, 2, 1, 2) == Span(1, 2, 1, 2)
        assert Span(1, 2) != Span(1, 3)

    def test_from_token_duck_typing(self):
        class Token:
            position = 4
            end = 9
            line = 1
            column = 5
            value = "month"

        span = Span.from_token(Token())
        assert (span.start, span.end, span.line, span.column) == (4, 9, 1, 5)

    def test_from_token_without_end_uses_value_length(self):
        class Token:
            position = 4
            end = -1
            value = "month"

        span = Span.from_token(Token())
        assert (span.start, span.end) == (4, 9)


# ----------------------------------------------------------------------
# Severity
# ----------------------------------------------------------------------
class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_str(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"


# ----------------------------------------------------------------------
# Diagnostic
# ----------------------------------------------------------------------
class TestDiagnostic:
    def test_is_error(self):
        assert Diagnostic("X", Severity.ERROR, "m").is_error
        assert not Diagnostic("X", Severity.WARNING, "m").is_error

    def test_render_without_span(self):
        rendered = Diagnostic("ASSESS104", Severity.ERROR, "no such measure").render()
        assert rendered == "error[ASSESS104]: no such measure"

    def test_render_with_caret(self):
        text = "with SALES by mnth assess quantity"
        start = text.index("mnth")
        span = Span.from_text(text, start, start + 4)
        rendered = Diagnostic("ASSESS102", Severity.ERROR, "unknown level", span).render(text)
        lines = rendered.splitlines()
        assert lines[0] == "1:15: error[ASSESS102]: unknown level"
        assert lines[1] == f"  {text}"
        # The caret underlines exactly the offending token.
        assert lines[2] == "  " + " " * (start) + "^^^^"

    def test_render_caret_on_second_line(self):
        text = "with SALES\nby mnth assess quantity"
        start = text.index("mnth")
        span = Span.from_text(text, start, start + 4)
        rendered = Diagnostic("ASSESS102", Severity.ERROR, "unknown level", span).render(text)
        lines = rendered.splitlines()
        assert lines[1] == "  by mnth assess quantity"
        assert lines[2] == "  " + " " * 3 + "^^^^"

    def test_render_hint(self):
        d = Diagnostic("ASSESS104", Severity.ERROR, "m", hint="measures: quantity")
        assert d.render().splitlines()[-1] == "  hint: measures: quantity"


# ----------------------------------------------------------------------
# DiagnosticBag
# ----------------------------------------------------------------------
class TestDiagnosticBag:
    def test_report_builds_and_records(self):
        bag = DiagnosticBag()
        d = bag.report("ASSESS101", Severity.ERROR, "boom", source="statement")
        assert list(bag) == [d]
        assert d.source == "statement"

    def test_accounting(self):
        bag = DiagnosticBag()
        bag.report("E1", Severity.ERROR, "e")
        bag.report("W1", Severity.WARNING, "w")
        bag.report("I1", Severity.INFO, "i")
        assert bag.has_errors
        assert [d.code for d in bag.errors()] == ["E1"]
        assert [d.code for d in bag.warnings()] == ["W1"]
        assert bag.codes() == ("E1", "W1", "I1")
        assert len(bag) == 3 and bool(bag)

    def test_empty_bag_is_falsy(self):
        bag = DiagnosticBag()
        assert not bag and not bag.has_errors and len(bag) == 0

    def test_sorted_by_position_then_severity(self):
        bag = DiagnosticBag()
        bag.report("LATE", Severity.ERROR, "m", Span(10, 11))
        bag.report("EARLY_WARN", Severity.WARNING, "m", Span(2, 3))
        bag.report("EARLY_ERR", Severity.ERROR, "m", Span(2, 3))
        bag.report("NOSPAN", Severity.ERROR, "m")
        assert bag.sorted().codes() == ("NOSPAN", "EARLY_ERR", "EARLY_WARN", "LATE")

    def test_extend_and_render(self):
        bag = DiagnosticBag([Diagnostic("A", Severity.ERROR, "first")])
        bag.extend([Diagnostic("B", Severity.WARNING, "second")])
        rendered = bag.render()
        assert "error[A]: first" in rendered and "warning[B]: second" in rendered
