"""Persistent telemetry: query log, time series, profiler, watchdog."""

import json
import threading

import numpy as np
import pytest

from repro.api import AssessSession
from repro.batch.session import results_identical
from repro.obs.qlog import (
    QueryLog,
    QueryLogError,
    build_record,
    counters_delta,
    iter_records,
    statement_fingerprint,
    validate_record,
)
from repro.obs.timeseries import LogHistogram, RingBuffer, TelemetryHub
from repro.obs.profiler import (
    SamplingProfiler,
    profile_env_interval,
    profiling,
)
from repro.obs.rss import peak_rss_bytes, peak_rss_kb
from repro.obs.telemetry import Telemetry
from repro.obs.watchdog import (
    aggregate_history,
    load_baseline,
    load_history,
    watch,
    write_baseline,
)


SIBLING = """
with SALES for type = 'Fresh Fruit', country = 'Italy' by product, country
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""

SIBLING_REORDERED = """
with SALES for country = 'Italy', type = 'Fresh Fruit' by country, product
assess quantity against country = 'France'
using percOfTotal(difference(quantity, benchmark.quantity))
labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
"""

MONTHLY = "with SALES by month assess storeSales labels quartiles"


def _fake_record(fingerprint, total_s, *, status="ok", counters=None,
                 seq=1, ts=1000.0, **extra):
    """A schema-valid record without needing a parsed statement."""
    record = {
        "v": 1, "ts": ts, "session": "test-session", "seq": seq,
        "fingerprint": fingerprint, "cube": "SALES", "measure": "quantity",
        "group_by": ["product", "country"], "benchmark": "",
        "plan": "POP", "status": status, "phases": {"get": total_s},
        "total_s": total_s, "rows_in": 100, "rows_out": 4, "cells_out": 8,
        "counters": dict(counters or {}), "peak_rss_kb": 1024,
    }
    if status == "error":
        record["error"] = "PlanError: boom"
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_under_reordering(self, sales_session):
        a = sales_session.parse(SIBLING)
        b = sales_session.parse(SIBLING_REORDERED)
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_distinct_statements_differ(self, sales_session):
        a = sales_session.parse(SIBLING)
        b = sales_session.parse(MONTHLY)
        assert statement_fingerprint(a) != statement_fingerprint(b)

    def test_shape(self, sales_session):
        fingerprint = statement_fingerprint(sales_session.parse(MONTHLY))
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # hex


# ----------------------------------------------------------------------
# Query log: schema round-trip, rotation, concurrency
# ----------------------------------------------------------------------
class TestQueryLog:
    def test_round_trip_and_validate(self, tmp_path, sales_session):
        log = QueryLog(tmp_path)
        statement = sales_session.parse(SIBLING)
        record = build_record(
            statement, session_id="s1", seq=1, plan_name="POP",
            status="ok", total_s=0.01,
            phases={"get": 0.008, "label": 0.001},
            rows_out=4, cells_out=8,
            counters={"engine.rows_scanned": 100, "engine.scans": 1},
        )
        validate_record(record)
        log.append(record)
        log.close()
        read_back = list(iter_records(tmp_path, strict=True))
        assert len(read_back) == 1
        assert read_back[0] == json.loads(
            json.dumps(record)  # float round-trip, like the file
        )
        assert read_back[0]["rows_in"] == 100
        assert read_back[0]["fingerprint"] == statement_fingerprint(statement)

    def test_validate_rejects_malformed(self):
        with pytest.raises(QueryLogError):
            validate_record([])
        with pytest.raises(QueryLogError):
            validate_record({"v": 99})
        good = _fake_record("f" * 16, 0.01)
        validate_record(good)
        for field in ("ts", "fingerprint", "counters", "phases"):
            bad = dict(good)
            del bad[field]
            with pytest.raises(QueryLogError):
                validate_record(bad)
        bad = dict(good, status="maybe")
        with pytest.raises(QueryLogError):
            validate_record(bad)
        bad = dict(good, status="error")  # error status without message
        with pytest.raises(QueryLogError):
            validate_record(bad)
        bad = dict(good, phases={"get": -1.0})
        with pytest.raises(QueryLogError):
            validate_record(bad)
        bad = dict(good, counters={"x": 1.5})
        with pytest.raises(QueryLogError):
            validate_record(bad)

    def test_rotation_keeps_last_segments(self, tmp_path):
        log = QueryLog(tmp_path, max_bytes=512, keep=3)
        for seq in range(40):
            log.append(_fake_record("a" * 16, 0.001, seq=seq))
        log.close()
        segments = sorted(tmp_path.glob("queries-*.jsonl"))
        assert 1 < len(segments) <= 3
        # Survivors are the highest-numbered segments and all parse.
        for record in iter_records(tmp_path, strict=True):
            validate_record(record)
        last = list(iter_records(tmp_path))[-1]
        assert last["seq"] == 39

    def test_reader_skips_torn_record(self, tmp_path):
        log = QueryLog(tmp_path)
        log.append(_fake_record("a" * 16, 0.001, seq=1))
        log.append(_fake_record("a" * 16, 0.001, seq=2))
        log.close()
        segment = next(tmp_path.glob("queries-*.jsonl"))
        with open(segment, "a") as handle:
            handle.write('{"v": 1, "truncated')  # crashed writer
        assert [r["seq"] for r in iter_records(tmp_path)] == [1, 2]
        with pytest.raises(QueryLogError):
            list(iter_records(tmp_path, strict=True))

    def test_concurrent_writers_no_torn_records(self, tmp_path):
        """Many threads, separate QueryLog instances, one directory."""
        threads_n, per_thread = 8, 50
        barrier = threading.Barrier(threads_n)

        def writer(thread_index):
            log = QueryLog(tmp_path)
            barrier.wait()
            for seq in range(per_thread):
                log.append(_fake_record(
                    f"{thread_index:016x}", 0.001, seq=seq,
                    session=f"session-{thread_index}",
                ))
            log.close()

        workers = [
            threading.Thread(target=writer, args=(i,))
            for i in range(threads_n)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        records = list(iter_records(tmp_path, strict=True))
        assert len(records) == threads_n * per_thread
        for record in records:
            validate_record(record)

    def test_counters_delta(self):
        before = {"a": 5, "b": 2}
        after = {"a": 8, "b": 2, "c": 1}
        assert counters_delta(before, after) == {"a": 3, "c": 1}


# ----------------------------------------------------------------------
# Time series: ring buffer + log-bucketed histogram vs numpy oracle
# ----------------------------------------------------------------------
class TestRingBuffer:
    def test_wraps_and_orders(self):
        ring = RingBuffer(capacity=4)
        for value in range(10):
            ring.push(float(value), ts=float(value))
        assert len(ring) == 4
        assert ring.values() == [6.0, 7.0, 8.0, 9.0]
        assert ring.last() == (9.0, 9.0)

    def test_empty(self):
        assert RingBuffer(4).last() is None
        assert RingBuffer(4).values() == []


class TestLogHistogram:
    #: The grid's growth is 2**0.25 (~19% bucket width); linear
    #: interpolation inside the bucket keeps the estimate within the
    #: bucket, so relative error is bounded by the bucket width.
    TOLERANCE = 2 ** 0.25 - 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_percentiles_vs_numpy(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=-6.0, sigma=1.5, size=5000)
        histogram = LogHistogram()
        for sample in samples:
            histogram.observe(float(sample))
        for q in (0.50, 0.95, 0.99):
            oracle = float(np.percentile(samples, 100 * q))
            estimate = histogram.quantile(q)
            assert estimate == pytest.approx(oracle, rel=self.TOLERANCE)

    def test_monotone_and_bounded(self):
        rng = np.random.default_rng(7)
        histogram = LogHistogram()
        samples = rng.uniform(1e-4, 0.5, size=1000)
        for sample in samples:
            histogram.observe(float(sample))
        summary = histogram.percentiles()
        assert summary["min"] <= summary["p50"] <= summary["p95"]
        assert summary["p95"] <= summary["p99"] <= summary["max"]
        assert summary["count"] == 1000
        assert summary["sum"] == pytest.approx(float(samples.sum()))

    def test_empty_and_degenerate(self):
        histogram = LogHistogram()
        assert histogram.quantile(0.5) == 0.0
        histogram.observe(0.01)
        assert histogram.quantile(0.5) == pytest.approx(0.01, rel=0.2)
        histogram.observe(-5.0)  # clamped to zero, not a crash
        assert histogram.count == 2

    def test_cumulative_buckets_prometheus_shape(self):
        histogram = LogHistogram()
        for value in (0.001, 0.002, 0.004, 10_000.0):  # one overflow
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        uppers = [upper for upper, _ in pairs]
        counts = [count for _, count in pairs]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert uppers[-1] == float("inf")
        assert counts[-1] == 4


class TestTelemetryHub:
    def test_observe_and_snapshot(self):
        hub = TelemetryHub(capacity=8)
        for value in (0.001, 0.002, 0.003):
            hub.observe_latency("query.seconds", value, ts=1.0)
        hub.record_point("query.rows_out", 42.0, ts=2.0)
        snapshot = hub.snapshot()
        assert snapshot["histograms"]["query.seconds"]["count"] == 3
        assert snapshot["series"]["query.rows_out"]["last"] == 42.0
        assert hub.percentiles("unseen")["count"] == 0

    def test_thread_safety(self):
        hub = TelemetryHub()

        def worker():
            for _ in range(500):
                hub.observe_latency("query.seconds", 0.001)

        workers = [threading.Thread(target=worker) for _ in range(4)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert hub.histogram("query.seconds").count == 2000


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_collects_samples_and_collapses(self):
        with profiling(interval=0.001) as profiler:
            total = 0
            for i in range(400_000):
                total += i * i
        assert total > 0
        assert profiler.samples > 0
        text = profiler.collapsed()
        assert text
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or ":" in stack
        assert profiler.hot_frames(3)

    def test_results_bit_identical_with_profiler_on(self, sales_session):
        baseline = sales_session.assess(SIBLING)
        with profiling(interval=0.001):
            profiled = sales_session.assess(SIBLING)
        assert results_identical(baseline, profiled)

    def test_start_stop_lifecycle(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        assert profiler.running
        profiler.stop()
        assert not profiler.running
        profiler.stop()  # idempotent

    def test_write(self, tmp_path):
        with profiling(interval=0.001) as profiler:
            sum(i * i for i in range(200_000))
        path = tmp_path / "stacks.collapsed"
        profiler.write(path)
        assert path.read_text().strip() == profiler.collapsed().strip()

    def test_env_interval_parsing(self):
        assert profile_env_interval("") is None
        assert profile_env_interval("0") is None
        assert profile_env_interval("off") is None
        assert profile_env_interval("1") == 0.005
        assert profile_env_interval("on") == 0.005
        assert profile_env_interval("2.5") == pytest.approx(0.0025)
        assert profile_env_interval("0.0001") == pytest.approx(1e-4)


# ----------------------------------------------------------------------
# The session-level record hook
# ----------------------------------------------------------------------
class TestSessionTelemetry:
    def test_assess_writes_schema_valid_records(self, sales, tmp_path):
        session = AssessSession(sales, telemetry=tmp_path)
        first = session.assess(SIBLING)
        session.assess(SIBLING)
        session.assess(MONTHLY)
        session.telemetry.close()
        records = list(iter_records(tmp_path, strict=True))
        assert len(records) == 3
        for record in records:
            validate_record(record)
        assert records[0]["status"] == "ok"
        assert records[0]["rows_out"] == len(first)
        assert records[0]["plan"] in ("NP", "JOP", "POP")
        assert records[0]["fingerprint"] == records[1]["fingerprint"]
        assert records[0]["fingerprint"] != records[2]["fingerprint"]
        # The second identical statement hits the result cache.
        assert records[1]["counters"].get("cache.hits", 0) >= 1

    def test_error_records_execution_failures(self, sales, tmp_path):
        session = AssessSession(sales, telemetry=tmp_path)
        with pytest.raises(Exception):
            session.assess(MONTHLY, plan="POP")  # infeasible plan
        session.telemetry.close()
        records = list(iter_records(tmp_path, strict=True))
        assert len(records) == 1
        assert records[0]["status"] == "error"
        assert "PlanError" in records[0]["error"]

    def test_batch_records_are_tagged(self, sales, tmp_path):
        session = AssessSession(sales, telemetry=tmp_path)
        session.execute_many([SIBLING, MONTHLY])
        session.telemetry.close()
        records = list(iter_records(tmp_path, strict=True))
        assert len(records) == 2
        batches = {record["batch"] for record in records}
        assert len(batches) == 1
        assert all("-" in batch for batch in batches)

    def test_results_identical_with_telemetry(self, sales, tmp_path):
        plain = AssessSession(sales)
        recorded = AssessSession(sales, telemetry=tmp_path)
        assert results_identical(
            plain.assess(SIBLING), recorded.assess(SIBLING)
        )
        recorded.telemetry.close()

    def test_hub_feeds_and_shared_telemetry(self, sales, tmp_path):
        bundle = Telemetry(tmp_path)
        one = AssessSession(sales, telemetry=bundle)
        two = AssessSession(sales, telemetry=bundle)
        one.assess(MONTHLY)
        two.assess(MONTHLY)
        bundle.close()
        assert bundle.hub.histogram("query.seconds").count == 2
        records = list(iter_records(tmp_path, strict=True))
        assert [record["seq"] for record in records] == [1, 2]

    def test_shared_bundle_sessions_get_distinct_labels(self, sales, tmp_path):
        # Regression: sessions sharing one bundle used to all record
        # the bundle's session_id, making per-session attribution (a
        # server tenant's pool) impossible.  The first registrant keeps
        # the bare id; later ones get a ``-<n>`` suffix.
        bundle = Telemetry(tmp_path)
        one = AssessSession(sales, telemetry=bundle)
        two = AssessSession(sales, telemetry=bundle)
        three = AssessSession(sales, telemetry=bundle)
        assert one.telemetry_label == bundle.session_id
        assert two.telemetry_label == f"{bundle.session_id}-2"
        assert three.telemetry_label == f"{bundle.session_id}-3"
        one.assess(MONTHLY)
        two.assess(MONTHLY)
        three.assess(MONTHLY)
        bundle.close()
        records = list(iter_records(tmp_path, strict=True))
        assert [record["session"] for record in records] == [
            bundle.session_id,
            f"{bundle.session_id}-2",
            f"{bundle.session_id}-3",
        ]
        # Bundle-level sequencing is unchanged: one shared counter.
        assert [record["seq"] for record in records] == [1, 2, 3]

    def test_single_session_label_is_bare_session_id(self, sales, tmp_path):
        session = AssessSession(sales, telemetry=str(tmp_path))
        assert session.telemetry_label == session.telemetry.session_id
        session.assess(MONTHLY)
        session.telemetry.close()
        (record,) = list(iter_records(tmp_path, strict=True))
        assert record["session"] == session.telemetry.session_id

    def test_shared_bundle_batch_records_carry_session_label(
        self, sales, tmp_path
    ):
        bundle = Telemetry(tmp_path)
        AssessSession(sales, telemetry=bundle)  # claims the bare label
        second = AssessSession(sales, telemetry=bundle)
        second.execute_many([MONTHLY, SIBLING])
        bundle.close()
        records = list(iter_records(tmp_path, strict=True))
        assert len(records) == 2
        label = f"{bundle.session_id}-2"
        assert all(record["session"] == label for record in records)
        batches = {record["batch"] for record in records}
        assert len(batches) == 1
        assert batches.pop().startswith(f"{label}-")

    def test_disabled_by_default(self, sales_session, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        assert sales_session.telemetry is None
        fresh = AssessSession(sales_session.engine)
        assert fresh.telemetry is None

    def test_env_enables(self, sales, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        session = AssessSession(sales)
        assert session.telemetry is not None
        session.assess(MONTHLY)
        session.telemetry.close()
        assert list(iter_records(tmp_path, strict=True))


# ----------------------------------------------------------------------
# Watchdog: aggregation, baseline, advisories
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_aggregates_exact_percentiles(self):
        latencies = [0.001 * (i + 1) for i in range(100)]
        records = [
            _fake_record("a" * 16, latency, seq=i)
            for i, latency in enumerate(latencies)
        ]
        history = aggregate_history(records)
        stats = history["a" * 16]
        assert stats.runs == 100
        for q, attr in ((50, "p50"), (95, "p95"), (99, "p99")):
            assert getattr(stats, attr) == pytest.approx(
                float(np.percentile(latencies, q))
            )

    def test_baseline_round_trip(self, tmp_path):
        records = [_fake_record("a" * 16, 0.01, seq=i) for i in range(5)]
        history = aggregate_history(records)
        path = tmp_path / "baseline.json"
        document = write_baseline(history, path)
        assert document["fingerprints"]["a" * 16]["runs"] == 5
        loaded = load_baseline(path)
        assert loaded["a" * 16]["p95_s"] == pytest.approx(0.01)
        assert load_baseline(tmp_path / "missing.json") is None

    def test_injected_slowdown_trips_assess410(self, tmp_path):
        fast = [_fake_record("a" * 16, 0.01, seq=i) for i in range(10)]
        baseline = load_baseline(
            write_baseline_path := tmp_path / "baseline.json"
        )
        write_baseline(aggregate_history(fast), write_baseline_path)
        baseline = load_baseline(write_baseline_path)
        slow = [
            _fake_record("a" * 16, 0.1, seq=i)  # injected 10x slowdown
            for i in range(10)
        ]
        advisories = watch(aggregate_history(slow), baseline)
        codes = {advisory.code for advisory in advisories}
        assert "ASSESS410" in codes
        rendered = advisories[0].render()
        assert "ASSESS410" in rendered and "warning" in rendered

    def test_no_advisory_at_parity(self, tmp_path):
        records = [_fake_record("a" * 16, 0.01, seq=i) for i in range(10)]
        path = tmp_path / "baseline.json"
        write_baseline(aggregate_history(records), path)
        assert watch(aggregate_history(records), load_baseline(path)) == []

    def test_cache_miss_storm_assess411(self, tmp_path):
        hits = [
            _fake_record("a" * 16, 0.01, seq=i,
                         counters={"cache.hits": 1})
            for i in range(10)
        ]
        path = tmp_path / "baseline.json"
        write_baseline(aggregate_history(hits), path)
        misses = [
            _fake_record("a" * 16, 0.01, seq=i,
                         counters={"cache.misses": 1})
            for i in range(10)
        ]
        advisories = watch(aggregate_history(misses), load_baseline(path))
        assert "ASSESS411" in {advisory.code for advisory in advisories}

    def test_spill_pressure_assess412(self):
        records = [
            _fake_record("a" * 16, 0.01, seq=i,
                         counters={"engine.spill.spills": 2})
            for i in range(4)
        ]
        advisories = watch(aggregate_history(records), None)
        assert "ASSESS412" in {advisory.code for advisory in advisories}

    def test_parallel_fallback_storm_assess413(self):
        records = [
            _fake_record("a" * 16, 0.01, seq=i, parallelism=2,
                         counters={"engine.parallel.morsels": 4,
                                   "engine.parallel.fallbacks": 1})
            for i in range(4)
        ]
        advisories = watch(aggregate_history(records), None)
        assert "ASSESS413" in {advisory.code for advisory in advisories}

    def test_load_history_reads_directory(self, tmp_path):
        log = QueryLog(tmp_path)
        for seq in range(3):
            log.append(_fake_record("a" * 16, 0.01, seq=seq))
        log.close()
        history = load_history(tmp_path)
        assert history["a" * 16].runs == 3


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_counters_and_hub_histograms(self):
        from repro.obs.export import to_prometheus
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("engine.scans", 3)
        hub = TelemetryHub()
        for value in (0.001, 0.002, 0.004):
            hub.observe_latency("query.seconds", value)
        hub.record_point("query.rows_out", 42.0)
        text = to_prometheus(registry, hub)
        assert "# TYPE repro_engine_scans_total counter" in text
        assert "repro_engine_scans_total 3" in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_query_seconds_count 3" in text
        assert "repro_query_seconds_p95" in text
        assert "repro_query_rows_out 42" in text
        assert text.endswith("\n")

    def test_global_registry_default(self):
        from repro.obs.export import to_prometheus
        from repro.obs.metrics import METRICS

        METRICS.inc("telemetry.test_counter")
        assert "repro_telemetry_test_counter_total 1" in to_prometheus()


# ----------------------------------------------------------------------
# The history CLI + schema validator tool
# ----------------------------------------------------------------------
class TestHistoryCli:
    def _populate(self, sales, directory):
        session = AssessSession(sales, telemetry=directory)
        for _ in range(3):
            session.assess(SIBLING)
            session.assess(MONTHLY)
        session.telemetry.close()

    def test_history_renders_and_exits_zero(self, sales, tmp_path, capsys):
        from repro.cli import main

        self._populate(sales, tmp_path)
        assert main(["history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "6 records" in out
        assert "SALES.quantity" in out and "SALES.storeSales" in out
        assert "no advisories" in out

    def test_write_baseline_then_watch(self, sales, tmp_path, capsys):
        from repro.cli import main

        self._populate(sales, tmp_path)
        assert main(["history", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "baseline.json").exists()
        assert main(["history", str(tmp_path), "--strict"]) == 0
        capsys.readouterr()

    def test_strict_fails_on_injected_slowdown(self, sales, tmp_path,
                                               capsys):
        from repro.cli import main

        self._populate(sales, tmp_path)
        assert main(["history", str(tmp_path), "--write-baseline"]) == 0
        # Inject a 10x slowdown for every fingerprint.
        slowed = []
        for record in iter_records(tmp_path):
            if record["status"] == "ok":
                slow = dict(record, total_s=record["total_s"] * 10)
                slowed.append(slow)
        log = QueryLog(tmp_path)
        for record in slowed:
            log.append(record)
        log.close()
        assert main(["history", str(tmp_path), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "ASSESS410" in out

    def test_json_and_prometheus_modes(self, sales, tmp_path, capsys):
        from repro.cli import main

        self._populate(sales, tmp_path)
        assert main(["history", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 6
        assert len(payload["fingerprints"]) == 2
        for stats in payload["fingerprints"].values():
            assert stats["runs"] == 3
            assert stats["p95_s"] >= stats["p50_s"] >= 0
        assert main(["history", str(tmp_path), "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "repro_query_seconds_bucket" in text
        assert "repro_cache_hits_total" in text

    def test_missing_directory_is_usage_error(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        assert main(["history"]) == 2
        assert main(["history", "/nonexistent/telemetry"]) == 2
        capsys.readouterr()

    def test_check_qlog_schema_tool(self, sales, tmp_path):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "check_qlog_schema",
            Path(__file__).resolve().parent.parent
            / "tools" / "check_qlog_schema.py",
        )
        tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(tool)
        self._populate(sales, tmp_path)
        assert tool.main([str(tmp_path)]) == 0
        # A schema violation must fail the check.
        log = QueryLog(tmp_path)
        log.append({"v": 99, "not": "a record"})
        log.close()
        assert tool.main([str(tmp_path)]) == 1


# ----------------------------------------------------------------------
# RSS normalization
# ----------------------------------------------------------------------
class TestRss:
    def test_positive_and_consistent(self):
        kb = peak_rss_kb()
        by = peak_rss_bytes()
        assert isinstance(kb, int) and isinstance(by, int)
        assert kb > 0 and by > 0
        assert kb == by // 1024
