"""Unit tests for the statement tokenizer and parser (Section 4.1 syntax)."""

import pytest

from repro.core import (
    AncestorBenchmark,
    ConstantBenchmark,
    ExternalBenchmark,
    NamedLabeling,
    ParseError,
    PastBenchmark,
    PredicateOp,
    RangeLabeling,
    SiblingBenchmark,
    ZeroBenchmark,
)
from repro.datagen import budget_schema, sales_schema
from repro.parser import TokenType, parse_statement, tokenize


@pytest.fixture(scope="module")
def schemas():
    return {"SALES": sales_schema(), "BUDGET": budget_schema()}


class TestTokenizer:
    def test_keywords_are_idents(self):
        tokens = tokenize("with SALES by month")
        assert [t.type for t in tokens] == [TokenType.IDENT] * 4 + [TokenType.END]

    def test_string_literal(self):
        tokens = tokenize("'Fresh Fruit'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "Fresh Fruit"

    def test_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].value == "O'Brien"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("0.9 1000")
        assert tokens[0].value == "0.9"
        assert tokens[1].value == "1000"

    def test_punctuation(self):
        tokens = tokenize("{[0, 0.9): bad}")
        types = [t.type for t in tokens[:-1]]
        assert types == [
            TokenType.LBRACE, TokenType.LBRACKET, TokenType.NUMBER,
            TokenType.COMMA, TokenType.NUMBER, TokenType.RPAREN,
            TokenType.COLON, TokenType.IDENT, TokenType.RBRACE,
        ]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("with SALES @ by")

    def test_hash_in_identifiers(self):
        tokens = tokenize("MFGR#12")
        assert tokens[0].value == "MFGR#12"


class TestStatementParsing:
    def test_example_1_1(self, schemas):
        statement = parse_statement(
            """
            with SALES
            for year = '1997', product = 'milk'
            by year, product
            assess quantity against 1000
            using ratio(quantity, 1000)
            labels {[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}
            """,
            schemas,
        )
        assert statement.source == "SALES"
        assert statement.measure == "quantity"
        assert isinstance(statement.benchmark, ConstantBenchmark)
        assert statement.benchmark.value == 1000.0
        assert statement.group_by.levels == ("year", "product")
        assert isinstance(statement.labels, RangeLabeling)
        assert statement.labels.labels == ("bad", "acceptable", "good")

    def test_minimal_statement(self, schemas):
        statement = parse_statement(
            "with SALES by month assess storeSales labels quartiles", schemas
        )
        assert isinstance(statement.benchmark, ZeroBenchmark)
        assert isinstance(statement.labels, NamedLabeling)
        assert statement.predicates == ()

    def test_sibling_against(self, schemas):
        statement = parse_statement(
            """with SALES for country = 'Italy' by product, country
               assess quantity against country = 'France' labels quartiles""",
            schemas,
        )
        assert isinstance(statement.benchmark, SiblingBenchmark)
        assert statement.benchmark.level == "country"
        assert statement.benchmark.sibling == "France"

    def test_past_against(self, schemas):
        statement = parse_statement(
            """with SALES for month = '1997-07' by month
               assess storeSales against past 4 labels quartiles""",
            schemas,
        )
        assert isinstance(statement.benchmark, PastBenchmark)
        assert statement.benchmark.k == 4

    def test_external_against(self, schemas):
        statement = parse_statement(
            """with SALES by month, category
               assess storeSales against BUDGET.expected_revenue labels quartiles""",
            schemas,
        )
        assert isinstance(statement.benchmark, ExternalBenchmark)
        assert statement.benchmark.cube == "BUDGET"
        assert statement.benchmark.measure_name == "expected_revenue"

    def test_ancestor_against(self, schemas):
        statement = parse_statement(
            """with SALES by product assess quantity against ancestor type
               labels quartiles""",
            schemas,
        )
        assert isinstance(statement.benchmark, AncestorBenchmark)
        assert statement.benchmark.level == "product"
        assert statement.benchmark.ancestor_level == "type"

    def test_assess_star(self, schemas):
        statement = parse_statement(
            "with SALES by month assess* storeSales labels quartiles", schemas
        )
        assert statement.star

    def test_in_predicate(self, schemas):
        statement = parse_statement(
            """with SALES for country in ('Italy', 'France') by country
               assess quantity labels quartiles""",
            schemas,
        )
        assert statement.predicates[0].op is PredicateOp.IN
        assert statement.predicates[0].member_set() == frozenset({"Italy", "France"})

    def test_between_predicate(self, schemas):
        statement = parse_statement(
            """with SALES for month between '1997-03' and '1997-06' by month
               assess quantity labels quartiles""",
            schemas,
        )
        assert statement.predicates[0].op is PredicateOp.RANGE

    def test_keywords_case_insensitive(self, schemas):
        statement = parse_statement(
            "WITH SALES BY month ASSESS storeSales LABELS quartiles", schemas
        )
        assert statement.measure == "storeSales"

    def test_star_labels(self, schemas):
        statement = parse_statement(
            """with SALES by month assess storeSales
               labels {[-1, 0]: *, (0, 0.5]: ***, (0.5, 1]: *****}""",
            schemas,
        )
        assert statement.labels.labels == ("*", "***", "*****")

    def test_trailing_comma_in_ranges_tolerated(self, schemas):
        statement = parse_statement(
            """with SALES by month assess storeSales
               labels {[-inf, 0): low, [0, inf): high,}""",
            schemas,
        )
        assert statement.labels.labels == ("low", "high")

    def test_using_expression_arithmetic(self, schemas):
        statement = parse_statement(
            """with SALES by month assess storeSales
               using (storeSales - storeCost) / storeSales labels quartiles""",
            schemas,
        )
        assert statement.using.render() == "((storeSales - storeCost) / storeSales)"

    def test_using_negative_literal(self, schemas):
        statement = parse_statement(
            """with SALES by month assess storeSales
               using difference(storeSales, -5) labels quartiles""",
            schemas,
        )
        assert "(0 - 5)" in statement.using.render()


class TestParseErrors:
    def test_unknown_cube(self, schemas):
        with pytest.raises(ParseError):
            parse_statement("with NOPE by month assess m labels quartiles", schemas)

    def test_missing_by(self, schemas):
        with pytest.raises(ParseError):
            parse_statement("with SALES assess storeSales labels quartiles", schemas)

    def test_missing_labels(self, schemas):
        with pytest.raises(ParseError):
            parse_statement("with SALES by month assess storeSales", schemas)

    def test_trailing_garbage(self, schemas):
        with pytest.raises(ParseError):
            parse_statement(
                "with SALES by month assess storeSales labels quartiles extra",
                schemas,
            )

    def test_bad_against(self, schemas):
        with pytest.raises(ParseError):
            parse_statement(
                "with SALES by month assess storeSales against labels quartiles",
                schemas,
            )

    def test_overlapping_ranges_rejected(self, schemas):
        from repro.core import ValidationError

        with pytest.raises(ValidationError):
            parse_statement(
                """with SALES by month assess storeSales
                   labels {[0, 2]: a, [1, 3]: b}""",
                schemas,
            )

    def test_error_carries_position(self, schemas):
        try:
            parse_statement("with SALES by month assess ,", schemas)
        except ParseError as error:
            assert error.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected a ParseError")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "with SALES by month assess storeSales labels quartiles",
            """with SALES for type = 'Fresh Fruit', country = 'Italy'
               by product, country assess quantity against country = 'France'
               using percOfTotal(difference(quantity, benchmark.quantity), quantity)
               labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}""",
            """with SALES for month = '1997-07', store = 'SmartMart'
               by month, store assess storeSales against past 4
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}""",
        ],
    )
    def test_render_then_parse_is_stable(self, schemas, text):
        first = parse_statement(text, schemas)
        second = parse_statement(first.render(), schemas)
        assert second.render() == first.render()
        assert second.group_by == first.group_by
        assert type(second.benchmark) is type(first.benchmark)
