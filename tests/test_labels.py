"""Unit tests for label intervals and range-based labeling (Section 3.3.1)."""

import math

import numpy as np
import pytest

from repro.core import (
    Interval,
    LabelRule,
    NamedLabeling,
    RangeLabeling,
    ValidationError,
    five_stars_rules,
    validate_ranges,
)

INF = float("inf")


class TestInterval:
    def test_closed_open_membership(self):
        interval = Interval(0.0, 0.9, True, False)
        assert interval.contains(0.0)
        assert interval.contains(0.5)
        assert not interval.contains(0.9)
        assert not interval.contains(-0.1)

    def test_open_closed_membership(self):
        interval = Interval(1.1, INF, False, False)
        assert not interval.contains(1.1)
        assert interval.contains(1e9)

    def test_degenerate_point_interval(self):
        interval = Interval(2.0, 2.0, True, True)
        assert interval.contains(2.0)
        assert not interval.contains(2.0001)

    def test_degenerate_open_rejected(self):
        with pytest.raises(ValidationError):
            Interval(2.0, 2.0, True, False)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            Interval(3.0, 1.0, True, True)

    def test_infinite_bounds_forced_open(self):
        interval = Interval(-INF, 0.0, True, True)
        assert not interval.low_closed

    def test_mask_excludes_nan(self):
        interval = Interval(0.0, 1.0, True, True)
        values = np.array([0.5, float("nan"), 2.0])
        assert interval.mask(values).tolist() == [True, False, False]

    def test_render_round_trip_shapes(self):
        assert Interval(0, 0.9, True, False).render() == "[0, 0.9)"
        assert Interval(-INF, -0.2, False, False).render() == "(-inf, -0.2)"
        assert Interval(1.1, INF, False, False).render() == "(1.1, inf)"


class TestValidateRanges:
    def test_overlap_rejected(self):
        rules = [
            LabelRule(Interval(0, 1, True, True), "a"),
            LabelRule(Interval(0.5, 2, True, True), "b"),
        ]
        with pytest.raises(ValidationError):
            validate_ranges(rules)

    def test_shared_closed_endpoint_rejected(self):
        rules = [
            LabelRule(Interval(0, 1, True, True), "a"),
            LabelRule(Interval(1, 2, True, True), "b"),
        ]
        with pytest.raises(ValidationError):
            validate_ranges(rules)

    def test_touching_half_open_ok(self):
        rules = [
            LabelRule(Interval(0, 1, True, False), "a"),
            LabelRule(Interval(1, 2, True, True), "b"),
        ]
        validate_ranges(rules)  # must not raise

    def test_completeness_gap_detected(self):
        rules = [
            LabelRule(Interval(-INF, 0, False, False), "a"),
            LabelRule(Interval(1, INF, True, False), "b"),
        ]
        validate_ranges(rules)  # gaps allowed by default
        with pytest.raises(ValidationError):
            validate_ranges(rules, require_complete=True)

    def test_completeness_open_endpoint_gap(self):
        rules = [
            LabelRule(Interval(-INF, 0, False, False), "a"),
            LabelRule(Interval(0, INF, False, False), "b"),  # 0 uncovered
        ]
        with pytest.raises(ValidationError):
            validate_ranges(rules, require_complete=True)

    def test_complete_partition_accepted(self):
        rules = [
            LabelRule(Interval(-INF, 0, False, False), "a"),
            LabelRule(Interval(0, INF, True, False), "b"),
        ]
        validate_ranges(rules, require_complete=True)

    def test_empty_rules_rejected(self):
        with pytest.raises(ValidationError):
            validate_ranges([])


class TestRangeLabeling:
    def paper_rules(self):
        return RangeLabeling(
            [
                LabelRule(Interval(0, 0.9, True, False), "bad"),
                LabelRule(Interval(0.9, 1.1, True, True), "acceptable"),
                LabelRule(Interval(1.1, INF, False, False), "good"),
            ]
        )

    def test_example_1_1_semantics(self):
        labeling = self.paper_rules()
        assert labeling.apply_scalar(0.5) == "bad"
        assert labeling.apply_scalar(1.0) == "acceptable"
        assert labeling.apply_scalar(1.1) == "acceptable"
        assert labeling.apply_scalar(5.0) == "good"

    def test_gap_and_nan_get_none(self):
        labeling = self.paper_rules()
        assert labeling.apply_scalar(-1.0) is None
        assert labeling.apply_scalar(float("nan")) is None
        assert labeling.apply_scalar(None) is None

    def test_vectorised_apply(self):
        labeling = self.paper_rules()
        values = np.array([0.1, 1.0, 2.0, float("nan")])
        assert labeling.apply(values).tolist() == ["bad", "acceptable", "good", None]

    def test_rules_sorted_on_construction(self):
        unordered = RangeLabeling(
            [
                LabelRule(Interval(1.1, INF, False, False), "good"),
                LabelRule(Interval(0, 0.9, True, False), "bad"),
            ]
        )
        assert unordered.labels == ("bad", "good")

    def test_overlapping_rules_rejected_at_construction(self):
        with pytest.raises(ValidationError):
            RangeLabeling(
                [
                    LabelRule(Interval(0, 2, True, True), "a"),
                    LabelRule(Interval(1, 3, True, True), "b"),
                ]
            )

    def test_render(self):
        assert self.paper_rules().render() == (
            "{[0, 0.9): bad, [0.9, 1.1]: acceptable, (1.1, inf): good}"
        )


class TestFiveStars:
    def test_example_3_3(self):
        labeling = RangeLabeling(five_stars_rules())
        # Example 3.3: two min-max-normalized differences map to * and *****
        assert labeling.apply_scalar(-1.0) == "*"
        assert labeling.apply_scalar(1.0) == "*****"
        assert labeling.apply_scalar(0.0) == "***"
        assert labeling.apply_scalar(-0.6) == "*"
        assert labeling.apply_scalar(0.61) == "*****"

    def test_partition_complete_over_domain(self):
        validate_ranges(five_stars_rules(), -1.0, 1.0, require_complete=True)


class TestNamedLabeling:
    def test_render_and_equality(self):
        assert NamedLabeling("quartiles").render() == "quartiles"
        assert NamedLabeling("a") == NamedLabeling("a")
        assert NamedLabeling("a") != NamedLabeling("b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            NamedLabeling("")


class TestVectorisedApplyOracle:
    """The searchsorted ``apply`` must agree with the per-cell oracle."""

    def cases(self):
        yield RangeLabeling(five_stars_rules())
        yield RangeLabeling.from_cutpoints([0.0, 0.9, 1.1], ["awful", "bad", "ok", "good"])
        # gaps, a degenerate point interval, and mixed closedness
        yield RangeLabeling(
            [
                LabelRule(Interval(-INF, -2, False, False), "low"),
                LabelRule(Interval(-2, -2, True, True), "exactly"),
                LabelRule(Interval(0, 1, False, True), "unit"),
                LabelRule(Interval(3, INF, True, False), "high"),
            ]
        )

    def probes(self, labeling):
        edges = []
        for rule in labeling.rules:
            for bound in (rule.interval.low, rule.interval.high):
                if math.isfinite(bound):
                    edges += [
                        bound,
                        float(np.nextafter(bound, -INF)),
                        float(np.nextafter(bound, INF)),
                    ]
        rng = np.random.default_rng(7)
        return np.array(
            edges + list(rng.uniform(-10, 10, 64)) + [math.nan, -1e308, 1e308],
            dtype=np.float64,
        )

    def test_matches_oracle_on_edges_and_random_values(self):
        for labeling in self.cases():
            values = self.probes(labeling)
            assert labeling.apply(values).tolist() == labeling.apply_python(values).tolist()

    def test_empty_column(self):
        labeling = RangeLabeling(five_stars_rules())
        assert labeling.apply(np.array([], dtype=np.float64)).tolist() == []
