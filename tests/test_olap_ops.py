"""Unit tests for the in-memory roll-up / slice / drill-across operators."""

import numpy as np
import pytest

from repro.core import (
    Cube,
    CubeQuery,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Level,
    Measure,
    Predicate,
    SchemaError,
)
from repro.core.olap_ops import drill_across, drill_down_levels, rollup, slice_cube
from repro.datagen import brute_force_rollup


@pytest.fixture(scope="module")
def schema():
    product = Hierarchy(
        "Product",
        [Level("product"), Level("type")],
        [{"Apple": "Fruit", "Pear": "Fruit", "Milk": "Dairy"}],
    )
    store = Hierarchy(
        "Store",
        [Level("city"), Level("country")],
        [{"Roma": "Italy", "Milano": "Italy", "Paris": "France"}],
    )
    return CubeSchema(
        "S", [product, store],
        [Measure("qty", "sum"), Measure("best", "max"), Measure("avgp", "avg")],
    )


@pytest.fixture()
def cube(schema):
    gb = GroupBySet(schema, ["product", "city"])
    rows = [
        (("Apple", "Roma"), 10.0, 4.0),
        (("Apple", "Milano"), 5.0, 9.0),
        (("Pear", "Roma"), 7.0, 2.0),
        (("Milk", "Paris"), 3.0, 5.0),
    ]
    return Cube(
        schema, gb,
        {"product": [r[0][0] for r in rows], "city": [r[0][1] for r in rows]},
        {"qty": [r[1] for r in rows], "best": [r[2] for r in rows]},
    )


class TestRollup:
    def test_sum_and_max_reaggregate(self, schema, cube):
        target = GroupBySet(schema, ["type", "country"])
        rolled = rollup(cube, target)
        cells = dict(rolled.cells())
        assert cells[("Fruit", "Italy")]["qty"] == 22.0
        assert cells[("Fruit", "Italy")]["best"] == 9.0
        assert cells[("Dairy", "France")]["qty"] == 3.0

    def test_rollup_to_complete_aggregation(self, schema, cube):
        rolled = rollup(cube, GroupBySet(schema, []))
        assert len(rolled) == 1
        assert rolled.measure("qty")[0] == 25.0

    def test_matches_brute_force_oracle(self, schema, cube):
        target = GroupBySet(schema, ["type"])
        rolled = rollup(cube, target)
        oracle = brute_force_rollup(cube, target, "qty")
        for coordinate, values in rolled.cells():
            assert values["qty"] == pytest.approx(oracle[coordinate])

    def test_wrong_direction_rejected(self, schema, cube):
        coarse = rollup(cube, GroupBySet(schema, ["type"]))
        with pytest.raises(SchemaError):
            rollup(coarse, GroupBySet(schema, ["product", "city"]))

    def test_avg_measure_rejected(self, schema):
        gb = GroupBySet(schema, ["product"])
        cube = Cube(schema, gb, {"product": ["Apple"]}, {"avgp": [2.0]})
        with pytest.raises(SchemaError):
            rollup(cube, GroupBySet(schema, ["type"]))

    def test_derived_columns_dropped(self, schema, cube):
        extended = cube.with_measure("comparison", np.ones(len(cube)))
        rolled = rollup(extended, GroupBySet(schema, ["type"]))
        assert "comparison" not in rolled.measure_names

    def test_no_schema_measures_rejected(self, schema):
        gb = GroupBySet(schema, ["product"])
        cube = Cube(schema, gb, {"product": ["Apple"]}, {"whatever": [1.0]})
        with pytest.raises(SchemaError):
            rollup(cube, GroupBySet(schema, ["type"]))


class TestDrillDown:
    def test_always_instructs_requery(self, schema, cube):
        coarse = rollup(cube, GroupBySet(schema, ["type"]))
        with pytest.raises(SchemaError, match="detailed cube"):
            drill_down_levels(coarse, GroupBySet(schema, ["product"]))

    def test_non_finer_target_rejected(self, schema, cube):
        with pytest.raises(SchemaError, match="not finer"):
            drill_down_levels(cube, GroupBySet(schema, ["type"]))


class TestSlice:
    def test_slice_on_member(self, schema, cube):
        sliced = slice_cube(cube, Predicate.eq("city", "Roma"))
        assert len(sliced) == 2
        assert all(coord[1] == "Roma" for coord in sliced.coordinates())

    def test_dice_with_in(self, schema, cube):
        sliced = slice_cube(cube, Predicate.isin("product", ["Apple", "Milk"]))
        assert len(sliced) == 3

    def test_unknown_level_rejected(self, schema, cube):
        with pytest.raises(SchemaError):
            slice_cube(cube, Predicate.eq("country", "Italy"))


class TestDrillAcross:
    def test_merges_measures(self, schema, cube):
        other = cube.rename_measures({"qty": "qty2", "best": "best2"})
        merged = drill_across(cube, other)
        assert "other.qty2" in merged.measure_names
        assert np.allclose(merged.measure("qty"), merged.measure("other.qty2"))
