"""Unit tests for hierarchies and the part-of order (Definition 2.1)."""

import pytest

from repro.core import Hierarchy, Level, MemberError, SchemaError


def make_product_hierarchy() -> Hierarchy:
    return Hierarchy(
        "Product",
        [Level("product"), Level("type"), Level("category")],
        [
            {"Apple": "Fresh Fruit", "Pear": "Fresh Fruit", "Milk": "Dairy"},
            {"Fresh Fruit": "Fruit", "Dairy": "Drinks"},
        ],
    )


class TestLevel:
    def test_open_domain_accepts_everything(self):
        level = Level("product")
        assert level.contains("Apple")
        assert level.contains(42)

    def test_explicit_domain(self):
        level = Level("gender", domain=["M", "F"])
        assert level.contains("M")
        assert not level.contains("X")

    def test_equality_by_name(self):
        assert Level("a") == Level("a")
        assert Level("a") != Level("b")
        assert hash(Level("a")) == hash(Level("a"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Level("")


class TestHierarchyStructure:
    def test_level_ordering(self):
        h = make_product_hierarchy()
        assert h.finest_level.name == "product"
        assert h.coarsest_level.name == "category"
        assert h.level_names() == ("product", "type", "category")

    def test_depth_and_rollup_order(self):
        h = make_product_hierarchy()
        assert h.depth_of("product") == 0
        assert h.rolls_up_to("product", "category")
        assert h.rolls_up_to("type", "type")  # reflexive
        assert not h.rolls_up_to("category", "product")

    def test_unknown_level_raises(self):
        h = make_product_hierarchy()
        with pytest.raises(SchemaError):
            h.level("brand")

    def test_duplicate_level_names_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("H", [Level("a"), Level("a")])

    def test_wrong_parent_map_count_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("H", [Level("a"), Level("b")], [{}, {}])

    def test_single_level_hierarchy(self):
        h = Hierarchy("Gender", [Level("gender")])
        assert h.finest_level is h.coarsest_level
        assert h.members_of("gender") == frozenset()


class TestPartOfOrder:
    def test_parent_of(self):
        h = make_product_hierarchy()
        assert h.parent_of("product", "Apple") == "Fresh Fruit"
        assert h.parent_of("type", "Dairy") == "Drinks"

    def test_rollup_member_transitive(self):
        h = make_product_hierarchy()
        assert h.rollup_member("Apple", "product", "category") == "Fruit"
        assert h.rollup_member("Milk", "product", "category") == "Drinks"

    def test_rollup_member_identity(self):
        h = make_product_hierarchy()
        assert h.rollup_member("Apple", "product", "product") == "Apple"

    def test_rollup_downwards_rejected(self):
        h = make_product_hierarchy()
        with pytest.raises(SchemaError):
            h.rollup_member("Fruit", "category", "product")

    def test_missing_parent_raises_member_error(self):
        h = make_product_hierarchy()
        with pytest.raises(MemberError):
            h.parent_of("product", "Durian")

    def test_set_parent_and_reassignment_guard(self):
        h = make_product_hierarchy()
        h.set_parent("product", "Lemon", "Fresh Fruit")
        assert h.parent_of("product", "Lemon") == "Fresh Fruit"
        # idempotent re-assignment of the same parent is fine
        h.set_parent("product", "Lemon", "Fresh Fruit")
        with pytest.raises(SchemaError):
            h.set_parent("product", "Lemon", "Dairy")

    def test_set_parent_on_coarsest_rejected(self):
        h = make_product_hierarchy()
        with pytest.raises(SchemaError):
            h.set_parent("category", "Fruit", "Anything")

    def test_members_of(self):
        h = make_product_hierarchy()
        assert h.members_of("product") == frozenset({"Apple", "Pear", "Milk"})
        assert h.members_of("type") == frozenset({"Fresh Fruit", "Dairy"})
        assert h.members_of("category") == frozenset({"Fruit", "Drinks"})

    def test_descendants_of(self):
        h = make_product_hierarchy()
        assert h.descendants_of("category", "Fruit", "product") == frozenset(
            {"Apple", "Pear"}
        )
        assert h.descendants_of("type", "Dairy", "product") == frozenset({"Milk"})
        assert h.descendants_of("type", "Dairy", "type") == frozenset({"Dairy"})

    def test_descendants_of_wrong_direction_rejected(self):
        h = make_product_hierarchy()
        with pytest.raises(SchemaError):
            h.descendants_of("product", "Apple", "category")

    def test_domain_violation_in_parent_map(self):
        with pytest.raises(MemberError):
            Hierarchy(
                "H",
                [Level("a", domain=["x"]), Level("b")],
                [{"y": "p"}],  # y not in a's domain
            )
