"""Integration tests reproducing the paper's worked examples exactly.

These tests pin the library's behaviour to the numbers printed in the
paper: Figure 1 (sibling assessment of fresh fruit, Italy vs France),
Example 3.3 (5-star labeling of gender store sales), and the logical-plan
walkthrough of Example 4.5.
"""

import pytest

from repro.algebra import build_plan
from repro.core import (
    Cube,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Level,
    Measure,
    RangeLabeling,
    five_stars_rules,
)
from repro.functions import min_max_norm_sym


class TestFigure1:
    """The sibling intention of Example 4.5, cell by cell."""

    STATEMENT = """
        with SALES for type = 'Fresh Fruit', country = 'Italy'
        by product, country
        assess quantity against country = 'France'
        using percOfTotal(difference(quantity, benchmark.quantity))
        labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf): good}
    """

    @pytest.mark.parametrize("plan", ["NP", "JOP", "POP"])
    def test_exact_paper_numbers(self, figure1_session, plan):
        result = figure1_session.assess(self.STATEMENT, plan=plan)
        cells = {cell.coordinate[0]: cell for cell in result}
        assert set(cells) == {"Apple", "Pear", "Lemon"}

        apple, pear, lemon = cells["Apple"], cells["Pear"], cells["Lemon"]
        # target and benchmark quantities (cube C and B of Figure 1)
        assert (apple.value, apple.benchmark) == (100.0, 150.0)
        assert (pear.value, pear.benchmark) == (90.0, 110.0)
        assert (lemon.value, lemon.benchmark) == (30.0, 20.0)
        # percOfTotal values: -50/220, -20/220, 10/220 → -0.23, -0.09, 0.05
        assert apple.comparison == pytest.approx(-0.227, abs=0.001)
        assert pear.comparison == pytest.approx(-0.091, abs=0.001)
        assert lemon.comparison == pytest.approx(0.045, abs=0.001)
        # labels of cube G in Figure 1
        assert apple.label == "bad"
        assert pear.label == "ok"
        assert lemon.label == "ok"

    def test_plan_step_count_matches_example_4_5(self, figure1_session):
        """NP has 6 numbered steps: 2 gets, join, ⊟, ⊡, label-⊟."""
        statement = figure1_session.parse(self.STATEMENT)
        plan = build_plan(statement, figure1_session.engine, "NP")
        assert len(plan.nodes()) == 5  # gets ×2, join, using, label
        assert plan.count_pushed() == 2  # only the gets go to SQL

    def test_pop_pushes_one_query(self, figure1_session):
        statement = figure1_session.parse(self.STATEMENT)
        plan = build_plan(statement, figure1_session.engine, "POP")
        assert plan.count_pushed() == 1


class TestExample33:
    """5-star labeling over the min-max normalized difference."""

    def test_gender_cells_get_one_and_five_stars(self):
        schema = CubeSchema(
            "SALES",
            [Hierarchy("Customer", [Level("gender")])],
            [Measure("storeSales")],
        )
        gb = GroupBySet(schema, ["gender"])
        target = Cube(schema, gb, {"gender": ["male", "female"]},
                      {"storeSales": [4400.0, 6900.0]})
        benchmark = Cube(schema, gb, {"gender": ["male", "female"]},
                         {"storeSales": [5400.0, 6400.0]})
        joined = target.natural_join(benchmark)
        difference = joined.measure("storeSales") - joined.measure(
            "benchmark.storeSales"
        )
        normalized = min_max_norm_sym(difference)
        labeling = RangeLabeling(five_stars_rules())
        labels = labeling.apply(normalized)
        assert labels.tolist() == ["*", "*****"]


class TestListingsSql:
    """The SQL pushed by each plan matches the listings' structure."""

    def test_listing1_for_the_target_get(self, figure1_session):
        statement = figure1_session.parse(TestFigure1.STATEMENT)
        sql = figure1_session.pushed_sql(
            figure1_session.plan(statement, "NP")
        )[0]
        assert "sum(f.quantity) as quantity" in sql
        assert "= 'Fresh Fruit'" in sql
        assert "group by" in sql

    def test_listing4_for_jop(self, figure1_session):
        statement = figure1_session.parse(TestFigure1.STATEMENT)
        sql = figure1_session.pushed_sql(
            figure1_session.plan(statement, "JOP")
        )[0]
        assert "t1.product = t2.product" in sql

    def test_listing5_for_pop(self, figure1_session):
        statement = figure1_session.parse(TestFigure1.STATEMENT)
        sql = figure1_session.pushed_sql(
            figure1_session.plan(statement, "POP")
        )[0]
        assert "pivot (" in sql
        assert "in ('France', 'Italy')" in sql
        assert "is not null" in sql


class TestPastBenchmarkRegression:
    """Past benchmarks predict from a per-cell linear regression."""

    def test_prediction_on_constructed_trend(self, sales_session):
        """On real data all plans agree and the ratio labels are sane."""
        result = sales_session.assess(
            """with SALES for month = '1997-07', store = 'SmartMart'
               by month, store assess storeSales against past 4
               using ratio(storeSales, benchmark.storeSales)
               labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}"""
        )
        cell = result.cells()[0]
        assert cell.coordinate == ("1997-07", "SmartMart")
        assert cell.benchmark > 0
        assert cell.label in ("worse", "fine", "better")
