"""Unit tests for the holistic transformation library (Section 3.2)."""

import numpy as np
import pytest

from repro.functions import (
    identity,
    min_max_norm,
    perc_of_total,
    percentile_rank,
    rank,
    signed_min_max_norm,
    zscore,
)


class TestMinMaxNorm:
    def test_maps_to_unit_interval(self):
        out = min_max_norm(np.array([10.0, 20.0, 30.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_constant_column_maps_to_zero(self):
        out = min_max_norm(np.array([7.0, 7.0]))
        assert out.tolist() == [0.0, 0.0]

    def test_nan_ignored_in_stats_and_propagated(self):
        out = min_max_norm(np.array([0.0, np.nan, 10.0]))
        assert out[0] == 0.0 and out[2] == 1.0
        assert np.isnan(out[1])

    def test_empty(self):
        assert min_max_norm(np.array([])).size == 0


class TestSignedMinMaxNorm:
    def test_preserves_sign_and_scales_to_unit(self):
        out = signed_min_max_norm(np.array([-50.0, -20.0, 10.0]))
        assert out[0] == pytest.approx(-1.0)
        assert out[2] == pytest.approx(0.2)

    def test_zero_column(self):
        assert signed_min_max_norm(np.array([0.0, 0.0])).tolist() == [0.0, 0.0]


class TestZscore:
    def test_mean_zero_unit_std(self):
        out = zscore(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.mean(out) == pytest.approx(0.0)
        assert np.std(out) == pytest.approx(1.0)

    def test_constant_column(self):
        assert zscore(np.array([5.0, 5.0])).tolist() == [0.0, 0.0]


class TestPercOfTotal:
    def test_example_4_3(self):
        # diff = (-50, -20, 10), total quantity = 220 → -0.23, -0.09, 0.05
        diff = np.array([-50.0, -20.0, 10.0])
        quantity = np.array([100.0, 90.0, 30.0])
        out = perc_of_total(diff, quantity)
        assert out[0] == pytest.approx(-50 / 220)
        assert out[1] == pytest.approx(-20 / 220)
        assert out[2] == pytest.approx(10 / 220)

    def test_zero_total_is_nan(self):
        out = perc_of_total(np.array([1.0]), np.array([0.0]))
        assert np.isnan(out[0])

    def test_nan_ignored_in_total(self):
        out = perc_of_total(np.array([1.0, 1.0]), np.array([2.0, np.nan]))
        assert out[0] == pytest.approx(0.5)


class TestRank:
    def test_descending_dense(self):
        out = rank(np.array([30.0, 10.0, 20.0]))
        assert out.tolist() == [1.0, 3.0, 2.0]

    def test_ties_share_rank(self):
        out = rank(np.array([5.0, 5.0, 1.0]))
        assert out.tolist() == [1.0, 1.0, 2.0]

    def test_nan_gets_nan(self):
        out = rank(np.array([1.0, np.nan]))
        assert out[0] == 1.0 and np.isnan(out[1])


class TestPercentileRank:
    def test_fractions(self):
        out = percentile_rank(np.array([10.0, 20.0, 30.0, 40.0]))
        assert out.tolist() == [0.25, 0.5, 0.75, 1.0]

    def test_ties(self):
        out = percentile_rank(np.array([1.0, 1.0]))
        assert out.tolist() == [1.0, 1.0]


class TestIdentity:
    def test_pass_through(self):
        values = np.array([1.0, 2.0])
        assert identity(values).tolist() == [1.0, 2.0]
