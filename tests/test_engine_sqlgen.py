"""Unit tests for SQL text rendering (Listings 1, 4 and 5 of the paper)."""

import pytest

from repro.core import Predicate
from repro.engine import (
    Aggregate,
    AggregateQuery,
    ColumnPredicate,
    DimensionJoin,
    DrillAcrossQuery,
    FACT,
    GroupByColumn,
    PivotQuery,
    render_sql,
)

JOINS = (
    DimensionJoin("customer", "ckey", "ckey"),
    DimensionJoin("product", "pkey", "pkey"),
)


def listing1_query():
    """The get of Example 2.7 (Listing 1)."""
    return AggregateQuery(
        fact="sales",
        joins=JOINS,
        where=(
            ColumnPredicate("product", "type", Predicate.eq("type", "Fresh Fruit")),
            ColumnPredicate("product", "country", Predicate.eq("country", "Italy")),
        ),
        group_by=(
            GroupByColumn("product", "country", "country"),
            GroupByColumn("product", "product", "product"),
        ),
        aggregates=(Aggregate("quantity", "sum", "quantity"),),
    )


class TestAggregateSql:
    def test_listing1_shape(self):
        sql = render_sql(listing1_query())
        assert sql.startswith("select ")
        assert "sum(f.quantity) as quantity" in sql
        assert "from sales f" in sql
        assert "join product" in sql
        assert "where" in sql and "= 'Fresh Fruit'" in sql and "= 'Italy'" in sql
        assert "group by" in sql

    def test_unreferenced_dimensions_eliminated(self):
        sql = render_sql(listing1_query())
        # the customer dimension is joined in the star but not referenced
        assert "join customer" not in sql

    def test_in_predicate_rendering(self):
        query = AggregateQuery(
            "sales", JOINS,
            (ColumnPredicate("product", "country",
                             Predicate.isin("country", ["Italy", "France"])),),
            (GroupByColumn("product", "country", "country"),),
            (Aggregate("quantity", "sum", "quantity"),),
        )
        sql = render_sql(query)
        assert "in ('France', 'Italy')" in sql

    def test_between_predicate_rendering(self):
        query = AggregateQuery(
            "sales", JOINS,
            (ColumnPredicate("product", "country",
                             Predicate.between("country", "A", "M")),),
            (GroupByColumn("product", "country", "country"),),
            (Aggregate("quantity", "sum", "quantity"),),
        )
        assert "between 'A' and 'M'" in render_sql(query)

    def test_fact_column_predicate_uses_fact_alias(self):
        query = AggregateQuery(
            "sales", JOINS,
            (ColumnPredicate(FACT, "quantity",
                             Predicate.between("quantity", 1, 10)),),
            (),
            (Aggregate("quantity", "sum", "quantity"),),
        )
        assert "f.quantity between 1 and 10" in render_sql(query)

    def test_string_escaping(self):
        query = AggregateQuery(
            "sales", JOINS,
            (ColumnPredicate("product", "type",
                             Predicate.eq("type", "O'Brien")),),
            (),
            (Aggregate("quantity", "sum", "quantity"),),
        )
        assert "'O''Brien'" in render_sql(query)

    def test_complete_aggregation_has_no_group_by(self):
        query = AggregateQuery(
            "sales", JOINS, (), (), (Aggregate("quantity", "sum", "q"),)
        )
        assert "group by" not in render_sql(query)


class TestDrillAcrossSql:
    def test_listing4_shape(self):
        left = listing1_query()
        right = AggregateQuery(
            "sales", JOINS,
            (
                ColumnPredicate("product", "type", Predicate.eq("type", "Fresh Fruit")),
                ColumnPredicate("product", "country", Predicate.eq("country", "France")),
            ),
            left.group_by,
            left.aggregates,
        )
        sql = render_sql(
            DrillAcrossQuery(left, right, ("product",), {"quantity": "bc_quantity"})
        )
        assert "t1.product = t2.product" in sql
        assert "t2.quantity as bc_quantity" in sql
        assert sql.count("select") == 3  # outer + two subqueries

    def test_outer_join_keyword(self):
        left = listing1_query()
        sql = render_sql(
            DrillAcrossQuery(left, left, ("product",), {}, outer=True)
        )
        assert "left outer join" in sql


class TestPivotSql:
    def test_listing5_shape(self):
        base = AggregateQuery(
            "sales", JOINS,
            (
                ColumnPredicate("product", "type", Predicate.eq("type", "Fresh Fruit")),
                ColumnPredicate("product", "country",
                                Predicate.isin("country", ["Italy", "France"])),
            ),
            (
                GroupByColumn("product", "country", "country"),
                GroupByColumn("product", "product", "product"),
            ),
            (Aggregate("quantity", "sum", "quantity"),),
        )
        sql = render_sql(
            PivotQuery(base, "country", "Italy",
                       {"France": {"quantity": "bc_quantity"}})
        )
        assert "pivot (" in sql
        assert "sum(quantity) for country" in sql
        assert "'France' as bc_quantity" in sql
        assert "is not null" in sql

    def test_require_all_false_drops_null_filter(self):
        base = AggregateQuery(
            "sales", JOINS, (),
            (GroupByColumn("product", "country", "country"),),
            (Aggregate("quantity", "sum", "quantity"),),
        )
        sql = render_sql(
            PivotQuery(base, "country", "Italy", {"France": {"quantity": "bc"}},
                       require_all=False)
        )
        assert "is not null" not in sql

    def test_unknown_query_type_rejected(self):
        with pytest.raises(TypeError):
            render_sql("select 1")
