"""Unit tests for the morsel-driven parallel layer.

Covers the pieces in isolation — range splitting, config eligibility,
the deterministic merge, key decoding — plus the engine-level contracts:
gate fallback to serial, metrics/span emission, the cost model's
serial-vs-parallel pricing, and the process backend.  End-to-end
bit-identity across parallelism degrees lives in
``tests/test_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.cost import (
    MERGE_ROW_WEIGHT,
    MORSEL_OVERHEAD,
    Statistics,
    estimate_plan_cost,
)
from repro.api import AssessSession
from repro.core import Predicate
from repro.core.groupby import GroupBySet
from repro.core.query import CubeQuery
from repro.datagen import sales_engine
from repro.parallel import (
    DEFAULT_MORSEL_ROWS,
    AggSpec,
    KeySpec,
    MorselResult,
    MorselTask,
    ParallelConfig,
    decode_keys,
    env_parallelism,
    merge_morsels,
    morsel_ranges,
    run_morsel,
)


# ----------------------------------------------------------------------
# morsel_ranges
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "n_rows,morsel_rows",
    [(0, 10), (1, 10), (10, 10), (11, 10), (100, 7), (65_536, 65_536)],
)
def test_morsel_ranges_partition_exactly(n_rows, morsel_rows):
    ranges = morsel_ranges(n_rows, morsel_rows)
    if n_rows == 0:
        assert ranges == []
        return
    assert ranges[0][0] == 0 and ranges[-1][1] == n_rows
    for (lo, hi), (next_lo, _) in zip(ranges, ranges[1:]):
        assert hi == next_lo  # contiguous, no gaps or overlap
    assert all(hi - lo <= morsel_rows for lo, hi in ranges)
    assert sum(hi - lo for lo, hi in ranges) == n_rows


def test_morsel_ranges_clamps_degenerate_morsel_size():
    assert morsel_ranges(3, 0) == [(0, 1), (1, 2), (2, 3)]


# ----------------------------------------------------------------------
# ParallelConfig
# ----------------------------------------------------------------------
def test_config_defaults_and_eligibility():
    config = ParallelConfig(degree=4, morsel_rows=100)
    assert config.enabled
    assert config.min_rows == 100  # defaults to the morsel size
    assert not config.eligible(50)  # below the floor
    assert not config.eligible(100)  # one morsel only: stay serial
    assert config.eligible(101)  # two morsels


def test_config_degree_one_never_parallelizes():
    config = ParallelConfig(degree=1, morsel_rows=10)
    assert not config.enabled
    assert not config.eligible(10_000_000)


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        ParallelConfig(degree=2, backend="gpu")


def test_config_default_morsel_rows_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_MORSEL_ROWS", raising=False)
    assert ParallelConfig(degree=2).morsel_rows == DEFAULT_MORSEL_ROWS
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "4096")
    assert ParallelConfig(degree=2).morsel_rows == 4096
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "not-a-number")
    assert ParallelConfig(degree=2).morsel_rows == DEFAULT_MORSEL_ROWS


def test_env_parallelism_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
    assert env_parallelism() is None
    monkeypatch.setenv("REPRO_PARALLELISM", "3")
    assert env_parallelism() == 3
    monkeypatch.setenv("REPRO_PARALLELISM", "three")
    assert env_parallelism() is None


def test_map_ordered_preserves_task_order():
    config = ParallelConfig(degree=4, morsel_rows=10)
    try:
        tasks = list(range(32))
        assert config.map_ordered(lambda x: x * x, tasks) == [x * x for x in tasks]
    finally:
        config.close()


def test_close_is_idempotent():
    config = ParallelConfig(degree=2)
    config.pool()
    config.close()
    config.close()


# ----------------------------------------------------------------------
# run_morsel + merge_morsels: synthetic determinism checks
# ----------------------------------------------------------------------
def _fact_task(index, lo, hi, codes, cardinality, values, ops):
    return MorselTask(
        index=index,
        lo=lo,
        hi=hi,
        joins=(),
        fact_predicates=(),
        dim_predicates=(),
        keys=(KeySpec("fact", None, codes[lo:hi], cardinality),),
        aggs=tuple(
            AggSpec(op, None if op == "count" else values[lo:hi]) for op in ops
        ),
    )


def test_merge_reproduces_whole_table_aggregation():
    rng = np.random.default_rng(0)
    n, cardinality = 1000, 7
    codes = rng.integers(0, cardinality, n).astype(np.int64)
    values = rng.integers(0, 100, n).astype(np.float64)
    ops = ("sum", "count", "min", "max")

    results = [
        run_morsel(_fact_task(i, lo, hi, codes, cardinality, values, ops))
        for i, (lo, hi) in enumerate(morsel_ranges(n, 137))
    ]
    merged_keys, merged = merge_morsels(results, ops)

    expect_keys, ids = np.unique(codes, return_inverse=True)
    assert np.array_equal(merged_keys, expect_keys)
    assert np.array_equal(merged[0], np.bincount(ids, weights=values))
    assert np.array_equal(merged[1], np.bincount(ids).astype(np.float64))
    for slot, ufunc, seed in ((2, np.minimum, np.inf), (3, np.maximum, -np.inf)):
        expect = np.full(len(expect_keys), seed)
        ufunc.at(expect, ids, values)
        assert np.array_equal(merged[slot], expect)


def test_merge_is_morsel_size_invariant():
    """The merged output must not depend on how the table was morselled."""
    rng = np.random.default_rng(1)
    n, cardinality = 2000, 11
    codes = rng.integers(0, cardinality, n).astype(np.int64)
    values = rng.integers(-50, 50, n).astype(np.float64)
    ops = ("sum", "min")

    outputs = []
    for morsel_rows in (100, 333, 1024, 5000):
        results = [
            run_morsel(_fact_task(i, lo, hi, codes, cardinality, values, ops))
            for i, (lo, hi) in enumerate(morsel_ranges(n, morsel_rows))
        ]
        outputs.append(merge_morsels(results, ops))
    keys0, merged0 = outputs[0]
    for keys, merged in outputs[1:]:
        assert np.array_equal(keys, keys0)
        for a, b in zip(merged, merged0):
            assert a.tobytes() == b.tobytes()  # bit-identical


def test_merge_empty_results():
    keys, merged = merge_morsels([], ["sum"])
    assert len(keys) == 0 and len(merged) == 1 and len(merged[0]) == 0


def test_decode_keys_inverts_the_fold():
    rng = np.random.default_rng(2)
    cardinalities = [5, 3, 7]
    cols = [rng.integers(0, c, 400).astype(np.int64) for c in cardinalities]
    combined = np.zeros(400, dtype=np.int64)
    for codes, cardinality in zip(cols, cardinalities):
        combined = combined * cardinality + codes
    keys = np.unique(combined)
    decoded = decode_keys(keys, cardinalities)
    refold = np.zeros(len(keys), dtype=np.int64)
    for codes, cardinality in zip(decoded, cardinalities):
        assert codes.min() >= 0 and codes.max() < cardinality
        refold = refold * cardinality + codes
    assert np.array_equal(refold, keys)


# ----------------------------------------------------------------------
# Engine-level: gate fallback, metrics, spans, warm cache
# ----------------------------------------------------------------------
def _parallel_session(degree=2, n_rows=4000, backend="thread"):
    session = AssessSession(sales_engine(n_rows=n_rows, seed=5))
    session.set_parallelism(degree, morsel_rows=512, backend=backend, min_rows=512)
    return session


def _query(session, levels, measures, predicates=()):
    schema = session.engine.cube("SALES").schema
    return CubeQuery("SALES", GroupBySet(schema, levels), predicates, measures)


def test_parallel_scan_is_bit_identical_and_counted():
    session = _parallel_session()
    serial = AssessSession(sales_engine(n_rows=4000, seed=5))
    serial.engine.result_cache.enabled = False
    session.engine.result_cache.enabled = False

    # quantity is integral (passes the exactness gate); storeSales is
    # fractional and would gate the whole query to serial.
    query = _query(session, ["month", "product"], ("quantity",),
                   (Predicate.isin("country", ["Italy", "France"]),))
    ours = session.engine.get(query)
    theirs = serial.engine.get(query)
    for name in ours.measures:
        assert ours.measures[name].tobytes() == theirs.measures[name].tobytes()
    metrics = session.engine.metrics
    assert metrics.get("engine.parallel.queries") >= 1
    assert metrics.get("engine.parallel.morsels") >= 2


def test_non_integral_sum_falls_back_to_serial():
    session = _parallel_session()
    engine = session.engine
    engine.result_cache.enabled = False
    fact = engine.catalog.table(engine.cube("SALES").star.fact_table)
    # storeCost is fractional, so the float-exactness gate rejects it.
    name = "storeCost"
    assert not fact.sums_exactly(name)

    before = engine.metrics.get("engine.parallel.fallbacks")
    engine.get(_query(session, ["year"], (name,)))
    assert engine.metrics.get("engine.parallel.fallbacks") == before + 1
    assert engine.metrics.get("engine.parallel.queries") == 0


def _walk_spans(spans):
    for span in spans:
        yield span
        yield from _walk_spans(span.children)


def test_parallel_emits_morsel_and_merge_spans():
    from repro.obs import tracing

    session = _parallel_session()
    session.engine.result_cache.enabled = False
    with tracing() as tracer:
        session.engine.get(_query(session, ["month"], ("quantity",)))
    spans = list(_walk_spans(tracer.roots))
    names = [span.name for span in spans]
    assert "parallel.morsel" in names
    assert "parallel.merge" in names
    scan = next(s for s in spans if s.name == "engine.scan")
    assert scan.attrs.get("parallel") is True
    assert scan.attrs.get("morsels") >= 2


def test_warm_cache_serves_parallel_results_identically():
    session = _parallel_session()
    query = _query(session, ["month", "country"], ("quantity",))
    cold = session.engine.get(query)
    warm = session.engine.get(query)
    assert session.engine.result_cache.stats()["hits"] >= 1
    for name in cold.measures:
        assert cold.measures[name].tobytes() == warm.measures[name].tobytes()


def test_process_backend_matches_thread_backend():
    threaded = _parallel_session(backend="thread", n_rows=1500)
    forked = _parallel_session(backend="process", n_rows=1500)
    threaded.engine.result_cache.enabled = False
    forked.engine.result_cache.enabled = False
    try:
        query_args = (["year", "product"], ("quantity",))
        ours = forked.engine.get(_query(forked, *query_args))
        theirs = threaded.engine.get(_query(threaded, *query_args))
        assert forked.engine.metrics.get("engine.parallel.queries") >= 1
        for name in ours.measures:
            assert ours.measures[name].tobytes() == theirs.measures[name].tobytes()
    finally:
        forked.engine.parallel.close()
        threaded.engine.parallel.close()


def test_set_parallelism_off_restores_serial():
    session = _parallel_session()
    assert session.parallelism > 1
    session.set_parallelism(None)
    assert session.parallelism == 1
    assert session.engine.parallel is None
    session.engine.result_cache.enabled = False
    before = session.engine.metrics.get("engine.parallel.queries")
    session.engine.get(_query(session, ["year"], ("quantity",)))
    assert session.engine.metrics.get("engine.parallel.queries") == before


# ----------------------------------------------------------------------
# Cost model: parallel pricing
# ----------------------------------------------------------------------
def test_cost_model_prices_parallel_below_serial_on_big_scans():
    serial = AssessSession(sales_engine(n_rows=20_000, seed=5))
    parallel = _parallel_session(degree=4, n_rows=20_000)
    for session in (serial, parallel):
        session.engine.result_cache.enabled = False

    # Coarse group-by over a big scan: the split work dominates the
    # morsel dispatch + merge overhead, so the model must price parallel
    # below serial (a fine group-by over a small scan stays serial).
    statement = """
        with SALES by year assess quantity against 1000
        using ratio(quantity, 1000)
        labels {[0, 1): low, [1, inf): high}
    """
    plan_serial = serial.plan(statement)
    plan_parallel = parallel.plan(statement)
    cost_serial = estimate_plan_cost(plan_serial, serial.engine)
    cost_parallel = estimate_plan_cost(plan_parallel, parallel.engine)
    assert cost_parallel.total < cost_serial.total
    assert "parallel" in cost_parallel.node_modes.values()
    assert "serial" in cost_serial.node_modes.values()


def test_statistics_morsels_and_degree():
    session = _parallel_session(degree=3, n_rows=4000)
    stats = Statistics(session.engine)
    assert stats.parallel_degree("SALES") == 3
    assert stats.morsels("SALES") == -(-4000 // 512)
    session.set_parallelism(None)
    assert stats.parallel_degree("SALES") == 1


def test_parallel_cost_formula_components():
    # Small sanity anchor: the formula's constants are what the docs say.
    assert MORSEL_OVERHEAD > 0 and MERGE_ROW_WEIGHT > 0
