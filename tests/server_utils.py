"""Shared plumbing for the server test battery (not itself a test file)."""

from __future__ import annotations

import contextlib
import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from repro.server import AdmissionConfig, ReproServer, ServerConfig, TenantConfig

SALES_STATEMENT = "with SALES by month assess storeSales labels quartiles"
SALES_STATEMENT_2 = (
    "with SALES by month, country assess storeSales labels quartiles"
)
SSB_STATEMENT = "with SSB by year assess revenue labels quartiles"


def http_get(url: str, timeout: float = 30.0) -> Tuple[int, bytes, Dict[str, str]]:
    """GET, returning (status, body, headers) for 2xx and error alike."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def http_post(
    url: str,
    payload: Optional[dict] = None,
    raw: Optional[bytes] = None,
    timeout: float = 30.0,
) -> Tuple[int, bytes, Dict[str, str]]:
    """POST JSON (or raw bytes), returning (status, body, headers)."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else raw
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def get_json(url: str, timeout: float = 30.0) -> Tuple[int, dict]:
    status, body, _ = http_get(url, timeout=timeout)
    return status, json.loads(body)


def post_json(
    url: str, payload: dict, timeout: float = 30.0
) -> Tuple[int, dict, Dict[str, str]]:
    status, body, headers = http_post(url, payload=payload, timeout=timeout)
    return status, json.loads(body), headers


@contextlib.contextmanager
def running_server(
    tenants=None,
    max_queue: int = 8,
    deadline_s: float = 30.0,
    retry_after_s: float = 1.0,
    shutdown_grace_s: float = 10.0,
):
    """A live server on an ephemeral port, shut down (drained) on exit."""
    config = ServerConfig(
        host="127.0.0.1",
        port=0,
        admission=AdmissionConfig(
            max_queue=max_queue,
            deadline_s=deadline_s,
            retry_after_s=retry_after_s,
            shutdown_grace_s=shutdown_grace_s,
        ),
        tenants=tenants or [TenantConfig("demo", cube="sales", rows=2_000)],
    )
    server = ReproServer(config).start()
    try:
        yield server
    finally:
        server.shutdown(grace_s=shutdown_grace_s)
