"""Unit tests for the engine's vectorised query processor.

The aggregate kernel is validated against a brute-force Python oracle on a
small star; drill-across and pivot are validated against hand-computed
expectations and against each other (P3 equivalence at the engine level).
"""

import math

import numpy as np
import pytest

from repro.core import EngineError, Predicate
from repro.engine import (
    Aggregate,
    AggregateQuery,
    Catalog,
    ColumnPredicate,
    DimensionJoin,
    DrillAcrossQuery,
    EngineExecutor,
    FACT,
    GroupByColumn,
    PivotQuery,
    Table,
)

# A small, fully hand-checkable star:
#   products: 0 apple/fruit, 1 pear/fruit, 2 milk/dairy
#   stores:   0 Italy, 1 France
FACT_ROWS = [
    # (pkey, skey, qty)
    (0, 0, 10.0), (0, 0, 5.0), (1, 0, 7.0), (2, 0, 3.0),
    (0, 1, 20.0), (1, 1, 8.0), (1, 1, 2.0), (2, 1, 4.0),
]


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    catalog.register(
        Table(
            "product",
            {
                "pkey": np.arange(3, dtype=np.int64),
                "name": np.array(["apple", "pear", "milk"], dtype=object),
                "type": np.array(["fruit", "fruit", "dairy"], dtype=object),
            },
        )
    )
    catalog.register(
        Table(
            "store",
            {
                "skey": np.arange(2, dtype=np.int64),
                "country": np.array(["Italy", "France"], dtype=object),
            },
        )
    )
    catalog.register(
        Table(
            "fact",
            {
                "pkey": np.array([r[0] for r in FACT_ROWS], dtype=np.int64),
                "skey": np.array([r[1] for r in FACT_ROWS], dtype=np.int64),
                "qty": np.array([r[2] for r in FACT_ROWS], dtype=np.float64),
            },
        )
    )
    return catalog


@pytest.fixture(scope="module")
def executor(catalog):
    return EngineExecutor(catalog)


JOINS = (
    DimensionJoin("product", "pkey", "pkey"),
    DimensionJoin("store", "skey", "skey"),
)


def agg_query(group_by, where=(), op="sum"):
    return AggregateQuery(
        fact="fact",
        joins=JOINS,
        where=where,
        group_by=group_by,
        aggregates=(Aggregate("qty", op, "qty"),),
    )


def result_as_dict(result, keys, value="qty"):
    columns = [result.column(k) for k in keys]
    values = result.column(value)
    return {tuple(col[i] for col in columns): values[i] for i in range(len(result))}


class TestAggregate:
    def test_group_by_one_dim_column(self, executor):
        result = executor.execute(agg_query((GroupByColumn("store", "country", "country"),)))
        assert result_as_dict(result, ["country"]) == {
            ("Italy",): 25.0,
            ("France",): 34.0,
        }

    def test_group_by_two_columns(self, executor):
        result = executor.execute(
            agg_query(
                (
                    GroupByColumn("product", "type", "type"),
                    GroupByColumn("store", "country", "country"),
                )
            )
        )
        assert result_as_dict(result, ["type", "country"]) == {
            ("fruit", "Italy"): 22.0,
            ("dairy", "Italy"): 3.0,
            ("fruit", "France"): 30.0,
            ("dairy", "France"): 4.0,
        }

    def test_complete_aggregation(self, executor):
        result = executor.execute(agg_query(()))
        assert len(result) == 1
        assert result.column("qty")[0] == 59.0

    def test_dimension_predicate(self, executor):
        result = executor.execute(
            agg_query(
                (GroupByColumn("product", "name", "product"),),
                where=(ColumnPredicate("store", "country", Predicate.eq("country", "Italy")),),
            )
        )
        assert result_as_dict(result, ["product"]) == {
            ("apple",): 15.0,
            ("pear",): 7.0,
            ("milk",): 3.0,
        }

    def test_fact_predicate(self, executor):
        result = executor.execute(
            AggregateQuery(
                "fact",
                JOINS,
                (ColumnPredicate(FACT, "qty", Predicate.between("qty", 5.0, 10.0)),),
                (GroupByColumn("store", "country", "country"),),
                (Aggregate("qty", "sum", "qty"),),
            )
        )
        assert result_as_dict(result, ["country"]) == {
            ("Italy",): 22.0,
            ("France",): 8.0,
        }

    def test_conjunctive_predicates(self, executor):
        result = executor.execute(
            agg_query(
                (GroupByColumn("product", "name", "product"),),
                where=(
                    ColumnPredicate("store", "country", Predicate.eq("country", "France")),
                    ColumnPredicate("product", "type", Predicate.eq("type", "fruit")),
                ),
            )
        )
        assert result_as_dict(result, ["product"]) == {
            ("apple",): 20.0,
            ("pear",): 10.0,
        }

    def test_empty_selection(self, executor):
        result = executor.execute(
            agg_query(
                (GroupByColumn("product", "name", "product"),),
                where=(ColumnPredicate("store", "country", Predicate.eq("country", "Spain")),),
            )
        )
        assert len(result) == 0

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("sum", 25.0),
            ("count", 4.0),
            ("avg", 6.25),
            ("min", 3.0),
            ("max", 10.0),
        ],
    )
    def test_aggregation_operators(self, executor, op, expected):
        result = executor.execute(
            agg_query(
                (GroupByColumn("store", "country", "country"),),
                where=(ColumnPredicate("store", "country", Predicate.eq("country", "Italy")),),
                op=op,
            )
        )
        assert result.column("qty")[0] == pytest.approx(expected)

    def test_needs_an_aggregate(self):
        with pytest.raises(EngineError):
            AggregateQuery("fact", JOINS, (), (), ())

    def test_unjoined_table_rejected(self):
        with pytest.raises(EngineError):
            AggregateQuery(
                "fact", (), (), (GroupByColumn("product", "name", "p"),),
                (Aggregate("qty", "sum", "qty"),),
            )


class TestDrillAcross:
    def left(self):
        return agg_query(
            (GroupByColumn("product", "name", "product"),),
            where=(ColumnPredicate("store", "country", Predicate.eq("country", "Italy")),),
        )

    def right(self):
        return agg_query(
            (GroupByColumn("product", "name", "product"),),
            where=(ColumnPredicate("store", "country", Predicate.eq("country", "France")),),
        )

    def test_inner_join(self, executor):
        query = DrillAcrossQuery(self.left(), self.right(), ("product",), {"qty": "bc_qty"})
        result = executor.execute(query)
        rows = result_as_dict(result, ["product"], value="bc_qty")
        assert rows == {("apple",): 20.0, ("pear",): 10.0, ("milk",): 4.0}
        own = result_as_dict(result, ["product"], value="qty")
        assert own == {("apple",): 15.0, ("pear",): 7.0, ("milk",): 3.0}

    def test_outer_join_fills_nan(self, executor, catalog):
        right = agg_query(
            (GroupByColumn("product", "name", "product"),),
            where=(
                ColumnPredicate("store", "country", Predicate.eq("country", "France")),
                ColumnPredicate("product", "type", Predicate.eq("type", "fruit")),
            ),
        )
        query = DrillAcrossQuery(self.left(), right, ("product",), {"qty": "bc_qty"},
                                 outer=True)
        result = executor.execute(query)
        rows = result_as_dict(result, ["product"], value="bc_qty")
        assert math.isnan(rows[("milk",)])
        assert rows[("apple",)] == 20.0

    def test_non_unique_right_without_multi_rejected(self, executor):
        wide = agg_query(
            (
                GroupByColumn("product", "name", "product"),
                GroupByColumn("store", "country", "country"),
            )
        )
        query = DrillAcrossQuery(self.left(), wide, ("product",), {"qty": "bc"})
        with pytest.raises(EngineError):
            executor.execute(query)

    def test_multi_join_appends_numbered_columns(self, executor):
        wide = agg_query(
            (
                GroupByColumn("product", "name", "product"),
                GroupByColumn("store", "country", "country"),
            )
        )
        query = DrillAcrossQuery(self.left(), wide, ("product",), {"qty": "bc"},
                                 multi=True)
        result = executor.execute(query)
        # each product matches France + Italy rows, ordered by coordinate
        assert "bc_1" in result.column_names and "bc_2" in result.column_names
        rows1 = result_as_dict(result, ["product"], value="bc_1")
        rows2 = result_as_dict(result, ["product"], value="bc_2")
        # 'France' < 'Italy' lexicographically → slot 1 is France
        assert rows1[("apple",)] == 20.0 and rows2[("apple",)] == 15.0

    def test_join_alias_validation(self):
        with pytest.raises(EngineError):
            DrillAcrossQuery(self.left(), self.right(), ("country",), {})


class TestPivot:
    def base(self):
        return agg_query(
            (
                GroupByColumn("product", "name", "product"),
                GroupByColumn("store", "country", "country"),
            )
        )

    def test_pivot_matches_drill_across(self, executor):
        """P3 at the engine level: pivot ≡ get+get+join."""
        pivot = PivotQuery(
            self.base(), "country", "Italy", {"France": {"qty": "bc_qty"}}
        )
        joined = DrillAcrossQuery(
            agg_query(
                (GroupByColumn("product", "name", "product"),
                 GroupByColumn("store", "country", "country")),
                where=(ColumnPredicate("store", "country",
                                       Predicate.eq("country", "Italy")),),
            ),
            agg_query(
                (GroupByColumn("product", "name", "product"),),
                where=(ColumnPredicate("store", "country",
                                       Predicate.eq("country", "France")),),
            ),
            ("product",),
            {"qty": "bc_qty"},
        )
        via_pivot = result_as_dict(executor.execute(pivot), ["product"], "bc_qty")
        via_join = result_as_dict(executor.execute(joined), ["product"], "bc_qty")
        assert via_pivot == via_join

    def test_pivot_require_all_filters(self, executor, catalog):
        base = agg_query(
            (
                GroupByColumn("product", "name", "product"),
                GroupByColumn("store", "country", "country"),
            ),
            where=(ColumnPredicate(FACT, "qty", Predicate.between("qty", 4.0, 50.0)),),
        )
        # milk Italy (3.0) filtered out → France milk has no Italian reference
        strict = executor.execute(
            PivotQuery(base, "country", "Italy", {"France": {"qty": "bc"}},
                       require_all=True)
        )
        assert ("milk",) not in result_as_dict(strict, ["product"], "bc")
        lax = executor.execute(
            PivotQuery(base, "country", "Italy", {"France": {"qty": "bc"}},
                       require_all=False)
        )
        assert len(lax) == len(strict)  # milk has no reference row either way

    def test_reference_slice_retained(self, executor):
        result = executor.execute(
            PivotQuery(self.base(), "country", "France", {"Italy": {"qty": "it"}})
        )
        assert set(result.column("country")) == {"France"}

    def test_unknown_pivot_alias_rejected(self):
        with pytest.raises(EngineError):
            PivotQuery(self.base(), "region", "Italy", {})
