"""Figure 3 — execution times of NP/JOP/POP per intention and scale.

Regenerates the series of Figure 3: one benchmark case per (intention,
plan, scale) triple, over the feasibility matrix of Section 5.2.  The
paper's claims — JOP ≤ NP and POP ≤ JOP where feasible, and linear scaling
across the ladder — are checked by ``benchmarks/harness.py fig3`` and by
the Table 3 bench; here each case simply measures one plan's wall time.
"""

import pytest

from benchmarks.conftest import rounds_for
from repro.experiments import FEASIBLE_PLANS
from repro.experiments.statements import INTENTIONS

CASES = [
    (intention, plan)
    for intention in INTENTIONS
    for plan in FEASIBLE_PLANS[intention]
]


@pytest.mark.parametrize("scale", ["SSB1", "SSB10", "SSB100"])
@pytest.mark.parametrize("intention,plan", CASES)
def test_fig3_execution_time(benchmark, runner, intention, plan, scale):
    if scale not in runner.scales:
        pytest.skip(f"{scale} not in the configured ladder")

    benchmark.extra_info["intention"] = intention
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["rows"] = runner.ladder[scale]

    result = benchmark.pedantic(
        runner.run_once,
        args=(intention, scale, plan),
        rounds=rounds_for(runner, scale),
        iterations=1,
        warmup_rounds=1 if runner.ladder[scale] <= 1_000_000 else 0,
    )
    benchmark.extra_info["cells"] = len(result)
    assert len(result) > 0
