"""Table 1 — formulation effort per intention.

Regenerates the rows of Table 1: the ASCII-character cost of the generated
SQL + Python equivalent of each reference intention versus the assess
statement itself.  The benchmarked operation is the code generation (the
timing is incidental; the *measured characters* land in ``extra_info`` and
are asserted against the paper's headline claim).
"""

import pytest

from repro.experiments import PAPER_TABLE1
from repro.experiments.statements import INTENTIONS


@pytest.mark.parametrize("intention", INTENTIONS)
def test_table1_formulation_effort(benchmark, runner, intention):
    effort = benchmark(runner.formulation_row, intention)

    benchmark.extra_info["intention"] = intention
    benchmark.extra_info["measured"] = effort
    benchmark.extra_info["paper"] = PAPER_TABLE1[intention]

    # The paper's claim: total SQL+Python effort is more than an order of
    # magnitude larger than the assess statement.  Our generated Python is
    # leaner than the prototype's, so we assert a conservative 5x.
    assert effort["total"] == effort["sql"] + effort["python"]
    assert effort["total"] > 5 * effort["assess"], (
        f"{intention}: total={effort['total']} assess={effort['assess']}"
    )
    # And the assess statement stays in the same ballpark as the paper's
    # (hundreds of characters, not thousands).
    assert effort["assess"] < 600
