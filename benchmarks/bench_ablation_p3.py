"""Ablation — property P3 on/off (join pushdown vs pivot replacement).

Isolates the benefit Section 5.2.3 attributes to POP: fetching the target
and benchmark slices with ONE widened get + pivot instead of two gets + a
join.  Both variants push everything to the engine, so the measured gap is
purely the P3 rewrite's doing (one fact scan instead of two, no join).
"""

import pytest

from benchmarks.conftest import rounds_for


@pytest.mark.parametrize("intention", ["Sibling", "Past"])
@pytest.mark.parametrize("p3", [False, True], ids=["P3-off(JOP)", "P3-on(POP)"])
def test_ablation_p3(benchmark, runner, intention, p3):
    scale = runner.scales[-1]
    plan_name = "POP" if p3 else "JOP"
    result = benchmark.pedantic(
        runner.run_once,
        args=(intention, scale, plan_name),
        rounds=rounds_for(runner, scale),
        iterations=1,
    )
    benchmark.extra_info["intention"] = intention
    benchmark.extra_info["plan"] = plan_name
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["cells"] = len(result)
    assert len(result) > 0
