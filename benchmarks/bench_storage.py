"""Compressed column-store benchmark (PR 7): pruning speedup and RSS.

Measures the two acceptance numbers of the storage layer:

* **zone-map pruning speedup** — a selective SSB statement (one year of
  seven) over the same clustered, memory-mapped store with pruning on vs
  off (``REPRO_NO_PRUNE``).  Target: >= 1.3x.
* **out-of-core peak RSS** — the same workload from an in-RAM generated
  engine vs a memory-mapped v2 store, one ladder rung above the largest
  the in-RAM seed path was benchmarked at.  Target: >= 2x lower.

Every arm runs in its own subprocess so the peak RSS (normalized to
kilobytes by ``repro.obs.rss``) is the arm's own peak, and every arm digests its result cells so
the driver can assert bit-identity.  The workload measure is
``quantity`` (integral), so re-clustering the store cannot reassociate
its sums — cells stay bit-identical across all arms by construction.

Usage::

    PYTHONPATH=src python benchmarks/bench_storage.py --json BENCH_PR7.json
    PYTHONPATH=src python benchmarks/bench_storage.py --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time

STATEMENT = """
    with SSB for year = '1997' by month, c_region
    assess quantity against 100000
    using ratio(quantity, 100000)
    labels {[0, 0.9): low, [0.9, 1.1]: ok, (1.1, inf): high}
"""

CLUSTER_COLUMN = "lo_datekey"


# ----------------------------------------------------------------------
# Worker side (runs in a subprocess per arm)
# ----------------------------------------------------------------------
def _cell_value(value) -> str:
    """Bit-exact rendering: float64 via hex(), anything else via str()."""
    if hasattr(value, "item"):
        value = value.item()
    return value.hex() if isinstance(value, float) else str(value)


def _digest(result) -> str:
    """A stable content hash of the result cells (order-independent)."""
    cube = result.cube
    levels = tuple(cube.group_by.levels)
    rows = []
    for row in range(len(cube)):
        coords = tuple(str(cube.coords[level][row]) for level in levels)
        values = tuple(
            _cell_value(cube.measures[name][row]) for name in cube.measures
        )
        rows.append((coords, values))  # labels ride along in cube.measures
    blob = repr((levels, sorted(rows))).encode()
    return hashlib.sha256(blob).hexdigest()


def _storage_counters(engine) -> dict:
    counters = engine.metrics.snapshot()["counters"]
    picked = {
        key: value for key, value in counters.items()
        if key.startswith("engine.storage.")
    }
    picked["engine.rows_scanned"] = counters.get("engine.rows_scanned", 0)
    return picked


def worker(args) -> int:
    from repro.api import AssessSession
    from repro.obs.rss import peak_rss_kb
    from repro.datagen.ssb import ssb_engine, ssb_engine_from_catalog
    from repro.engine.persist import load_catalog, save_catalog

    if args.worker == "save":
        engine = ssb_engine(lineorder_rows=args.rows, seed=7, with_budget=False)
        start = time.perf_counter()
        save_catalog(
            engine.catalog, args.store,
            cluster={"ssb_lineorder": CLUSTER_COLUMN} if args.cluster else None,
            zone_rows=args.zone_rows,
        )
        payload = {
            "mode": "save",
            "rows": args.rows,
            "save_s": time.perf_counter() - start,
            "peak_rss_kb": peak_rss_kb(),
        }
        print(json.dumps(payload))
        return 0

    if args.worker == "inram":
        engine = ssb_engine(lineorder_rows=args.rows, seed=7, with_budget=False)
    else:  # mmap
        engine = ssb_engine_from_catalog(load_catalog(args.store, mmap=True))
    engine.result_cache.enabled = False
    session = AssessSession(engine)

    session.assess(STATEMENT)  # warmup (key indexes, dictionaries)
    samples = []
    result = None
    for _ in range(args.repetitions):
        start = time.perf_counter()
        result = session.assess(STATEMENT)
        samples.append(time.perf_counter() - start)

    payload = {
        "mode": args.worker,
        "rows": args.rows,
        "pruning": engine.executor.zone_pruning,
        "samples_s": samples,
        "min_s": min(samples),
        "median_s": statistics.median(samples),
        "peak_rss_kb": peak_rss_kb(),
        "digest": _digest(result),
        "counters": _storage_counters(engine),
    }
    print(json.dumps(payload))
    return 0


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def run_arm(mode: str, rows: int, store: str, repetitions: int,
            zone_rows: int, cluster: bool = False,
            no_prune: bool = False) -> dict:
    command = [
        sys.executable, os.path.abspath(__file__),
        "--worker", mode, "--rows", str(rows), "--store", store,
        "--repetitions", str(repetitions), "--zone-rows", str(zone_rows),
    ]
    if cluster:
        command.append("--cluster")
    env = dict(os.environ)
    if no_prune:
        env["REPRO_NO_PRUNE"] = "1"
    else:
        env.pop("REPRO_NO_PRUNE", None)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    output = subprocess.run(command, env=env, capture_output=True, text=True)
    if output.returncode != 0:
        sys.stderr.write(output.stderr)
        raise RuntimeError(f"worker arm {mode!r} failed (see stderr above)")
    return json.loads(output.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=6_000_000,
                        help="rows of the pruning-speedup rung "
                        "(default: 6,000,000 — the seed ladder's top)")
    parser.add_argument("--big-rows", type=int, default=60_000_000,
                        help="rows of the out-of-core rung, one rung above "
                        "the seed ladder (default: 60,000,000)")
    parser.add_argument("--zone-rows", type=int, default=65_536,
                        help="zone-map granularity (default: morsel size)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="timed runs per arm (default: 3)")
    parser.add_argument("--store-dir", default="",
                        help="where to write the stores (default: a "
                        "temporary directory, removed afterwards)")
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write the measurements as JSON to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny rungs, correctness only")
    # worker-side flags
    parser.add_argument("--worker", choices=("save", "inram", "mmap"),
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--store", default="", help=argparse.SUPPRESS)
    parser.add_argument("--cluster", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return worker(args)

    if args.smoke:
        args.rows = min(args.rows, 120_000)
        args.big_rows = min(args.big_rows, 240_000)
        args.repetitions = 1

    cpus = os.cpu_count() or 1
    print(f"bench_storage: pruning rung {args.rows:,} rows, out-of-core "
          f"rung {args.big_rows:,} rows, zone {args.zone_rows:,} rows, "
          f"{cpus} CPU(s)")

    created_tmp = None
    if args.store_dir:
        store_dir = args.store_dir
        os.makedirs(store_dir, exist_ok=True)
    else:
        created_tmp = tempfile.TemporaryDirectory(prefix="bench_storage_")
        store_dir = created_tmp.name

    try:
        # ---- arm 1: pruning speedup over one clustered mmap store ----
        store = os.path.join(store_dir, f"ssb_{args.rows}")
        save = run_arm("save", args.rows, store, args.repetitions,
                       args.zone_rows, cluster=True)
        print(f"  save ({args.rows:,} rows, clustered by {CLUSTER_COLUMN}): "
              f"{save['save_s']:.1f}s, peak RSS "
              f"{save['peak_rss_kb'] / 1024:.0f} MB")

        prune_on = run_arm("mmap", args.rows, store, args.repetitions,
                           args.zone_rows)
        prune_off = run_arm("mmap", args.rows, store, args.repetitions,
                            args.zone_rows, no_prune=True)
        inram = run_arm("inram", args.rows, store, args.repetitions,
                        args.zone_rows)

        for name, arm in (("mmap+prune", prune_on),
                          ("mmap", prune_off), ("inram", inram)):
            print(f"  {name:<11} min {arm['min_s']:.3f}s  median "
                  f"{arm['median_s']:.3f}s  peak RSS "
                  f"{arm['peak_rss_kb'] / 1024:.0f} MB")

        assert prune_on["digest"] == prune_off["digest"] == inram["digest"], (
            "arms diverged — compressed/mmap/pruned cells are not "
            "bit-identical to the in-RAM engine"
        )
        print("  bit-identical: yes (inram, mmap, mmap+prune)")
        zones_pruned = prune_on["counters"].get(
            "engine.storage.zones_pruned", 0
        )
        assert zones_pruned > 0, "the selective scan never pruned a zone"
        assert prune_off["counters"].get(
            "engine.storage.zones_pruned", 0
        ) == 0, "REPRO_NO_PRUNE did not disable pruning"
        speedup = prune_off["min_s"] / prune_on["min_s"]
        scan_ratio = (
            prune_off["counters"]["engine.rows_scanned"]
            / max(prune_on["counters"]["engine.rows_scanned"], 1)
        )
        print(f"  pruning speedup: {speedup:.2f}x "
              f"(zones pruned {zones_pruned:,}, "
              f"rows scanned {scan_ratio:.1f}x fewer)")

        # ---- arm 2: out-of-core rung, inram vs mmap peak RSS ----
        big_store = os.path.join(store_dir, f"ssb_{args.big_rows}")
        big_save = run_arm("save", args.big_rows, big_store,
                           args.repetitions, args.zone_rows, cluster=True)
        print(f"  save ({args.big_rows:,} rows): {big_save['save_s']:.1f}s, "
              f"peak RSS {big_save['peak_rss_kb'] / 1024:.0f} MB")
        big_inram = run_arm("inram", args.big_rows, big_store,
                            args.repetitions, args.zone_rows)
        big_mmap = run_arm("mmap", args.big_rows, big_store,
                           args.repetitions, args.zone_rows)
        assert big_inram["digest"] == big_mmap["digest"], (
            "out-of-core rung diverged from the in-RAM engine"
        )
        rss_ratio = big_inram["peak_rss_kb"] / max(big_mmap["peak_rss_kb"], 1)
        print(f"  out-of-core rung ({args.big_rows:,} rows): inram "
              f"{big_inram['peak_rss_kb'] / 1024:.0f} MB vs mmap "
              f"{big_mmap['peak_rss_kb'] / 1024:.0f} MB "
              f"({rss_ratio:.1f}x lower), min "
              f"{big_inram['min_s']:.3f}s vs {big_mmap['min_s']:.3f}s")

        if not args.smoke:
            assert speedup >= 1.3, (
                f"pruning speedup {speedup:.2f}x below the 1.3x bar"
            )
            assert rss_ratio >= 2.0, (
                f"RSS ratio {rss_ratio:.1f}x below the 2x bar"
            )

        if args.json:
            payload = {
                "benchmark": "storage-zone-pruning",
                "cpus": cpus,
                "zone_rows": args.zone_rows,
                "repetitions": args.repetitions,
                "statement": " ".join(STATEMENT.split()),
                "cluster_by": CLUSTER_COLUMN,
                "pruning_rung": {
                    "rows": args.rows,
                    "save": save,
                    "inram": inram,
                    "mmap_prune_off": prune_off,
                    "mmap_prune_on": prune_on,
                    "speedup": speedup,
                    "rows_scanned_ratio": scan_ratio,
                },
                "out_of_core_rung": {
                    "rows": args.big_rows,
                    "save": big_save,
                    "inram": big_inram,
                    "mmap": big_mmap,
                    "rss_ratio": rss_ratio,
                },
                "bit_identical": True,
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"  wrote {args.json}")
    finally:
        if created_tmp is not None:
            created_tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
