"""Ablation — semantic result cache off vs on for a repeated session.

The interactive scenario the cache targets: a session poses the four
reference intentions against the same target cube, then poses them again
(refined spellings, re-runs, dashboard refreshes).  With the cache off
every get re-executes from the fact table; with it on, repeats are exact
hits and related group-by sets derive from cached finer results.

Usage::

    python benchmarks/bench_ablation_cache.py                      # 60k rung
    python benchmarks/bench_ablation_cache.py --rows 60000,600000 --json BENCH_PR2.json
    python benchmarks/bench_ablation_cache.py --smoke              # CI mode

Per rung the script measures the summed "get" step time (the Figure 4
breakdown buckets ``get_target``/``get_benchmark``/``get_combined``) of
one full cold pass vs one warm pass, verifies every warm result is
**bit-identical** to its cold counterpart, and asserts the speedup floor
(≥ 5× at rungs of 600k rows and above, a 1.5× sanity factor in
``--smoke`` mode).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.api import AssessSession
from repro.experiments.statements import INTENTIONS, prepare_engine, statement_text

GET_STEPS = ("get_target", "get_benchmark", "get_combined")
FULL_SPEEDUP_FLOOR = 5.0     # acceptance: ≥5× at the 600k rung
FULL_FLOOR_ROWS = 600_000
SMOKE_SPEEDUP_FLOOR = 1.5    # CI sanity factor at a small rung


def get_seconds(result) -> float:
    return sum(result.timings.get(step, 0.0) for step in GET_STEPS)


def same_array(left, right) -> bool:
    if len(left) != len(right):
        return False
    a, b = np.asarray(left), np.asarray(right)
    if a.dtype.kind == "f" and b.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return all(
        x == y or (x != x and y != y) for x, y in zip(a.tolist(), b.tolist())
    )


def bit_identical(left, right) -> bool:
    """Whether two assess results carry identical cells, values, labels."""
    lc, rc = left.cube, right.cube
    if list(lc.coords) != list(rc.coords) or list(lc.measures) != list(rc.measures):
        return False
    for name in lc.coords:
        if not same_array(lc.coords[name], rc.coords[name]):
            return False
    for name in lc.measures:
        if not same_array(lc.measures[name], rc.measures[name]):
            return False
    return True


def run_rung(rows: int, plan: str, seed: int = 7) -> dict:
    engine = prepare_engine(rows, seed=seed)
    session = AssessSession(engine)
    statements = [statement_text(name) for name in INTENTIONS]

    # Warm dictionaries/indexes once so the cold pass measures steady-state
    # execution, not one-time encoding costs.
    engine.result_cache.enabled = False
    for text in statements:
        session.assess(text, plan=plan)

    cold_start = time.perf_counter()
    cold = [session.assess(text, plan=plan) for text in statements]
    cold_wall = time.perf_counter() - cold_start

    # Warm: enable the cache, populate with one pass, then time the repeat —
    # the "repeated-statement session" the cache exists for.
    engine.result_cache.enabled = True
    for text in statements:
        session.assess(text, plan=plan)
    warm_start = time.perf_counter()
    warm = [session.assess(text, plan=plan) for text in statements]
    warm_wall = time.perf_counter() - warm_start

    identical = all(bit_identical(w, c) for w, c in zip(warm, cold))
    cold_get = sum(get_seconds(result) for result in cold)
    warm_get = sum(get_seconds(result) for result in warm)
    stats = session.cache_stats()
    return {
        "rows": rows,
        "plan": plan,
        "statements": list(INTENTIONS),
        "cold_get_s": cold_get,
        "warm_get_s": warm_get,
        "get_speedup": cold_get / warm_get if warm_get > 0 else float("inf"),
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "wall_speedup": cold_wall / warm_wall if warm_wall > 0 else float("inf"),
        "bit_identical": identical,
        "per_statement": [
            {
                "intention": name,
                "cold_get_s": get_seconds(c),
                "warm_get_s": get_seconds(w),
                "cells": len(c),
            }
            for name, c, w in zip(INTENTIONS, cold, warm)
        ],
        "cache": {
            key: stats[key]
            for key in ("hits", "misses", "derivations", "evictions",
                        "invalidations", "stores", "cached_cells")
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Cold vs warm repeated-session ablation of the "
        "semantic result cache."
    )
    parser.add_argument("--rows", type=str, default="60000",
                        help="comma-separated lineorder rungs "
                        "(default: 60000)")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"))
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write machine-readable results to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one small rung, sanity-factor "
                        "speedup floor instead of the full 5x floor")
    args = parser.parse_args(argv)

    rungs = [int(part) for part in args.rows.split(",") if part.strip()]
    if args.smoke:
        rungs = [20_000]

    print("cache ablation — repeated 4-intention session, cold vs warm")
    results, failures = [], []
    for rows in rungs:
        record = run_rung(rows, args.plan)
        results.append(record)
        print(
            f"  {rows:>9,} rows: get {1000 * record['cold_get_s']:.1f} ms cold "
            f"→ {1000 * record['warm_get_s']:.2f} ms warm "
            f"({record['get_speedup']:.1f}x), "
            f"wall {1000 * record['cold_wall_s']:.1f} → "
            f"{1000 * record['warm_wall_s']:.1f} ms, "
            f"bit-identical: {record['bit_identical']}, "
            f"hits={record['cache']['hits']} "
            f"derivations={record['cache']['derivations']}"
        )
        if not record["bit_identical"]:
            failures.append(f"{rows} rows: warm results differ from cold")
        floor = SMOKE_SPEEDUP_FLOOR if args.smoke else (
            FULL_SPEEDUP_FLOOR if rows >= FULL_FLOOR_ROWS else None
        )
        if floor is not None and record["get_speedup"] < floor:
            failures.append(
                f"{rows} rows: get speedup {record['get_speedup']:.2f}x "
                f"below the {floor}x floor"
            )

    if args.json:
        payload = {
            "benchmark": "bench_ablation_cache",
            "plan": args.plan,
            "intentions": list(INTENTIONS),
            "rungs": results,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok: warm results bit-identical, speedup floors met")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
