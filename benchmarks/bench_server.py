"""Server load test — latency percentiles under concurrent tenants.

Stands up an in-process :class:`repro.server.ReproServer` with two
tenants (sales + SSB) and drives it with N client threads issuing a
mixed workload over plain ``urllib`` (the same wire a real client
uses, socket and JSON round-trips included):

* **warm**  — the same statement repeatedly: after the first execution
  every request is a semantic-cache hit, so this arm measures the
  serving floor (HTTP + admission + serialization);
* **cold**  — a rotating family of statements whose benchmark constant
  varies, so each is a distinct fingerprint and most requests execute
  a real plan;
* **fused** — ``POST /v1/batch`` with the four paper intentions, the
  batch fusion path under concurrency.

Per arm the harness records p50/p95/p99 latency, throughput, and the
error rate; the acceptance gate is the ISSUE's load shape — **16
clients × 2 tenants, zero errors**.  Results go to ``BENCH_PR10.json``.

Usage::

    python benchmarks/bench_server.py                      # full run
    python benchmarks/bench_server.py --clients 32 --requests 40
    python benchmarks/bench_server.py --smoke              # CI mode
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from repro.experiments.statements import statement_text
from repro.server import (
    AdmissionConfig,
    ReproServer,
    ServerConfig,
    TenantConfig,
)

SALES_WARM = "with SALES by month assess storeSales labels quartiles"
SSB_WARM = "with SSB by year assess revenue labels quartiles"
FUSED_STATEMENTS = [
    statement_text("Constant"),
    statement_text("External"),
    statement_text("Sibling"),
    statement_text("Past"),
]


def cold_statement(tenant_id: str, index: int) -> str:
    """A distinct-fingerprint statement per index (constant varies)."""
    constant = 10_000 + 137 * index
    if tenant_id == "acme":
        return (
            f"with SALES by month assess storeSales against {constant} "
            f"using ratio(storeSales, {constant}) "
            "labels {[0, 1): low, [1, 100): high}"
        )
    return (
        f"with SSB by year assess revenue against {constant} "
        f"using ratio(revenue, {constant}) "
        "labels {[0, 1): low, [1, 100): high}"
    )


def _post(url: str, payload: dict, timeout: float = 120.0):
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_arm(server, arm: str, clients: int, requests_per_client: int):
    """Drive one workload arm with ``clients`` threads; return stats."""
    latencies = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1, timeout=300.0)

    def client(index: int) -> None:
        tenant_id = "acme" if index % 2 == 0 else "globex"
        barrier.wait()
        for turn in range(requests_per_client):
            if arm == "warm":
                payload = {
                    "tenant": tenant_id,
                    "statement": SALES_WARM if tenant_id == "acme" else SSB_WARM,
                }
                url = f"{server.url}/v1/query"
            elif arm == "cold":
                payload = {
                    "tenant": tenant_id,
                    "statement": cold_statement(
                        tenant_id, index * requests_per_client + turn
                    ),
                }
                url = f"{server.url}/v1/query"
            else:  # fused
                payload = {"tenant": "globex", "statements": FUSED_STATEMENTS}
                url = f"{server.url}/v1/batch"
            start = time.perf_counter()
            try:
                status, body = _post(url, payload)
            except Exception as error:  # noqa: BLE001 - counted as an error
                with lock:
                    errors.append(f"client {index}: {error}")
                continue
            elapsed = time.perf_counter() - start
            with lock:
                if status == 200:
                    latencies.append(elapsed)
                else:
                    errors.append(f"client {index}: status {status}")

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    total = clients * requests_per_client
    latencies.sort()
    return {
        "arm": arm,
        "clients": clients,
        "requests": total,
        "ok": len(latencies),
        "errors": len(errors),
        "error_rate": len(errors) / total if total else 0.0,
        "error_samples": errors[:5],
        "wall_s": round(wall, 6),
        "throughput_rps": round(len(latencies) / wall, 3) if wall else 0.0,
        "latency_s": {
            "p50": round(percentile(latencies, 50), 6),
            "p95": round(percentile(latencies, 95), 6),
            "p99": round(percentile(latencies, 99), 6),
            "min": round(latencies[0], 6) if latencies else 0.0,
            "max": round(latencies[-1], 6) if latencies else 0.0,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the multi-tenant assess server."
    )
    parser.add_argument("--clients", type=int, default=16,
                        help="client threads (default: 16)")
    parser.add_argument("--requests", type=int, default=16,
                        help="requests per client per arm (default: 16)")
    parser.add_argument("--sales-rows", type=int, default=20_000)
    parser.add_argument("--ssb-rows", type=int, default=30_000)
    parser.add_argument("--pool-size", type=int, default=4,
                        help="sessions per tenant (default: 4)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results to PATH (default: stdout only)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny cubes, few requests")
    args = parser.parse_args(argv)

    if args.smoke:
        args.clients = min(args.clients, 8)
        args.requests = min(args.requests, 4)
        args.sales_rows = min(args.sales_rows, 2_000)
        args.ssb_rows = min(args.ssb_rows, 4_000)

    config = ServerConfig(
        host="127.0.0.1", port=0,
        admission=AdmissionConfig(max_queue=max(64, args.clients * 4),
                                  deadline_s=300.0),
        tenants=[
            TenantConfig("acme", cube="sales", rows=args.sales_rows,
                         pool_size=args.pool_size),
            TenantConfig("globex", cube="ssb", rows=args.ssb_rows,
                         pool_size=args.pool_size),
        ],
    )
    print(f"building tenants (sales {args.sales_rows} rows, "
          f"ssb {args.ssb_rows} rows) ...", flush=True)
    server = ReproServer(config).start()
    arms = []
    try:
        for arm in ("warm", "cold", "fused"):
            print(f"arm {arm}: {args.clients} clients x "
                  f"{args.requests} requests ...", flush=True)
            stats = run_arm(server, arm, args.clients, args.requests)
            arms.append(stats)
            latency = stats["latency_s"]
            print(
                f"  p50 {latency['p50'] * 1e3:8.2f} ms   "
                f"p95 {latency['p95'] * 1e3:8.2f} ms   "
                f"p99 {latency['p99'] * 1e3:8.2f} ms   "
                f"{stats['throughput_rps']:8.1f} req/s   "
                f"errors {stats['errors']}/{stats['requests']}",
                flush=True,
            )
    finally:
        server.shutdown(grace_s=30.0)

    failed = [arm for arm in arms if arm["errors"]]
    document = {
        "benchmark": "server_load",
        "mode": "smoke" if args.smoke else "full",
        "clients": args.clients,
        "requests_per_client": args.requests,
        "tenants": 2,
        "pool_size": args.pool_size,
        "sales_rows": args.sales_rows,
        "ssb_rows": args.ssb_rows,
        "arms": arms,
        "passed": not failed,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.json}")
    if failed:
        print(f"FAIL: errors in arms {[arm['arm'] for arm in failed]}")
        return 1
    print(f"ok: {sum(arm['ok'] for arm in arms)} requests, zero errors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
