"""Figure 4 — breakdown of the Past intention's execution time.

Regenerates Figure 4: the Past intention is executed under each plan with
the instrumented executor, and the per-step timings (get target / get
benchmark / get combined / transform / join / compare / label) land in
``extra_info``.  The paper's two claims are asserted: comparison and
labeling are negligible (milliseconds), and the plans shift get/join cost
between buckets exactly as Section 6.2 describes.
"""

import pytest

from benchmarks.conftest import rounds_for
from repro.algebra import (
    STEP_COMPARE,
    STEP_GET_BENCHMARK,
    STEP_GET_COMBINED,
    STEP_GET_TARGET,
    STEP_JOIN,
    STEP_LABEL,
    STEP_TRANSFORM,
)


@pytest.mark.parametrize("plan", ["NP", "JOP", "POP"])
def test_fig4_past_breakdown(benchmark, runner, plan):
    scale = runner.scales[-1]
    result = benchmark.pedantic(
        runner.run_once,
        args=("Past", scale, plan),
        rounds=rounds_for(runner, scale),
        iterations=1,
    )
    breakdown = result.timings
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["breakdown_ms"] = {
        step: round(1000 * seconds, 2) for step, seconds in breakdown.items()
    }

    total = sum(breakdown.values())
    compare_label = breakdown.get(STEP_COMPARE, 0.0) + breakdown.get(STEP_LABEL, 0.0)
    # "the execution times for comparison and labeling are ... negligible"
    assert compare_label < 0.2 * total

    if plan == "NP":
        # NP gets both cubes separately and joins in memory
        assert STEP_GET_TARGET in breakdown
        assert STEP_GET_BENCHMARK in breakdown
        assert STEP_JOIN in breakdown
        assert STEP_TRANSFORM in breakdown  # pivot + regression
    else:
        # JOP folds the join, POP the pivot, into one pushed query
        assert STEP_GET_COMBINED in breakdown
        assert STEP_JOIN not in breakdown
        assert STEP_TRANSFORM in breakdown  # regression stays in memory
