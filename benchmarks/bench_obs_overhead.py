"""Observability overhead — the disabled tracer must be (nearly) free.

Tracing is opt-in: with no tracer installed, every instrumented call
site reduces to one ``tracer.enabled`` branch (plus the always-on
metrics counters, one dict operation per engine call).  This benchmark
pins that promise on the 10-statement overlapping workload
``examples/ssb_batch_workload.assess``, sequential and batched:

* **baseline** — the workload with the default ``NULL_TRACER``;
* **enabled** — the same workload under ``repro.obs.tracing()``
  (reported for context, not asserted: recording spans has a real cost
  and is only paid when requested).

The acceptance gate is ``disabled overhead < 2%``: the **disabled** arm
against a **stripped** arm where the tracing wrappers are monkeypatched
out (``PlanExecutor._run`` → ``_run_node``,
``EngineExecutor.execute_fused`` → ``_execute_fused``) — i.e. what the
instrumentation costs when nobody is tracing, measured against code
with the wrappers gone.  Arms are interleaved and min-of-N wall times
are compared, so the margin absorbs scheduler noise.  Results go to
``BENCH_PR4.json``.

Usage::

    python benchmarks/bench_obs_overhead.py                    # 60k rung
    python benchmarks/bench_obs_overhead.py --rows 600000 --json BENCH_PR4.json
    python benchmarks/bench_obs_overhead.py --smoke            # CI mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.algebra.executor import PlanExecutor
from repro.api import AssessSession
from repro.analysis import extract_statements
from repro.engine.executor import EngineExecutor
from repro.experiments.statements import prepare_engine
from repro.obs import tracing

WORKLOAD_FILE = Path(__file__).resolve().parent.parent / "examples" / "ssb_batch_workload.assess"
OVERHEAD_CEILING = 0.02      # acceptance: disabled-tracer overhead < 2%
SMOKE_CEILING = 0.10         # CI mode: small rung, noisy boxes


def load_workload() -> list:
    return extract_statements(WORKLOAD_FILE.read_text())


@contextmanager
def stripped_instrumentation():
    """Monkeypatch the tracing wrappers out — the pre-instrumentation code."""
    original_run = PlanExecutor._run
    original_fused = EngineExecutor.execute_fused
    PlanExecutor._run = PlanExecutor._run_node
    EngineExecutor.execute_fused = EngineExecutor._execute_fused
    try:
        yield
    finally:
        PlanExecutor._run = original_run
        EngineExecutor.execute_fused = original_fused


def run_arm(session: AssessSession, statements, plan: str) -> float:
    """One pass of the workload (sequential then batched), cold caches."""
    session.clear_cache()
    start = time.perf_counter()
    for text in statements:
        session.assess(text, plan=plan)
    session.clear_cache()
    session.execute_many(statements, plan=plan)
    return time.perf_counter() - start


def run_rung(rows: int, plan: str, repetitions: int, seed: int = 7) -> dict:
    statements = load_workload()
    engine = prepare_engine(rows, seed=seed)
    session = AssessSession(engine)

    # Warm dictionary encodings and key indexes once; all arms then see
    # identical engine state.
    run_arm(session, statements, plan)

    stripped_times, disabled_times, enabled_times = [], [], []
    for _ in range(repetitions):
        # Interleaved so drift (thermal, page cache) hits all arms alike.
        with stripped_instrumentation():
            stripped_times.append(run_arm(session, statements, plan))
        disabled_times.append(run_arm(session, statements, plan))
        with tracing():
            enabled_times.append(run_arm(session, statements, plan))

    stripped_s = min(stripped_times)
    disabled_s = min(disabled_times)
    enabled_s = min(enabled_times)
    return {
        "rows": rows,
        "plan": plan,
        "statements": len(statements),
        "repetitions": repetitions,
        "stripped_s": stripped_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": disabled_s / stripped_s - 1.0,
        "enabled_overhead": enabled_s / stripped_s - 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Disabled-tracer overhead on the 10-statement SSB "
        "workload (sequential + batched, cold caches)."
    )
    parser.add_argument("--rows", type=str, default="60000",
                        help="comma-separated lineorder rungs "
                        "(default: 60000)")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"))
    parser.add_argument("--repetitions", type=int, default=5,
                        help="interleaved repetitions per arm; min is "
                        "reported (default: 5)")
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write machine-readable results to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one small rung, relaxed ceiling "
                        f"({100 * SMOKE_CEILING:.0f}%%) for noisy runners")
    args = parser.parse_args(argv)

    rungs = [int(part) for part in args.rows.split(",") if part.strip()]
    if args.smoke:
        rungs = [60_000]
    ceiling = SMOKE_CEILING if args.smoke else OVERHEAD_CEILING

    print("observability overhead — 10-statement workload, "
          "NULL_TRACER vs tracing() (cold caches)")
    results, failures = [], []
    for rows in rungs:
        record = run_rung(rows, args.plan, args.repetitions)
        overhead = record["disabled_overhead"]
        record["ceiling"] = ceiling
        record["within_ceiling"] = overhead < ceiling
        results.append(record)
        print(
            f"  {rows:>9,} rows: stripped {1000 * record['stripped_s']:.1f} ms, "
            f"disabled {1000 * record['disabled_s']:.1f} ms "
            f"({100 * overhead:+.2f}%), "
            f"enabled {1000 * record['enabled_s']:.1f} ms "
            f"({100 * record['enabled_overhead']:+.1f}%), "
            f"ceiling {100 * ceiling:.0f}%"
        )
        if not record["within_ceiling"]:
            failures.append(
                f"{rows} rows: disabled-tracer overhead "
                f"{100 * overhead:.2f}% exceeds the "
                f"{100 * ceiling:.0f}% ceiling"
            )

    if args.json:
        payload = {
            "benchmark": "bench_obs_overhead",
            "workload": str(WORKLOAD_FILE.name),
            "plan": args.plan,
            "ceiling": ceiling,
            "rungs": results,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok: disabled-tracer overhead within the ceiling")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
