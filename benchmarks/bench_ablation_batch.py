"""Ablation — batched execution vs sequential for an overlapping workload.

The scenario the batch subsystem targets: a dashboard (or an analyst's
saved workload) poses many assess statements that share predicates and
stars.  Sequentially, every statement pays its own fact scan; through
``AssessSession.execute_many`` the merged plan DAG answers compatible
statements from fused shared scans.

The workload is the 10-statement file
``examples/ssb_batch_workload.assess``: every statement slices
``year = '1997'`` on SSB and assesses ``quantity`` under a different
group-by (two with an extra predicate, exercising subsumption
residuals), so the whole file fuses into one fact pass.

Usage::

    python benchmarks/bench_ablation_batch.py                   # 60k rung
    python benchmarks/bench_ablation_batch.py --rows 600000 --json BENCH_PR3.json
    python benchmarks/bench_ablation_batch.py --smoke           # CI mode

Per rung the script runs the workload sequentially and as one batch —
both on **cold** result caches (the cache ablation covers warm reuse) —
verifies every batch result is bit-identical to its sequential
counterpart, asserts the batch executed fewer engine scans than there
are statements, and asserts the speedup floor (≥ 3x at rungs of 600k
rows and above; in ``--smoke`` mode the batch only has to beat
sequential wall-clock).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import AssessSession
from repro.analysis import extract_statements
from repro.batch import results_identical
from repro.experiments.statements import prepare_engine

WORKLOAD_FILE = Path(__file__).resolve().parent.parent / "examples" / "ssb_batch_workload.assess"
FULL_SPEEDUP_FLOOR = 3.0     # acceptance: ≥3x at the 600k rung
FULL_FLOOR_ROWS = 600_000
SMOKE_SPEEDUP_FLOOR = 1.0    # CI mode: batched must beat sequential


def load_workload() -> list:
    return extract_statements(WORKLOAD_FILE.read_text())


def run_rung(rows: int, plan: str, repetitions: int, seed: int = 7) -> dict:
    statements = load_workload()
    engine = prepare_engine(rows, seed=seed)
    engine.result_cache.enabled = False  # both arms cold, every repetition
    session = AssessSession(engine)

    # Warm dictionary encodings and key indexes once (shared engine state,
    # identical for both arms) so the timings measure execution, not
    # one-time encoding costs.
    sequential = [session.assess(text, plan=plan) for text in statements]

    sequential_times, batch_times = [], []
    batch = None
    for _ in range(repetitions):
        start = time.perf_counter()
        sequential = [session.assess(text, plan=plan) for text in statements]
        sequential_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        batch = session.execute_many(statements, plan=plan)
        batch_times.append(time.perf_counter() - start)

    identical = all(
        results_identical(ours, theirs)
        for ours, theirs in zip(batch.results, sequential)
    )
    report = batch.report.to_dict()
    sequential_s = min(sequential_times)
    batch_s = min(batch_times)
    return {
        "rows": rows,
        "plan": plan,
        "statements": len(statements),
        "repetitions": repetitions,
        "sequential_s": sequential_s,
        "batch_s": batch_s,
        "speedup": sequential_s / batch_s if batch_s > 0 else float("inf"),
        "bit_identical": identical,
        "engine_scans": report["engine_scans"],
        "report": report,
        "per_statement_ms": [1000 * seconds for seconds in batch.seconds],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched vs sequential execution of the overlapping "
        "SSB workload (cold caches)."
    )
    parser.add_argument("--rows", type=str, default="60000",
                        help="comma-separated lineorder rungs "
                        "(default: 60000)")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"))
    parser.add_argument("--repetitions", type=int, default=3,
                        help="timed repetitions per arm; min is reported "
                        "(default: 3)")
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write machine-readable results to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one small rung; the batch must beat "
                        "sequential wall-clock and scan less than once per "
                        "statement")
    args = parser.parse_args(argv)

    rungs = [int(part) for part in args.rows.split(",") if part.strip()]
    if args.smoke:
        rungs = [60_000]

    print("batch ablation — 10-statement overlapping workload, "
          "sequential vs execute_many (cold caches)")
    results, failures = [], []
    for rows in rungs:
        record = run_rung(rows, args.plan, args.repetitions)
        results.append(record)
        print(
            f"  {rows:>9,} rows: sequential {1000 * record['sequential_s']:.1f} ms "
            f"→ batch {1000 * record['batch_s']:.1f} ms "
            f"({record['speedup']:.1f}x), "
            f"engine scans {record['engine_scans']}/{record['statements']}, "
            f"fused {record['report']['fused_groups']} "
            f"({record['report']['fused_derived']} derived, "
            f"{record['report']['fused_fallbacks']} fallback), "
            f"bit-identical: {record['bit_identical']}"
        )
        if not record["bit_identical"]:
            failures.append(f"{rows} rows: batch results differ from sequential")
        if record["engine_scans"] >= record["statements"]:
            failures.append(
                f"{rows} rows: {record['engine_scans']} engine scans for "
                f"{record['statements']} statements — nothing was shared"
            )
        floor = SMOKE_SPEEDUP_FLOOR if args.smoke else (
            FULL_SPEEDUP_FLOOR if rows >= FULL_FLOOR_ROWS else None
        )
        if floor is not None and record["speedup"] < floor:
            failures.append(
                f"{rows} rows: speedup {record['speedup']:.2f}x below "
                f"the {floor}x floor"
            )

    if args.json:
        payload = {
            "benchmark": "bench_ablation_batch",
            "workload": str(WORKLOAD_FILE.name),
            "plan": args.plan,
            "rungs": results,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok: batch bit-identical, shared scans, speedup floors met")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
