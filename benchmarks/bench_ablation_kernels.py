"""Ablation — group-by factorization kernels and key encodings.

DESIGN.md calls out the engine's group-by kernel as a load-bearing design
choice: the NP/JOP/POP comparison is only meaningful if pushed queries are
genuinely set-oriented.  Two axes are measured:

* **kernel**: the production NumPy kernel vs the dict-based Python
  reference;
* **encoding**: dictionary-encoded integer keys (what the engine actually
  feeds the kernel, via ``Table.dictionary``) vs raw member strings.

On raw strings the two kernels are comparable — object-array sorting is as
slow as a Python hash loop — which is precisely why the engine encodes
through per-column dictionaries before grouping; on integer codes the
vectorised kernel wins by an order of magnitude.
"""

import numpy as np
import pytest

from repro.engine.kernels import factorize_numpy, factorize_python

N_ROWS = 200_000


def _raw_columns():
    rng = np.random.default_rng(3)
    months = np.array(
        [f"199{y}-{m:02d}" for y in range(2, 9) for m in range(1, 13)], dtype=object
    )
    brands = np.array([f"MFGR#{i:04d}" for i in range(1000)], dtype=object)
    return [
        months[rng.integers(0, len(months), N_ROWS)],
        brands[rng.integers(0, len(brands), N_ROWS)],
    ]


def _encoded_columns():
    rng = np.random.default_rng(3)
    return [
        rng.integers(0, 84, N_ROWS).astype(np.int64),
        rng.integers(0, 1000, N_ROWS).astype(np.int64),
    ]


COLUMN_BUILDERS = {"raw-object": _raw_columns, "encoded-int": _encoded_columns}
KERNELS = {"numpy": factorize_numpy, "python": factorize_python}


def _canonical(first, columns):
    """Group keys in group-id order — kernel-independent representation."""
    return [tuple(column[row] for column in columns) for row in first]


@pytest.mark.parametrize("encoding", sorted(COLUMN_BUILDERS))
def test_kernels_agree(encoding):
    columns = COLUMN_BUILDERS[encoding]()
    ids_np, count_np, first_np = factorize_numpy(columns, N_ROWS)
    ids_py, count_py, first_py = factorize_python(columns, N_ROWS)
    assert count_np == count_py
    assert _canonical(first_np, columns) == _canonical(first_py, columns)
    assert np.array_equal(ids_np, ids_py)


@pytest.mark.parametrize("encoding", sorted(COLUMN_BUILDERS))
@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_ablation_factorize(benchmark, kernel, encoding):
    columns = COLUMN_BUILDERS[encoding]()
    ids, count, _ = benchmark(KERNELS[kernel], columns, N_ROWS)
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["encoding"] = encoding
    benchmark.extra_info["groups"] = count
    assert count > 0
