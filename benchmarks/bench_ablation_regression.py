"""Ablation — prediction backend of past benchmarks.

The paper's Figure 4 identifies the regression transform as the dominant
step of the Past intention.  This ablation swaps the OLS backend for the
cheaper predictors the library ships and measures the end-to-end effect,
quantifying how much of Past's cost is attributable to the forecasting
model itself.
"""

import pytest

from benchmarks.conftest import rounds_for
from repro.algebra import PlanExecutor, build_plan

PREDICTORS = ("linearRegression", "movingAverage", "exponentialSmoothing", "naiveLast")


@pytest.mark.parametrize("method", PREDICTORS)
def test_ablation_prediction_backend(benchmark, runner, method):
    scale = runner.scales[-1]
    session = runner.session(scale)
    statement = runner.statement("Past", scale)
    statement.benchmark.method = method
    plan = build_plan(statement, session.engine, "POP")
    executor = PlanExecutor(session.engine, session.registry)

    result = benchmark.pedantic(
        executor.execute,
        args=(plan, statement),
        rounds=rounds_for(runner, scale),
        iterations=1,
    )
    benchmark.extra_info["method"] = method
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["transform_ms"] = round(
        1000 * result.timings.get("transform", 0.0), 2
    )
    assert len(result) > 0
