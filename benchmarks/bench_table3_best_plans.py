"""Table 3 — minimum execution times vs the naive plan.

Regenerates Table 3's content: for each intention and ladder rung, the
benchmarked operation is the *best feasible plan*; NP's time is measured
alongside and the paper's headline orderings are asserted — the optimized
plan never loses to NP (beyond noise), and the gap is material for Past,
where the paper reports ~2.7x.
"""

import time

import pytest

from benchmarks.conftest import rounds_for
from repro.experiments import PAPER_TABLE3
from repro.experiments.statements import INTENTIONS


def _time_plan(runner, intention, scale, plan, repetitions):
    start = time.perf_counter()
    for _ in range(repetitions):
        runner.run_once(intention, scale, plan)
    return (time.perf_counter() - start) / repetitions


@pytest.mark.parametrize("intention", INTENTIONS)
def test_table3_best_vs_naive(benchmark, runner, intention):
    scale = runner.scales[-1]  # the largest rung is where plans separate
    best_plan = runner.plans_for(intention)[-1]
    rounds = rounds_for(runner, scale)

    benchmark.extra_info["intention"] = intention
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["best_plan"] = best_plan

    benchmark.pedantic(
        runner.run_once,
        args=(intention, scale, best_plan),
        rounds=rounds,
        iterations=1,
    )

    best_seconds = _time_plan(runner, intention, scale, best_plan, rounds)
    np_seconds = _time_plan(runner, intention, scale, "NP", rounds)
    benchmark.extra_info["best_seconds"] = round(best_seconds, 4)
    benchmark.extra_info["np_seconds"] = round(np_seconds, 4)
    benchmark.extra_info["paper"] = {
        s: {"best": v[0], "np": v[1]} for s, v in PAPER_TABLE3[intention].items()
    }

    # Paper: "JOP, when applicable, outperforms NP" and "POP ... outperforms
    # JOP and NP".  Allow 20% noise; for Constant, best IS NP.
    assert best_seconds <= np_seconds * 1.2, (
        f"{intention}: best plan {best_plan} ({best_seconds:.3f}s) "
        f"lost to NP ({np_seconds:.3f}s)"
    )
    if intention == "Past":
        # the paper reports a ~2.7x gap for Past; require a clear win
        assert best_seconds < np_seconds, "Past's POP must beat NP"
