"""Bounded-memory spill-tier benchmark (PR 8): peak RSS under a budget.

Measures the acceptance numbers of the spill-to-disk partitioned
aggregation tier over the out-of-core SSB ladder:

* **bit-identity** — the same integral-measure workload through the
  unbudgeted in-RAM engine, the unbudgeted memory-mapped store, and the
  budgeted spill tier must produce byte-identical cells;
* **bounded memory** — the budgeted arm's grouping state is capped by
  the budget (runs spill to temp files), so its peak RSS stays far below
  the unbudgeted in-RAM arm's at the same rung;
* **the SF100 rung** (opt-in, ``--sf100-rows``) — a store built chunk by
  chunk with :func:`repro.datagen.ssb.build_ssb_store` (peak RAM is one
  partition, never the table) and queried end to end out of core.

Every arm runs in its own subprocess so the peak RSS (normalized to
kilobytes by ``repro.obs.rss``) is the arm's own peak, and every arm digests its result cells so
the driver can assert bit-identity.  The workload measure is
``quantity`` (integral), so the spill merge passes the float-exactness
gate and the distributive re-aggregation is provably exact.

Usage::

    PYTHONPATH=src python benchmarks/bench_spill.py --json BENCH_PR8.json
    PYTHONPATH=src python benchmarks/bench_spill.py --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time

# Mid-cardinality grouping: ~date x city cells fit comfortably in RAM
# while the per-morsel partial state comfortably outgrows a small budget.
STATEMENT = """
    with SSB by date, c_city
    assess quantity against 100000
    using ratio(quantity, 100000)
    labels {[0, 1): low, [1, inf]: high}
"""


# ----------------------------------------------------------------------
# Worker side (runs in a subprocess per arm)
# ----------------------------------------------------------------------
def _cell_value(value) -> str:
    if hasattr(value, "item"):
        value = value.item()
    return value.hex() if isinstance(value, float) else str(value)


def _digest(result) -> str:
    """A stable content hash of the result cells (order-independent)."""
    cube = result.cube
    levels = tuple(cube.group_by.levels)
    rows = []
    for row in range(len(cube)):
        coords = tuple(str(cube.coords[level][row]) for level in levels)
        values = tuple(
            _cell_value(cube.measures[name][row]) for name in cube.measures
        )
        rows.append((coords, values))
    blob = repr((levels, sorted(rows))).encode()
    return hashlib.sha256(blob).hexdigest()


def _spill_counters(engine) -> dict:
    counters = engine.metrics.snapshot()["counters"]
    return {
        key: value for key, value in counters.items()
        if key.startswith(("engine.spill.", "engine.storage."))
        or key == "engine.rows_scanned"
    }


def worker(args) -> int:
    from repro.api import AssessSession
    from repro.obs.rss import peak_rss_kb
    from repro.datagen.ssb import build_ssb_store, ssb_engine_from_catalog
    from repro.engine.persist import load_catalog

    if args.worker == "save":
        start = time.perf_counter()
        build_ssb_store(
            args.store, args.rows, seed=7, with_budget=False,
            progress=lambda message: print(f"    {message}", file=sys.stderr),
        )
        payload = {
            "mode": "save",
            "rows": args.rows,
            "save_s": time.perf_counter() - start,
            "peak_rss_kb": peak_rss_kb(),
        }
        print(json.dumps(payload))
        return 0

    if args.worker == "inram":
        # Same store, fully resident: chunked generation and the in-RAM
        # ladder draw different random streams, so the unbudgeted arm
        # loads the identical bytes rather than regenerating.
        engine = ssb_engine_from_catalog(load_catalog(args.store, mmap=False))
    else:  # mmap / spill
        engine = ssb_engine_from_catalog(load_catalog(args.store, mmap=True))
    engine.result_cache.enabled = False
    budget = args.budget if args.worker == "spill" else None
    session = AssessSession(engine, memory_budget=budget)

    samples = []
    result = None
    for _ in range(args.repetitions):
        start = time.perf_counter()
        result = session.assess(STATEMENT)
        samples.append(time.perf_counter() - start)

    payload = {
        "mode": args.worker,
        "rows": args.rows,
        "budget_bytes": budget,
        "samples_s": samples,
        "min_s": min(samples),
        "median_s": statistics.median(samples),
        "peak_rss_kb": peak_rss_kb(),
        "result_cells": len(result.cube),
        "digest": _digest(result),
        "counters": _spill_counters(engine),
    }
    print(json.dumps(payload))
    return 0


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def run_arm(mode: str, rows: int, store: str, repetitions: int,
            budget: int, morsel_rows: int = 0) -> dict:
    command = [
        sys.executable, os.path.abspath(__file__),
        "--worker", mode, "--rows", str(rows), "--store", store,
        "--repetitions", str(repetitions), "--budget", str(budget),
    ]
    env = dict(os.environ)
    env.pop("REPRO_MEMORY_BYTES", None)
    env.pop("REPRO_SPILL_BYTES", None)
    if morsel_rows:
        env["REPRO_MORSEL_ROWS"] = str(morsel_rows)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    output = subprocess.run(command, env=env, capture_output=True, text=True)
    if output.returncode != 0:
        sys.stderr.write(output.stderr)
        raise RuntimeError(f"worker arm {mode!r} failed (see stderr above)")
    return json.loads(output.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=60_000_000,
                        help="rows of the differential rung (default: "
                        "60,000,000 — SF10 of the SSB ladder)")
    parser.add_argument("--budget", type=int, default=8_000_000,
                        help="memory budget (bytes) of the spill arm "
                        "(default: 8 MB, far below the working set)")
    parser.add_argument("--sf100-rows", type=int, default=0,
                        help="opt-in second rung built fully out of core "
                        "and queried under the budget (e.g. 600,000,000 "
                        "for SF100); 0 skips it")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="timed runs per arm (default: 3)")
    parser.add_argument("--store-dir", default="",
                        help="where to write the stores (default: a "
                        "temporary directory, removed afterwards)")
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write the measurements as JSON to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny rung, correctness only")
    # worker-side flags
    parser.add_argument("--worker", choices=("save", "inram", "mmap", "spill"),
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--store", default="", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return worker(args)

    morsel_rows = 0
    if args.smoke:
        args.rows = min(args.rows, 120_000)
        args.budget = min(args.budget, 50_000)
        args.repetitions = 1
        args.sf100_rows = 0
        morsel_rows = 8_192  # several morsels even at the tiny rung

    cpus = os.cpu_count() or 1
    print(f"bench_spill: rung {args.rows:,} rows, budget "
          f"{args.budget:,} B, {cpus} CPU(s)")

    created_tmp = None
    if args.store_dir:
        store_dir = args.store_dir
        os.makedirs(store_dir, exist_ok=True)
    else:
        created_tmp = tempfile.TemporaryDirectory(prefix="bench_spill_")
        store_dir = created_tmp.name

    try:
        store = os.path.join(store_dir, f"ssb_{args.rows}")
        save = run_arm("save", args.rows, store, args.repetitions, args.budget)
        print(f"  save ({args.rows:,} rows, partitioned out-of-core): "
              f"{save['save_s']:.1f}s, peak RSS "
              f"{save['peak_rss_kb'] / 1024:.0f} MB")

        inram = run_arm("inram", args.rows, store, args.repetitions,
                        args.budget, morsel_rows)
        mmap = run_arm("mmap", args.rows, store, args.repetitions,
                       args.budget, morsel_rows)
        spill = run_arm("spill", args.rows, store, args.repetitions,
                        args.budget, morsel_rows)

        for name, arm in (("inram", inram), ("mmap", mmap),
                          ("mmap+budget", spill)):
            print(f"  {name:<12} min {arm['min_s']:.3f}s  median "
                  f"{arm['median_s']:.3f}s  peak RSS "
                  f"{arm['peak_rss_kb'] / 1024:.0f} MB")

        assert inram["digest"] == mmap["digest"] == spill["digest"], (
            "arms diverged — spilled cells are not bit-identical to the "
            "in-RAM engine"
        )
        print("  bit-identical: yes (inram, mmap, mmap+budget)")

        spilled = spill["counters"].get("engine.spill.spills", 0)
        assert spill["counters"].get("engine.spill.queries", 0) >= 1, (
            "the budget never routed a query through the spill tier"
        )
        assert spilled > 0, (
            "the spill arm never wrote a run to disk — the budget is not "
            "below the working set at this rung"
        )
        assert mmap["counters"].get("engine.spill.queries", 0) == 0, (
            "the unbudgeted mmap arm unexpectedly used the spill tier"
        )
        rss_ratio = inram["peak_rss_kb"] / max(spill["peak_rss_kb"], 1)
        print(f"  spills {spilled:,}, bytes spilled "
              f"{spill['counters'].get('engine.spill.bytes_spilled', 0):,}, "
              f"peak RSS {rss_ratio:.1f}x below the in-RAM arm")
        if not args.smoke:
            assert rss_ratio >= 2.0, (
                f"budgeted peak RSS only {rss_ratio:.1f}x below in-RAM"
            )

        sf100 = None
        if args.sf100_rows:
            big_store = os.path.join(store_dir, f"ssb_{args.sf100_rows}")
            big_save = run_arm("save", args.sf100_rows, big_store, 1,
                               args.budget)
            print(f"  save ({args.sf100_rows:,} rows): "
                  f"{big_save['save_s']:.1f}s, peak RSS "
                  f"{big_save['peak_rss_kb'] / 1024:.0f} MB")
            big_spill = run_arm("spill", args.sf100_rows, big_store, 1,
                                args.budget)
            print(f"  out-of-core rung ({args.sf100_rows:,} rows): "
                  f"{big_spill['min_s']:.1f}s, peak RSS "
                  f"{big_spill['peak_rss_kb'] / 1024:.0f} MB, "
                  f"{big_spill['result_cells']:,} cells, spills "
                  f"{big_spill['counters'].get('engine.spill.spills', 0):,}")
            sf100 = {"rows": args.sf100_rows, "save": big_save,
                     "spill": big_spill}

        if args.json:
            payload = {
                "benchmark": "spill-bounded-memory",
                "cpus": cpus,
                "budget_bytes": args.budget,
                "repetitions": args.repetitions,
                "statement": " ".join(STATEMENT.split()),
                "rung": {
                    "rows": args.rows,
                    "save": save,
                    "inram": inram,
                    "mmap": mmap,
                    "spill": spill,
                    "rss_ratio": rss_ratio,
                },
                "sf100_rung": sf100,
                "bit_identical": True,
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"  wrote {args.json}")
    finally:
        if created_tmp is not None:
            created_tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
