"""Telemetry overhead — a session without telemetry must be (nearly) free.

The persistent query log (PR 9) is opt-in: a session constructed
without ``telemetry=`` (and without ``REPRO_TELEMETRY_DIR``) pays one
``is None`` check per statement.  This benchmark pins that promise on
the 10-statement overlapping workload
``examples/ssb_batch_workload.assess``, sequential and batched:

* **stripped** — ``AssessSession.assess`` monkeypatched back to the
  pre-telemetry body (plan + execute, no hook), the code with the
  record hook gone;
* **off** — the shipped session with telemetry disabled (the arm the
  2% gate holds against stripped);
* **enabled** — telemetry writing the query log + time-series hub
  (reported honestly, not gated: serializing a record has a real cost
  and is only paid when requested);
* **profiled** — telemetry plus the 5 ms sampling profiler (the most
  expensive opt-in configuration).

Arms are interleaved and min-of-N wall times are compared, so the
margin absorbs scheduler noise.  Results go to ``BENCH_PR9.json``.

Usage::

    python benchmarks/bench_telemetry_overhead.py                  # 60k rung
    python benchmarks/bench_telemetry_overhead.py --rows 600000 --json BENCH_PR9.json
    python benchmarks/bench_telemetry_overhead.py --smoke          # CI mode
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro.analysis import extract_statements
from repro.api import AssessSession
from repro.experiments.statements import prepare_engine
from repro.obs.telemetry import Telemetry

WORKLOAD_FILE = (
    Path(__file__).resolve().parent.parent
    / "examples" / "ssb_batch_workload.assess"
)
OVERHEAD_CEILING = 0.02      # acceptance: telemetry-off overhead < 2%
SMOKE_CEILING = 0.10         # CI mode: small rung, noisy boxes
PROFILE_INTERVAL = 0.005


def load_workload() -> list:
    return extract_statements(WORKLOAD_FILE.read_text())


@contextmanager
def stripped_hook():
    """Monkeypatch ``assess`` back to the pre-telemetry body."""
    original = AssessSession.assess

    def assess(self, statement, plan="best"):
        resolved = self._resolve(statement)
        return self._executor.execute(self.plan(resolved, plan), resolved)

    AssessSession.assess = assess
    try:
        yield
    finally:
        AssessSession.assess = original


def run_arm(session: AssessSession, statements, plan: str) -> float:
    """One pass of the workload (sequential then batched), cold caches."""
    session.clear_cache()
    start = time.perf_counter()
    for text in statements:
        session.assess(text, plan=plan)
    session.clear_cache()
    session.execute_many(statements, plan=plan)
    return time.perf_counter() - start


def run_rung(rows: int, plan: str, repetitions: int, directory: Path,
             seed: int = 7) -> dict:
    statements = load_workload()
    engine = prepare_engine(rows, seed=seed)
    session = AssessSession(engine)
    recorded = AssessSession(engine, telemetry=Telemetry(directory / "log"))
    profiled = AssessSession(
        engine,
        telemetry=Telemetry(
            directory / "profiled", profile_interval=PROFILE_INTERVAL
        ),
    )

    # Warm dictionary encodings and key indexes once; all arms then see
    # identical engine state.
    run_arm(session, statements, plan)

    times = {"stripped": [], "off": [], "enabled": [], "profiled": []}
    for _ in range(repetitions):
        # Interleaved so drift (thermal, page cache) hits all arms alike.
        with stripped_hook():
            times["stripped"].append(run_arm(session, statements, plan))
        times["off"].append(run_arm(session, statements, plan))
        times["enabled"].append(run_arm(recorded, statements, plan))
        times["profiled"].append(run_arm(profiled, statements, plan))
    recorded.telemetry.close()
    profiled.telemetry.close()

    stripped_s = min(times["stripped"])
    record = {
        "rows": rows,
        "plan": plan,
        "statements": len(statements),
        "repetitions": repetitions,
        "stripped_s": stripped_s,
    }
    for arm in ("off", "enabled", "profiled"):
        record[f"{arm}_s"] = min(times[arm])
        record[f"{arm}_overhead"] = min(times[arm]) / stripped_s - 1.0
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Query-log/telemetry overhead on the 10-statement SSB "
        "workload (sequential + batched, cold caches)."
    )
    parser.add_argument("--rows", type=str, default="60000",
                        help="comma-separated lineorder rungs "
                        "(default: 60000)")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"))
    parser.add_argument("--repetitions", type=int, default=5,
                        help="interleaved repetitions per arm; min is "
                        "reported (default: 5)")
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write machine-readable results to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: one small rung, relaxed ceiling "
                        f"({100 * SMOKE_CEILING:.0f}%%) for noisy runners")
    args = parser.parse_args(argv)

    rungs = [int(part) for part in args.rows.split(",") if part.strip()]
    if args.smoke:
        # One small rung; passes are a few ms there, so extra
        # repetitions (min-of-N) are what keeps the gate un-flaky.
        rungs = [60_000]
        args.repetitions = max(args.repetitions, 8)
    ceiling = SMOKE_CEILING if args.smoke else OVERHEAD_CEILING

    print("telemetry overhead — 10-statement workload, "
          "off vs stripped (gated), enabled/profiled for context")
    results, failures = [], []
    scratch = Path(tempfile.mkdtemp(prefix="bench-telemetry-"))
    try:
        for rows in rungs:
            record = run_rung(
                rows, args.plan, args.repetitions, scratch / str(rows)
            )
            overhead = record["off_overhead"]
            record["ceiling"] = ceiling
            record["within_ceiling"] = overhead < ceiling
            results.append(record)
            print(
                f"  {rows:>9,} rows: stripped "
                f"{1000 * record['stripped_s']:.1f} ms, "
                f"off {1000 * record['off_s']:.1f} ms "
                f"({100 * overhead:+.2f}%), "
                f"enabled {1000 * record['enabled_s']:.1f} ms "
                f"({100 * record['enabled_overhead']:+.1f}%), "
                f"profiled {1000 * record['profiled_s']:.1f} ms "
                f"({100 * record['profiled_overhead']:+.1f}%), "
                f"ceiling {100 * ceiling:.0f}%"
            )
            if not record["within_ceiling"]:
                failures.append(
                    f"{rows} rows: telemetry-off overhead "
                    f"{100 * overhead:.2f}% exceeds the "
                    f"{100 * ceiling:.0f}% ceiling"
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if args.json:
        payload = {
            "benchmark": "bench_telemetry_overhead",
            "workload": str(WORKLOAD_FILE.name),
            "plan": args.plan,
            "ceiling": ceiling,
            "rungs": results,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok: telemetry-off overhead within the ceiling")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
