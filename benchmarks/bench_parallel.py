"""Morsel-parallel execution benchmark (PR 5): serial vs parallel arms.

Runs the fused SSB batch workload (the ten statements of
``examples/ssb_batch_workload.assess``) three ways on one engine scale:

* **serial** — parallelism off entirely (the seed baseline);
* **disabled** — a parallel config installed but ineligible for every
  scan (measures the pure overhead of having the feature off: the
  acceptance bar is < 2%);
* **parallel** — morsel-driven execution at ``--degree`` workers.

Results (min/median seconds per arm, speedup, overhead, and the host's
CPU count — speedups are physically bounded by it) are printed and, with
``--json``, written to ``BENCH_PR5.json``.  ``--smoke`` shrinks the
workload for CI: it only verifies the three arms run and stay
bit-identical, not the timings.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --json BENCH_PR5.json
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

from repro.analysis import extract_statements
from repro.api import AssessSession
from repro.batch import results_identical
from repro.experiments.statements import prepare_engine
from repro.parallel import ParallelConfig

WORKLOAD = os.path.join(
    os.path.dirname(__file__), "..", "examples", "ssb_batch_workload.assess"
)


def load_statements():
    with open(WORKLOAD) as handle:
        return extract_statements(handle.read())


def build_session(rows: int, mode: str, degree: int, morsel_rows: int):
    session = AssessSession(prepare_engine(rows))
    session.engine.result_cache.enabled = False
    if mode == "parallel":
        session.set_parallelism(degree, morsel_rows=morsel_rows)
    elif mode == "disabled":
        # Config present but ineligible for every scan: times the cost
        # of the feature's guard checks when it never fires.
        session.engine.executor.parallel = ParallelConfig(
            degree=degree, morsel_rows=morsel_rows, min_rows=2**62
        )
    return session


def time_arm(session, statements, repetitions: int, warmup: int):
    for _ in range(warmup):
        session.execute_many(statements)
    samples = []
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = session.execute_many(statements)
        samples.append(time.perf_counter() - start)
    return samples, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=600_000,
                        help="lineorder rows (default: 600000)")
    parser.add_argument("--degree", type=int, default=4,
                        help="parallelism degree of the parallel arm")
    parser.add_argument("--morsel-rows", type=int, default=65_536,
                        help="rows per morsel (default: 65536)")
    parser.add_argument("--repetitions", type=int, default=5,
                        help="timed runs per arm (default: 5)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed runs per arm (default: 1)")
    parser.add_argument("--json", metavar="OUT", default="",
                        help="write the measurements as JSON to OUT")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: tiny workload, correctness only")
    args = parser.parse_args(argv)

    if args.smoke:
        args.rows = min(args.rows, 60_000)
        args.repetitions = 1
        args.warmup = 0
        args.morsel_rows = min(args.morsel_rows, 8192)

    statements = load_statements()
    cpus = os.cpu_count() or 1
    print(f"bench_parallel: {args.rows:,} rows, {len(statements)} statements, "
          f"degree {args.degree}, morsel {args.morsel_rows:,} rows, "
          f"{cpus} CPU(s)")

    arms = {}
    results = {}
    for mode in ("serial", "disabled", "parallel"):
        session = build_session(args.rows, mode, args.degree, args.morsel_rows)
        samples, result = time_arm(
            session, statements, args.repetitions, args.warmup
        )
        arms[mode] = samples
        results[mode] = result
        metrics = session.engine.metrics
        print(f"  {mode:<9} min {min(samples):.3f}s  "
              f"median {statistics.median(samples):.3f}s  "
              f"(parallel queries: {metrics.get('engine.parallel.queries')}, "
              f"morsels: {metrics.get('engine.parallel.morsels')})")
        if mode == "parallel" and not args.smoke:
            assert metrics.get("engine.parallel.queries") > 0, (
                "the parallel arm never parallelized"
            )
        if session.engine.parallel is not None:
            session.engine.parallel.close()

    # Bit-identity across all three arms, statement by statement.
    for mode in ("disabled", "parallel"):
        for ours, theirs in zip(results[mode].results, results["serial"].results):
            assert results_identical(ours, theirs), (
                f"{mode} arm diverged from serial"
            )
    print("  bit-identical: yes (all arms, all statements)")

    serial = min(arms["serial"])
    speedup = serial / min(arms["parallel"])
    overhead = (min(arms["disabled"]) - serial) / serial
    print(f"  speedup (parallel vs serial): {speedup:.2f}x")
    print(f"  disabled-parallelism overhead: {100 * overhead:+.2f}%")
    if cpus < 2:
        print("  note: single-CPU host — thread-parallel speedup is "
              "physically capped at ~1x here; re-run on a multicore "
              "machine for the real numbers")

    if args.json:
        payload = {
            "benchmark": "parallel-fused-workload",
            "rows": args.rows,
            "statements": len(statements),
            "degree": args.degree,
            "morsel_rows": args.morsel_rows,
            "repetitions": args.repetitions,
            "cpus": cpus,
            "serial_s": {"min": min(arms["serial"]),
                         "median": statistics.median(arms["serial"])},
            "disabled_s": {"min": min(arms["disabled"]),
                           "median": statistics.median(arms["disabled"])},
            "parallel_s": {"min": min(arms["parallel"]),
                           "median": statistics.median(arms["parallel"])},
            "speedup": speedup,
            "disabled_overhead_pct": 100 * overhead,
            "bit_identical": True,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
