"""Shared benchmark fixtures: one experiment runner per pytest session.

The ladder defaults to a laptop-friendly 30k/300k/3M lineorder rows
(preserving the paper's 1:10:100 ratios); override with::

    REPRO_LADDER="60000,600000,6000000" pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.runner import ladder_from_env

BENCH_DEFAULT_LADDER = {"SSB1": 30_000, "SSB10": 300_000, "SSB100": 3_000_000}


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    if os.environ.get("REPRO_LADDER", "").strip():
        ladder = ladder_from_env()
    else:
        ladder = dict(BENCH_DEFAULT_LADDER)
    return ExperimentRunner(ladder)


def rounds_for(runner: ExperimentRunner, scale: str) -> int:
    """Fewer timing rounds at the big rungs to keep total runtime sane."""
    rows = runner.ladder[scale]
    if rows <= 100_000:
        return 5  # the paper's 5-run averaging
    if rows <= 1_000_000:
        return 3
    return 1
