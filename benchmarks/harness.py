"""Experiment harness: regenerate every table and figure of the paper.

Usage::

    python benchmarks/harness.py all
    python benchmarks/harness.py table1 table2
    REPRO_LADDER="60000,600000,6000000" python benchmarks/harness.py fig3 fig4
    python benchmarks/harness.py all --repetitions 3

Prints, for each experiment, our measured values side by side with the
numbers printed in the paper (where the paper gives numbers) and verdicts
on the paper's qualitative claims.  The default ladder is 60k/600k/6M
lineorder rows — 1:100 of the paper's SSB ladder with the same 1:10:100
ratios (see DESIGN.md §2).

``--json OUT`` additionally writes the raw measurements of every selected
experiment (the data behind the rendered tables) as machine-readable
JSON, for regression tracking and plotting.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import (
    ExperimentRunner,
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
)
from repro.experiments.statements import INTENTIONS, statement_text

# fig3 runs before table3 so the latter reuses fig3's measurements
EXPERIMENTS = ("statements", "table1", "table2", "fig3", "table3", "fig4", "workload")


def run_statements(runner: ExperimentRunner, repetitions: int, warmup: int):
    lines = ["The four reference intentions (Section 6)"]
    for intention in INTENTIONS:
        lines.append(f"\n--- {intention} ---")
        lines.append(statement_text(intention))
    data = {intention: statement_text(intention) for intention in INTENTIONS}
    return "\n".join(lines), data


def run_table1(runner: ExperimentRunner, repetitions: int, warmup: int):
    data = runner.table1()
    return render_table1(data), data


def run_table2(runner: ExperimentRunner, repetitions: int, warmup: int):
    data = runner.table2()
    return render_table2(data, runner.ladder), data


def run_fig3(runner: ExperimentRunner, repetitions: int, warmup: int):
    data = runner.fig3(repetitions=repetitions, warmup=warmup)
    run_fig3.cache = data
    return render_fig3(data, runner.ladder), data


def run_table3(runner: ExperimentRunner, repetitions: int, warmup: int):
    cached = getattr(run_fig3, "cache", None)
    data = runner.table3(cached) if cached else runner.table3(
        runner.fig3(repetitions=repetitions, warmup=warmup)
    )
    json_data = {
        intention: {
            scale: {"best_s": best, "np_s": np_time}
            for scale, (best, np_time) in per_scale.items()
        }
        for intention, per_scale in data.items()
    }
    return render_table3(data, runner.ladder), json_data


def run_fig4(runner: ExperimentRunner, repetitions: int, warmup: int):
    data = runner.fig4(repetitions=repetitions, warmup=warmup)
    return render_fig4(data, runner.ladder), data


def run_workload(runner: ExperimentRunner, repetitions: int, warmup: int):
    """Batched (execute_many) vs sequential reference workload per scale."""
    data = {
        scale: runner.workload(scale, repetitions=repetitions, warmup=warmup)
        for scale in runner.scales
    }
    lines = [
        "Batched workload (the four intentions through execute_many; "
        "min/median of repeated runs)",
        f"{'scale':<8} {'sequential':>22} {'batched':>22} {'speedup':>8} "
        f"{'scans':>6} {'CSE':>4}",
    ]
    for scale, row in data.items():
        report = row["report"]
        sequential = (
            f"{row['sequential_min_s']:.3f}s/{row['sequential_median_s']:.3f}s"
        )
        batched = f"{row['batch_min_s']:.3f}s/{row['batch_median_s']:.3f}s"
        lines.append(
            f"{scale:<8} {sequential:>22} {batched:>22} "
            f"{row['speedup']:>7.2f}x "
            f"{report['engine_scans']:>6} {report['shared_hits']:>4}"
        )
    lines.append("(columns: min/median seconds per arm; engine scans and "
                 "CSE hits from the batch's sharing report)")
    return "\n".join(lines), data


RUNNERS = {
    "statements": run_statements,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "workload": run_workload,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"which to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--repetitions", type=int, default=5,
        help="timed runs per measurement (paper: 5)",
    )
    parser.add_argument(
        "--repeat", type=int, default=0,
        help="overrides --repetitions when set (shorthand)",
    )
    parser.add_argument(
        "--warmup", type=int, default=0,
        help="untimed runs before each measurement",
    )
    parser.add_argument(
        "--ladder", type=str, default="",
        help="comma-separated lineorder row counts (overrides REPRO_LADDER)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default="",
        help="also write the raw measurements as JSON to OUT",
    )
    parser.add_argument(
        "--parallelism", type=int, default=None, metavar="N",
        help="worker threads for morsel-driven fact scans (default: the "
        "REPRO_PARALLELISM environment variable, else serial; results "
        "are bit-identical to serial execution)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="run with the execution tracer installed and print a span "
        "summary per experiment (timings include tracing overhead; see "
        "docs/observability.md)",
    )
    args = parser.parse_args(argv)
    repetitions = args.repeat if args.repeat > 0 else args.repetitions

    selected = args.experiments or ["all"]
    if "all" in selected:
        selected = list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    ladder = None
    if args.ladder.strip():
        from repro.experiments.paper_reference import SCALES

        rows = [int(part) for part in args.ladder.split(",") if part.strip()]
        ladder = {name: count for name, count in zip(SCALES, rows)}
    runner = ExperimentRunner(ladder, parallelism=args.parallelism)

    print("repro harness — 'Assess Queries for Interactive Analysis of Data Cubes'")
    print(f"ladder: {', '.join(f'{k}={v:,} rows' for k, v in runner.ladder.items())} "
          f"(paper: SSB1=6,000,000 ... SSB100=600,000,000)")
    collected = {}
    for name in EXPERIMENTS:
        if name not in selected:
            continue
        start = time.perf_counter()
        if args.trace:
            from repro.obs import render_span_summary, summarize_spans, tracing

            with tracing() as tracer:
                text, data = RUNNERS[name](runner, repetitions, args.warmup)
            summary = summarize_spans(tracer)
        else:
            text, data = RUNNERS[name](runner, repetitions, args.warmup)
            summary = None
        elapsed = time.perf_counter() - start
        collected[name] = {"seconds": elapsed, "data": data}
        if summary is not None:
            collected[name]["trace_summary"] = summary
        print("\n" + "=" * 78)
        print(text)
        if summary is not None:
            print(f"\ntrace summary ({name}):")
            print(render_span_summary(summary))
        print(f"[{name} regenerated in {elapsed:.1f}s]")
    if args.json:
        from repro.obs.rss import peak_rss_kb as _peak_rss_kb

        # The harness's own peak, so the figure covers generation +
        # every selected experiment (units normalized per platform).
        peak_rss_kb = _peak_rss_kb()
        payload = {
            "ladder": runner.ladder,
            "repetitions": repetitions,
            "warmup": args.warmup,
            "peak_rss_kb": peak_rss_kb,
            "experiments": collected,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
