"""Table 2 — target cube cardinalities per intention and scale.

Regenerates Table 2: for each intention, the benchmarked operation is the
target-cube get at each ladder rung; the resulting ``|C|`` values land in
``extra_info`` and the cross-scale growth property (cardinality scales with
the cube, the basis of the paper's linear-scaling claim) is asserted.
"""

import pytest

from repro.experiments import PAPER_TABLE2
from repro.experiments.statements import INTENTIONS


@pytest.mark.parametrize("intention", INTENTIONS)
def test_table2_target_cardinality(benchmark, runner, intention):
    smallest = runner.scales[0]
    cardinality = benchmark(runner.target_cardinality, intention, smallest)

    per_scale = {smallest: cardinality}
    for scale in runner.scales[1:]:
        per_scale[scale] = runner.target_cardinality(intention, scale)

    benchmark.extra_info["intention"] = intention
    benchmark.extra_info["measured"] = per_scale
    benchmark.extra_info["paper"] = PAPER_TABLE2[intention]

    assert cardinality > 0
    scales = list(runner.scales)
    for previous, current in zip(scales, scales[1:]):
        assert per_scale[current] > per_scale[previous], (
            f"{intention}: |C| must grow with the cube "
            f"({previous}={per_scale[previous]}, {current}={per_scale[current]})"
        )

    # Past must have by far the smallest target (one time slice), Constant
    # the largest (finest group-by) — the ordering Table 2 shows.
    all_cards = {
        i: runner.target_cardinality(i, smallest) for i in INTENTIONS
    }
    assert all_cards["Past"] == min(all_cards.values())
    assert all_cards["Constant"] == max(all_cards.values())
