"""Ablation — materialized views on/off.

The paper's setup created materialized views on the Oracle star "to improve
performances".  This ablation quantifies what view routing buys our engine:
the Sibling intention's gets are answered either from the lineorder fact
table or from a view pre-aggregated at exactly the needed granularity.
"""

import pytest

from benchmarks.conftest import rounds_for


@pytest.fixture(scope="module")
def view_scale(runner):
    """Materialize the Sibling granularity on the mid ladder rung."""
    scale = runner.scales[min(1, len(runner.scales) - 1)]
    engine = runner.session(scale).engine
    view = engine.materialize("SSB", ["part", "s_region"], name="mv_ablation")
    engine.use_materialized_views = False  # each case toggles explicitly
    yield scale
    engine.use_materialized_views = True
    engine.drop_view("mv_ablation")


@pytest.mark.parametrize("views", [False, True], ids=["views-off", "views-on"])
def test_ablation_materialized_views(benchmark, runner, view_scale, views):
    engine = runner.session(view_scale).engine
    engine.use_materialized_views = views
    try:
        runner.run_once("Sibling", view_scale, "POP")  # warm dictionaries
        result = benchmark.pedantic(
            runner.run_once,
            args=("Sibling", view_scale, "POP"),
            rounds=rounds_for(runner, view_scale),
            iterations=1,
        )
    finally:
        engine.use_materialized_views = False
    benchmark.extra_info["views"] = views
    benchmark.extra_info["scale"] = view_scale
    assert len(result) > 0
