#!/usr/bin/env python
"""Validate a persistent query-log directory against the record schema.

Walks every ``queries-*.jsonl`` segment of a telemetry directory (the
one sessions write when ``REPRO_TELEMETRY_DIR`` is set) and checks each
record against the schema-v1 contract in :mod:`repro.obs.qlog`: version
marker, required fields, field types, non-negative phase timings,
integer counters, and the ok/error status invariants.  Any line that is
not valid JSON is itself a violation here — the CI job must fail on a
torn or truncated record even though readers skip them by default.

Exit 1 on the first directory with violations, so the CI
telemetry-smoke job fails when the record schema drifts silently.

Usage::

    REPRO_TELEMETRY_DIR=/tmp/telemetry python -m repro.cli ...
    python tools/check_qlog_schema.py /tmp/telemetry
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs.qlog import (  # noqa: E402
    SEGMENT_PREFIX,
    SEGMENT_SUFFIX,
    QueryLogError,
    validate_record,
)


def check_directory(directory):
    """Every schema violation in a telemetry directory, as strings."""
    problems = []
    segments = sorted(
        name for name in os.listdir(directory)
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)
    )
    if not segments:
        problems.append(f"{directory}: no query-log segments")
    records = 0
    for segment in segments:
        path = os.path.join(directory, segment)
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                where = f"{segment}:{number}"
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    problems.append(f"{where}: not JSON ({exc})")
                    continue
                try:
                    validate_record(record, where)
                except QueryLogError as exc:
                    problems.append(str(exc))
                records += 1
    if segments and not records:
        problems.append(f"{directory}: segments exist but hold no records")
    return problems, records


def main(argv):
    if not argv:
        argv = [os.environ.get("REPRO_TELEMETRY_DIR", "")]
    if not argv[0]:
        print("usage: check_qlog_schema.py TELEMETRY_DIR", file=sys.stderr)
        return 2
    failed = False
    for directory in argv:
        if not os.path.isdir(directory):
            print(f"{directory}: not a directory", file=sys.stderr)
            return 2
        problems, records = check_directory(directory)
        for problem in problems:
            print(problem)
        status = "FAIL" if problems else "OK"
        print(
            f"check-qlog-schema: {status} ({directory}: {records} record(s), "
            f"{len(problems)} violation(s))",
            file=sys.stderr,
        )
        failed = failed or bool(problems)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
