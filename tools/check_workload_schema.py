#!/usr/bin/env python
"""Validate the JSON document emitted by ``repro lint --workload --format=json``.

Reads the document from stdin (or a file argument) and checks the stable
schema contract that editor/CI integrations rely on: top-level keys, the
schema version, and the required keys of every statement, derivation,
fusion, exactness entry, bound, and diagnostic.  Exit 1 on any drift, so
the CI workload-analysis job fails when the schema changes silently.

Usage::

    python -m repro.cli lint --workload --format=json examples/ \
        | python tools/check_workload_schema.py
"""

import json
import sys

SCHEMA_VERSION = 1

STATEMENT_KEYS = {
    "index", "kind", "statement", "cube", "group_by", "measures",
    "plan", "composite", "parallel_safe", "diagnostics",
}
DERIVATION_KEYS = {"source", "target", "kind", "reason"}
FUSION_KEYS = {"statements", "scan_predicates", "key_space", "verdict",
               "member_safety"}
EXACTNESS_KEYS = {"cube", "measure", "op", "verdict", "detail"}
BOUND_KEYS = {"index", "cells", "cost", "admission_warning"}
DIAGNOSTIC_KEYS = {"code", "severity", "message", "span", "hint", "source"}
SEVERITIES = {"error", "warning", "info"}

errors = []


def need(mapping, keys, where):
    missing = keys - set(mapping)
    if missing:
        errors.append(f"{where}: missing keys {sorted(missing)}")


def check_workload(workload, where):
    need(
        workload,
        {"workload_schema_version", "origin", "statements", "derivations",
         "fusions", "exactness", "bounds", "summary"},
        where,
    )
    if workload.get("workload_schema_version") != SCHEMA_VERSION:
        errors.append(
            f"{where}: workload_schema_version "
            f"{workload.get('workload_schema_version')!r} != {SCHEMA_VERSION}"
        )
    for i, statement in enumerate(workload.get("statements", [])):
        need(statement, STATEMENT_KEYS, f"{where}.statements[{i}]")
        for j, diagnostic in enumerate(statement.get("diagnostics", [])):
            spot = f"{where}.statements[{i}].diagnostics[{j}]"
            need(diagnostic, DIAGNOSTIC_KEYS, spot)
            if diagnostic.get("severity") not in SEVERITIES:
                errors.append(
                    f"{spot}: bad severity {diagnostic.get('severity')!r}"
                )
            code = diagnostic.get("code", "")
            if not (code.startswith("ASSESS") and code[6:].isdigit()):
                errors.append(f"{spot}: bad code {code!r}")
    for i, edge in enumerate(workload.get("derivations", [])):
        need(edge, DERIVATION_KEYS, f"{where}.derivations[{i}]")
    for i, fusion in enumerate(workload.get("fusions", [])):
        need(fusion, FUSION_KEYS, f"{where}.fusions[{i}]")
    for i, entry in enumerate(workload.get("exactness", [])):
        need(entry, EXACTNESS_KEYS, f"{where}.exactness[{i}]")
    for i, bound in enumerate(workload.get("bounds", [])):
        need(bound, BOUND_KEYS, f"{where}.bounds[{i}]")


def main(argv):
    raw = open(argv[0]).read() if argv else sys.stdin.read()
    try:
        document = json.loads(raw)
    except ValueError as exc:
        print(f"check-workload-schema: not JSON: {exc}", file=sys.stderr)
        return 1
    need(document, {"schema_version", "mode"}, "$")
    if document.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"$: schema_version {document.get('schema_version')!r} "
            f"!= {SCHEMA_VERSION}"
        )
    mode = document.get("mode")
    if mode == "workload":
        need(document, {"workloads"}, "$")
        workloads = document.get("workloads", [])
        if not workloads:
            errors.append("$: empty workloads list")
        for i, workload in enumerate(workloads):
            check_workload(workload, f"$.workloads[{i}]")
    elif mode == "statement":
        need(document, {"results"}, "$")
    else:
        errors.append(f"$: bad mode {mode!r}")
    for message in errors:
        print(message)
    print(
        f"check-workload-schema: {'FAIL' if errors else 'OK'} "
        f"({len(errors)} error(s))",
        file=sys.stderr,
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
