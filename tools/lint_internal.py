#!/usr/bin/env python
"""Internal codebase lint: AST checks for the concurrency-sensitive layers.

Enforced over ``src/repro/engine``, ``src/repro/cache`` and
``src/repro/parallel`` (plus ``src/repro/obs`` where the tracer lives):

* **span discipline** — every ``*.span(...)`` call must be the context
  expression of a ``with`` item, so the span is always closed on the way
  out, even on exceptions.  A bare or assigned ``tracer.span(...)`` opens
  a span that nothing guarantees to close, which corrupts the span stack
  and the Chrome-trace export.
* **lock discipline** — no bare ``.acquire()`` / ``.release()`` on a
  lock-named attribute or variable (``*lock*``).  Locks must be held via
  ``with``, which pairs release with acquisition on every exit path.

Exit status is 1 iff any violation is found (for CI).

Usage::

    python tools/lint_internal.py [paths...]
"""

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = [
    REPO_ROOT / "src" / "repro" / "engine",
    REPO_ROOT / "src" / "repro" / "cache",
    REPO_ROOT / "src" / "repro" / "parallel",
    REPO_ROOT / "src" / "repro" / "obs",
]


def _is_lock_named(node):
    """Does the expression look like a lock (``self._lock``, ``lock``, ...)?"""
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    return False


class InternalChecker(ast.NodeVisitor):
    def __init__(self, path):
        self.path = path
        self.findings = []
        self._with_contexts = set()

    def check(self, tree):
        # First pass: remember every call used as a with-item context
        # expression (those are the blessed span/lock call sites).
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    self._with_contexts.add(id(item.context_expr))
        self.visit(tree)
        return self.findings

    def _report(self, node, message):
        self.findings.append((self.path, node.lineno, message))

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "span" and id(node) not in self._with_contexts:
                self._report(
                    node,
                    "span() result must be used as a 'with' context "
                    "expression so the span is always closed",
                )
            if func.attr in ("acquire", "release") and _is_lock_named(func.value):
                self._report(
                    node,
                    f"bare .{func.attr}() on a lock; hold locks with "
                    "'with <lock>:' so release is exception-safe",
                )
        self.generic_visit(node)


def lint_file(path):
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    return InternalChecker(path).check(tree)


def main(argv):
    roots = [Path(arg) for arg in argv] or DEFAULT_PATHS
    files = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
        else:
            print(f"lint-internal: not a python file or directory: {root}",
                  file=sys.stderr)
            return 2
    findings = []
    for path in files:
        findings.extend(lint_file(path))
    for path, line, message in findings:
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        print(f"{shown}:{line}: {message}")
    print(
        f"lint-internal: {len(files)} files checked, "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
