#!/usr/bin/env python
"""Validate server response documents against the schema-v1 contract.

Two modes:

* **Document mode** (default): read one JSON response document from
  stdin (or a file argument) and validate it against the endpoint named
  by ``--endpoint`` — ``query``, ``batch``, ``explain``, ``health``,
  ``stats``, or ``error``.
* **Live mode** (``--live``): stand up an in-process
  :class:`repro.server.ReproServer` over a small demo tenant, hit every
  endpoint — success *and* error paths (bad JSON, unknown tenant, lint
  failure, wrong method) — and validate each response body.  The CI
  server-smoke job runs this; exit 1 on the first violation so schema
  drift can't land silently.

The validators are plain functions (``validate_query_document`` etc.)
returning a list of violation strings, so the contract suite in
``tests/test_server.py`` imports and reuses them.

Usage::

    curl -s localhost:8787/v1/health | python tools/check_server_schema.py --endpoint health
    python tools/check_server_schema.py --live
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.server.wire import SCHEMA_VERSION  # noqa: E402

ERROR_CODES = {
    "bad_json", "bad_request", "unknown_tenant", "lint_failed",
    "overloaded", "deadline_exceeded", "shutting_down",
    "method_not_allowed", "not_found", "payload_too_large", "internal",
}
SEVERITIES = {"error", "warning", "hint"}
PLAN_NAMES = {"NP", "JOP", "POP"}


def _type_name(value):
    return type(value).__name__


def _check(violations, condition, message):
    if not condition:
        violations.append(message)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_version(violations, document, where):
    _check(
        violations,
        document.get("schema_version") == SCHEMA_VERSION,
        f"{where}: schema_version must be {SCHEMA_VERSION}, "
        f"got {document.get('schema_version')!r}",
    )


def validate_result_body(document, where="result"):
    """The serialized assess result shared by query and batch items."""
    violations = []
    if not isinstance(document, dict):
        return [f"{where}: must be an object, got {_type_name(document)}"]
    for key in ("plan", "levels", "measure", "rows", "cells",
                "label_counts", "timings"):
        _check(violations, key in document, f"{where}: missing key {key!r}")
    if violations:
        return violations
    _check(violations, document["plan"] in PLAN_NAMES,
           f"{where}: plan must be one of {sorted(PLAN_NAMES)}, "
           f"got {document['plan']!r}")
    levels = document["levels"]
    _check(violations,
           isinstance(levels, list)
           and all(isinstance(level, str) for level in levels),
           f"{where}: levels must be an array of strings")
    cells = document["cells"]
    _check(violations, isinstance(cells, list),
           f"{where}: cells must be an array")
    _check(violations, document["rows"] == len(cells),
           f"{where}: rows ({document['rows']!r}) != len(cells) ({len(cells)})")
    if isinstance(cells, list) and isinstance(levels, list):
        for index, cell in enumerate(cells):
            cw = f"{where}.cells[{index}]"
            if not isinstance(cell, dict):
                violations.append(f"{cw}: must be an object")
                continue
            for key in ("coordinate", "value", "benchmark",
                        "comparison", "label"):
                _check(violations, key in cell, f"{cw}: missing key {key!r}")
            coordinate = cell.get("coordinate")
            if isinstance(coordinate, dict):
                _check(violations, sorted(coordinate) == sorted(levels),
                       f"{cw}: coordinate keys {sorted(coordinate)} != "
                       f"levels {sorted(levels)}")
            else:
                violations.append(f"{cw}: coordinate must be an object")
            for key in ("value", "benchmark", "comparison"):
                member = cell.get(key)
                _check(violations, member is None or _is_number(member),
                       f"{cw}: {key} must be a number or null")
            label = cell.get("label")
            _check(violations, label is None or isinstance(label, str),
                   f"{cw}: label must be a string or null")
    counts = document["label_counts"]
    if isinstance(counts, dict):
        _check(violations,
               all(isinstance(count, int) and count >= 0
                   for count in counts.values()),
               f"{where}: label_counts values must be non-negative ints")
        if isinstance(cells, list) and not violations:
            _check(violations, sum(counts.values()) == len(cells),
                   f"{where}: label_counts sum ({sum(counts.values())}) != "
                   f"len(cells) ({len(cells)})")
    else:
        violations.append(f"{where}: label_counts must be an object")
    timings = document["timings"]
    if isinstance(timings, dict):
        _check(violations,
               all(_is_number(seconds) and seconds >= 0
                   for seconds in timings.values()),
               f"{where}: timings values must be non-negative numbers")
    else:
        violations.append(f"{where}: timings must be an object")
    return violations


def validate_query_document(document):
    """The ``POST /v1/query`` 200 body."""
    violations = []
    if not isinstance(document, dict):
        return [f"query: must be an object, got {_type_name(document)}"]
    _check_version(violations, document, "query")
    _check(violations, isinstance(document.get("tenant"), str),
           "query: tenant must be a string")
    elapsed = document.get("elapsed_s")
    _check(violations, _is_number(elapsed) and elapsed >= 0,
           "query: elapsed_s must be a non-negative number")
    body = {k: v for k, v in document.items()
            if k not in ("schema_version", "tenant", "elapsed_s")}
    violations.extend(validate_result_body(body, where="query"))
    return violations


def validate_batch_document(document):
    """The ``POST /v1/batch`` 200 body."""
    violations = []
    if not isinstance(document, dict):
        return [f"batch: must be an object, got {_type_name(document)}"]
    _check_version(violations, document, "batch")
    _check(violations, isinstance(document.get("tenant"), str),
           "batch: tenant must be a string")
    results = document.get("results")
    if not isinstance(results, list) or not results:
        violations.append("batch: results must be a non-empty array")
        results = []
    for index, result in enumerate(results):
        violations.extend(
            validate_result_body(result, where=f"batch.results[{index}]")
        )
    seconds = document.get("seconds")
    _check(violations,
           isinstance(seconds, list) and len(seconds) == len(results)
           and all(_is_number(s) and s >= 0 for s in seconds),
           "batch: seconds must be a non-negative number per result")
    sharing = document.get("sharing")
    if isinstance(sharing, dict):
        for key in ("engine_scans", "cache_hits", "cache_derivations"):
            _check(violations, key in sharing,
                   f"batch: sharing missing key {key!r}")
    else:
        violations.append("batch: sharing must be an object")
    return violations


def validate_explain_document(document):
    """The ``POST /v1/explain`` 200 body."""
    violations = []
    if not isinstance(document, dict):
        return [f"explain: must be an object, got {_type_name(document)}"]
    _check_version(violations, document, "explain")
    _check(violations, isinstance(document.get("tenant"), str),
           "explain: tenant must be a string")
    plans = document.get("plans")
    _check(violations,
           isinstance(plans, list) and plans
           and all(plan in PLAN_NAMES for plan in plans),
           f"explain: plans must be a non-empty subset of {sorted(PLAN_NAMES)}")
    explain = document.get("explain")
    _check(violations, isinstance(explain, str) and explain.strip(),
           "explain: explain must be a non-empty string")
    return violations


def validate_health_document(document):
    """The ``GET /v1/health`` body."""
    violations = []
    if not isinstance(document, dict):
        return [f"health: must be an object, got {_type_name(document)}"]
    _check_version(violations, document, "health")
    _check(violations, document.get("status") in ("ok", "draining"),
           f"health: status must be ok|draining, got {document.get('status')!r}")
    tenants = document.get("tenants")
    _check(violations,
           isinstance(tenants, list)
           and all(isinstance(tenant, str) for tenant in tenants),
           "health: tenants must be an array of strings")
    for key in ("uptime_s", "in_flight", "requests_total"):
        value = document.get(key)
        _check(violations, _is_number(value) and value >= 0,
               f"health: {key} must be a non-negative number")
    return violations


def validate_stats_document(document):
    """The ``GET /v1/tenants/<id>/stats`` body."""
    violations = []
    if not isinstance(document, dict):
        return [f"stats: must be an object, got {_type_name(document)}"]
    _check_version(violations, document, "stats")
    for key in ("tenant", "cube", "pool", "admission", "cache", "counters"):
        _check(violations, key in document, f"stats: missing key {key!r}")
    pool = document.get("pool")
    if isinstance(pool, dict):
        for key in ("size", "available", "in_use"):
            _check(violations, isinstance(pool.get(key), int),
                   f"stats: pool.{key} must be an int")
        if all(isinstance(pool.get(k), int)
               for k in ("size", "available", "in_use")):
            _check(violations,
                   pool["available"] + pool["in_use"] == pool["size"],
                   "stats: pool available + in_use != size")
    else:
        violations.append("stats: pool must be an object")
    admission = document.get("admission")
    if isinstance(admission, dict):
        for key in ("admitted", "completed", "errors",
                    "rejected_queue_full", "rejected_deadline",
                    "max_queue", "waiting"):
            _check(violations,
                   isinstance(admission.get(key), int)
                   and admission[key] >= 0,
                   f"stats: admission.{key} must be a non-negative int")
    else:
        violations.append("stats: admission must be an object")
    telemetry = document.get("telemetry")
    if telemetry is not None:
        if isinstance(telemetry, dict):
            for key in ("directory", "records", "fingerprints",
                        "sessions", "advisories"):
                _check(violations, key in telemetry,
                       f"stats: telemetry missing key {key!r}")
        else:
            violations.append("stats: telemetry must be an object")
    return violations


def validate_error_document(document, status=None):
    """Any non-200 envelope."""
    violations = []
    if not isinstance(document, dict):
        return [f"error: must be an object, got {_type_name(document)}"]
    _check_version(violations, document, "error")
    error = document.get("error")
    if not isinstance(error, dict):
        return violations + ["error: 'error' must be an object"]
    _check(violations,
           isinstance(error.get("status"), int)
           and 400 <= error["status"] <= 599,
           f"error: status must be a 4xx/5xx int, got {error.get('status')!r}")
    if status is not None:
        _check(violations, error.get("status") == status,
               f"error: body status {error.get('status')!r} != "
               f"HTTP status {status}")
    _check(violations, error.get("code") in ERROR_CODES,
           f"error: code {error.get('code')!r} not in the contract set")
    _check(violations,
           isinstance(error.get("message"), str) and error["message"],
           "error: message must be a non-empty string")
    diagnostics = error.get("diagnostics")
    if diagnostics is not None:
        if not isinstance(diagnostics, list) or not diagnostics:
            violations.append("error: diagnostics must be a non-empty array")
        else:
            for index, diagnostic in enumerate(diagnostics):
                dw = f"error.diagnostics[{index}]"
                if not isinstance(diagnostic, dict):
                    violations.append(f"{dw}: must be an object")
                    continue
                code = diagnostic.get("code")
                _check(violations,
                       isinstance(code, str) and code.startswith("ASSESS"),
                       f"{dw}: code must be an ASSESSxxx string, got {code!r}")
                _check(violations, diagnostic.get("severity") in SEVERITIES,
                       f"{dw}: severity must be one of {sorted(SEVERITIES)}")
                _check(violations, isinstance(diagnostic.get("message"), str),
                       f"{dw}: message must be a string")
                span = diagnostic.get("span")
                if span is not None:
                    _check(violations,
                           isinstance(span, dict) and
                           all(isinstance(span.get(k), int)
                               for k in ("start", "end", "line", "column")),
                           f"{dw}: span must carry int start/end/line/column")
    return violations


VALIDATORS = {
    "query": validate_query_document,
    "batch": validate_batch_document,
    "explain": validate_explain_document,
    "health": validate_health_document,
    "stats": validate_stats_document,
    "error": validate_error_document,
}


def validate_metrics_text(text):
    """The ``GET /v1/metrics`` Prometheus exposition (light checks)."""
    violations = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["metrics: exposition is empty"]
    for number, line in enumerate(lines, start=1):
        if line.startswith("#"):
            if not (line.startswith("# HELP ") or line.startswith("# TYPE ")):
                violations.append(
                    f"metrics line {number}: bad comment {line[:40]!r}"
                )
            continue
        body = line.rsplit(" ", 1)
        if len(body) != 2:
            violations.append(f"metrics line {number}: not 'name value'")
            continue
        try:
            float(body[1])
        except ValueError:
            violations.append(
                f"metrics line {number}: value {body[1]!r} is not a number"
            )
    return violations


# ----------------------------------------------------------------------
# Live mode
# ----------------------------------------------------------------------
def _http(url, method="GET", payload=None, raw=None, timeout=30):
    import urllib.error
    import urllib.request

    data = raw
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def run_live_checks(rows=2000):
    """Start an in-process server, hit every endpoint, validate bodies."""
    from repro.server import (
        AdmissionConfig,
        ReproServer,
        ServerConfig,
        TenantConfig,
    )

    statement = "with SALES by month assess storeSales labels quartiles"
    config = ServerConfig(
        host="127.0.0.1", port=0,
        admission=AdmissionConfig(max_queue=4, deadline_s=30.0),
        tenants=[TenantConfig("demo", cube="sales", rows=rows)],
    )
    server = ReproServer(config).start()
    failures = []

    def run_case(name, violations):
        for violation in violations:
            failures.append(f"{name}: {violation}")
        print(f"  {'FAIL' if violations else 'ok':4s}  {name}")

    try:
        base = server.url
        status, body, _ = _http(f"{base}/v1/health")
        run_case("health", ([] if status == 200 else [f"status {status}"])
                 + validate_health_document(json.loads(body)))
        status, body, _ = _http(
            f"{base}/v1/query", "POST",
            payload={"tenant": "demo", "statement": statement},
        )
        run_case("query", ([] if status == 200 else [f"status {status}"])
                 + validate_query_document(json.loads(body)))
        status, body, _ = _http(
            f"{base}/v1/batch", "POST",
            payload={"tenant": "demo", "statements": [statement, statement]},
        )
        run_case("batch", ([] if status == 200 else [f"status {status}"])
                 + validate_batch_document(json.loads(body)))
        status, body, _ = _http(
            f"{base}/v1/explain", "POST",
            payload={"tenant": "demo", "statement": statement, "plan": "NP"},
        )
        run_case("explain", ([] if status == 200 else [f"status {status}"])
                 + validate_explain_document(json.loads(body)))
        status, body, _ = _http(f"{base}/v1/tenants/demo/stats")
        run_case("stats", ([] if status == 200 else [f"status {status}"])
                 + validate_stats_document(json.loads(body)))
        status, body, _ = _http(f"{base}/v1/metrics")
        run_case("metrics", ([] if status == 200 else [f"status {status}"])
                 + validate_metrics_text(body.decode("utf-8")))
        # Error paths — each must come back as a valid envelope.
        status, body, _ = _http(f"{base}/v1/query", "POST", raw=b"{nope")
        run_case("error: bad json",
                 ([] if status == 400 else [f"status {status}"])
                 + validate_error_document(json.loads(body), status=status))
        status, body, _ = _http(
            f"{base}/v1/query", "POST",
            payload={"tenant": "ghost", "statement": statement},
        )
        run_case("error: unknown tenant",
                 ([] if status == 404 else [f"status {status}"])
                 + validate_error_document(json.loads(body), status=status))
        status, body, _ = _http(
            f"{base}/v1/query", "POST",
            payload={"tenant": "demo",
                     "statement": statement.replace("SALES", "NOPE")},
        )
        document = json.loads(body)
        run_case("error: lint failure",
                 ([] if status == 422 else [f"status {status}"])
                 + validate_error_document(document, status=status)
                 + ([] if document.get("error", {}).get("diagnostics")
                    else ["lint envelope must carry diagnostics"]))
        status, body, _ = _http(f"{base}/v1/query", "GET")
        run_case("error: wrong method",
                 ([] if status == 405 else [f"status {status}"])
                 + validate_error_document(json.loads(body), status=status))
        status, body, _ = _http(f"{base}/v1/nope", "GET")
        run_case("error: unknown path",
                 ([] if status == 404 else [f"status {status}"])
                 + validate_error_document(json.loads(body), status=status))
    finally:
        server.shutdown(grace_s=5.0)
    return failures


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate server responses against the schema-v1 contract."
    )
    parser.add_argument("path", nargs="?", default=None,
                        help="response document to validate (default: stdin)")
    parser.add_argument("--endpoint", choices=sorted(VALIDATORS),
                        default=None, help="which endpoint the document is from")
    parser.add_argument("--live", action="store_true",
                        help="start an in-process server and validate every "
                        "endpoint, error paths included")
    parser.add_argument("--rows", type=int, default=2000,
                        help="demo cube rows for --live (default: 2000)")
    args = parser.parse_args(argv)

    if args.live:
        failures = run_live_checks(rows=args.rows)
        if failures:
            print(f"FAIL: {len(failures)} violation(s)")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("ok: every endpoint matches the schema-v1 contract")
        return 0

    if args.endpoint is None:
        parser.error("--endpoint is required without --live")
    if args.path is not None:
        with open(args.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = json.load(sys.stdin)
    violations = VALIDATORS[args.endpoint](document)
    if violations:
        print(f"FAIL: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"ok: valid {args.endpoint} document")
    return 0


if __name__ == "__main__":
    sys.exit(main())
